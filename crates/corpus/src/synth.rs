//! Corpus synthesizer: regenerate 67 Rails applications *as Ruby source
//! with commit histories* from the paper's published ground truth.
//!
//! GitHub is unavailable offline, but Table 2 publishes every
//! per-application count the survey measured, Table 1 publishes the
//! validator-kind distribution, and Figures 6/7 publish the temporal and
//! authorship distributions. The synthesizer inverts those statistics
//! into concrete Ruby sources; the analyzer (`crate::ruby`) then measures
//! them back, exercising the full survey pipeline end to end.
//!
//! The validator-kind allocation is exact: the global multiset of
//! validation kinds equals Table 1 (1762 `presence`, 440 `uniqueness`,
//! ..., 321 "other", 60 user-defined = 3505 total), shuffled across
//! applications with a seeded RNG.

use crate::table2::{AppStats, TABLE_TWO};
use feral_iconfluence::TABLE_ONE;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// A synthesizable construct, tagged with its commit position and author.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstructKind {
    /// A model class declaration.
    Model,
    /// A validation of the given canonical kind (`custom` for UDFs).
    Validation(String),
    /// An association of the given kind.
    Association(&'static str),
    /// A transaction block (rendered in controller code).
    Transaction,
    /// A pessimistic lock call.
    PessimisticLock,
    /// An optimistic-locking (`lock_version`) use.
    OptimisticLock,
}

/// One construct in an application's history.
#[derive(Debug, Clone)]
pub struct Construct {
    /// What it is.
    pub kind: ConstructKind,
    /// Which model it belongs to (validations/associations attach to
    /// models; CC constructs use it to pick a controller).
    pub model: usize,
    /// Commit index at which it was introduced (0-based).
    pub commit: u32,
    /// Author index (0-based, within the app's author pool).
    pub author: u32,
}

/// A synthesized application.
#[derive(Debug, Clone)]
pub struct SyntheticApp {
    /// The ground-truth row this app was generated from.
    pub stats: AppStats,
    /// Model class names.
    pub model_names: Vec<String>,
    /// All constructs with commit/author metadata.
    pub constructs: Vec<Construct>,
    /// Author of each commit (for the Figure 7 commit CDF).
    pub commit_authors: Vec<u32>,
}

const FIELD_POOL: &[&str] = &[
    "name",
    "title",
    "email",
    "login",
    "body",
    "state",
    "position",
    "amount",
    "quantity",
    "price",
    "slug",
    "token",
    "description",
    "kind",
    "status",
    "url",
    "phone",
    "zip",
    "score",
    "count_on_hand",
    "permalink",
    "locale",
    "summary",
    "rating",
    "code",
];

const MODEL_WORDS: &[&str] = &[
    "User", "Post", "Comment", "Order", "Product", "Item", "Category", "Tag", "Page", "Project",
    "Task", "Ticket", "Invoice", "Payment", "Shipment", "Account", "Group", "Member", "Event",
    "Asset", "Image", "Document", "Message", "Topic", "Forum", "Review", "Address", "Profile",
    "Role", "Setting", "Store", "Variant", "Stock", "Session", "Report", "Badge", "Vote", "Entry",
    "Feed", "Channel",
];

/// Mapping of Table 1's "Other" bucket onto concrete renderable
/// validators (format-ish checks, per §4.2's description of the long
/// tail).
const OTHER_KINDS: &[(&str, u32)] = &[
    ("validates_format_of", 150),
    ("validates_exclusion_of", 100),
    ("validates_acceptance_of", 71),
];

/// Number of user-defined validations in the corpus (§4.3).
pub const CUSTOM_VALIDATIONS: u32 = 60;

/// Build the exact global multiset of validation kinds (3505 entries).
fn validation_kind_pool() -> Vec<String> {
    let mut pool = Vec::with_capacity(3505);
    for row in TABLE_ONE {
        for _ in 0..row.occurrences {
            pool.push(row.name.to_string());
        }
    }
    for (kind, n) in OTHER_KINDS {
        for _ in 0..*n {
            pool.push((*kind).to_string());
        }
    }
    for _ in 0..CUSTOM_VALIDATIONS {
        pool.push("custom".to_string());
    }
    pool
}

/// Synthesize the full 67-application corpus with a fixed seed.
pub fn synthesize_corpus(seed: u64) -> Vec<SyntheticApp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kind_pool = validation_kind_pool();
    kind_pool.shuffle(&mut rng);
    let mut pool_cursor = 0usize;
    TABLE_TWO
        .iter()
        .map(|stats| {
            let take = stats.validations as usize;
            let kinds = &kind_pool[pool_cursor..pool_cursor + take];
            pool_cursor += take;
            synthesize_app(stats, kinds, &mut rng)
        })
        .collect()
}

/// Zipf-ish author pick: author rank r with probability ∝ 1/(r+1)^theta.
fn pick_author(rng: &mut StdRng, authors: u32, theta: f64) -> u32 {
    if authors <= 1 {
        return 0;
    }
    // inverse-transform over the normalized harmonic weights (authors are
    // small; O(n) is fine)
    let weights: Vec<f64> = (0..authors)
        .map(|r| 1.0 / ((r + 1) as f64).powf(theta))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.random::<f64>() * total;
    for (r, w) in weights.iter().enumerate() {
        if u < *w {
            return r as u32;
        }
        u -= w;
    }
    authors - 1
}

fn synthesize_app(stats: &AppStats, validation_kinds: &[String], rng: &mut StdRng) -> SyntheticApp {
    let commits = stats.commits.max(1);
    let authors = stats.authors.max(1);
    let models = stats.models.max(1) as usize;

    // model names: word (+ optional suffix) ensuring uniqueness
    let mut model_names = Vec::with_capacity(models);
    for i in 0..models {
        let base = MODEL_WORDS[i % MODEL_WORDS.len()];
        let name = if i < MODEL_WORDS.len() {
            base.to_string()
        } else {
            format!("{base}{}", i / MODEL_WORDS.len() + 1)
        };
        model_names.push(name);
    }

    // commit authorship: Zipf over authors (Figure 7's commit CDF: 95% of
    // commits by ~42% of authors)
    let commit_authors: Vec<u32> = (0..commits)
        .map(|_| pick_author(rng, authors, 2.0))
        .collect();

    let mut constructs = Vec::new();
    // models arrive early in history (Figure 6): commit ~ commits * u^2 * 0.6
    let mut model_commits = Vec::with_capacity(models);
    for m in 0..models {
        let u: f64 = rng.random();
        let commit = ((commits as f64 - 1.0) * 0.6 * u * u) as u32;
        model_commits.push(commit);
        constructs.push(Construct {
            kind: ConstructKind::Model,
            model: m,
            commit,
            author: commit_authors[commit as usize],
        });
    }

    // concurrency-control constructs arrive later: commit between the
    // owning model's introduction and the end, biased late
    let cc_commit = |model: usize, rng: &mut StdRng| -> u32 {
        let lo = model_commits[model] as f64;
        let u: f64 = rng.random();
        let frac = u.powf(0.7);
        (lo + (commits as f64 - 1.0 - lo) * frac) as u32
    };

    // invariants (validations + associations) are authored by a more
    // concentrated author pool (Figure 7: 95% by ~20% of authors)
    let invariant_author = |rng: &mut StdRng| pick_author(rng, authors, 3.6);

    for kind in validation_kinds {
        let model = rng.random_range(0..models);
        let commit = cc_commit(model, rng);
        constructs.push(Construct {
            kind: ConstructKind::Validation(kind.clone()),
            model,
            commit,
            author: invariant_author(rng),
        });
    }

    for i in 0..stats.associations {
        let model = rng.random_range(0..models);
        let commit = cc_commit(model, rng);
        let kind = match i % 5 {
            0 | 1 => "belongs_to",
            2 | 3 => "has_many",
            _ => "has_one",
        };
        constructs.push(Construct {
            kind: ConstructKind::Association(kind),
            model,
            commit,
            author: invariant_author(rng),
        });
    }

    for _ in 0..stats.transactions {
        let model = rng.random_range(0..models);
        let commit = cc_commit(model, rng);
        constructs.push(Construct {
            kind: ConstructKind::Transaction,
            model,
            commit,
            author: commit_authors[commit as usize],
        });
    }
    for _ in 0..stats.pessimistic_locks {
        let model = rng.random_range(0..models);
        let commit = cc_commit(model, rng);
        constructs.push(Construct {
            kind: ConstructKind::PessimisticLock,
            model,
            commit,
            author: commit_authors[commit as usize],
        });
    }
    for _ in 0..stats.optimistic_locks {
        let model = rng.random_range(0..models);
        let commit = cc_commit(model, rng);
        constructs.push(Construct {
            kind: ConstructKind::OptimisticLock,
            model,
            commit,
            author: commit_authors[commit as usize],
        });
    }

    SyntheticApp {
        stats: *stats,
        model_names,
        constructs,
        commit_authors,
    }
}

impl SyntheticApp {
    /// Render the application's Ruby sources as of `commit_limit`
    /// (inclusive; `None` = final state). Returns `(path, source)` pairs.
    pub fn render(&self, commit_limit: Option<u32>) -> Vec<(String, String)> {
        let limit = commit_limit.unwrap_or(u32::MAX);
        let visible: Vec<&Construct> = self
            .constructs
            .iter()
            .filter(|c| c.commit <= limit)
            .collect();
        let mut files = Vec::new();

        // one file per visible model
        for (m, name) in self.model_names.iter().enumerate() {
            let model_visible = visible
                .iter()
                .any(|c| c.model == m && c.kind == ConstructKind::Model);
            if !model_visible {
                continue;
            }
            let mut src = String::new();
            src.push_str(&format!("class {name} < ActiveRecord::Base\n"));
            let mut field_i = 0usize;
            let mut assoc_i = 0usize;
            for c in visible.iter().filter(|c| c.model == m) {
                match &c.kind {
                    ConstructKind::Validation(kind) => {
                        let field = FIELD_POOL[field_i % FIELD_POOL.len()];
                        field_i += 1;
                        src.push_str(&render_validation(kind, field, field_i));
                    }
                    ConstructKind::Association(kind) => {
                        let target = &self.model_names[(m + assoc_i + 1) % self.model_names.len()];
                        assoc_i += 1;
                        src.push_str(&render_association(kind, target, assoc_i));
                    }
                    ConstructKind::OptimisticLock => {
                        src.push_str("  def optimistic_bump\n    lock_version\n  end\n");
                    }
                    _ => {}
                }
            }
            src.push_str("end\n");
            files.push((format!("app/models/{}.rb", crate::underscore(name)), src));
        }

        // controllers hold the transactions and pessimistic locks
        let txns: Vec<&&Construct> = visible
            .iter()
            .filter(|c| c.kind == ConstructKind::Transaction)
            .collect();
        let plocks: Vec<&&Construct> = visible
            .iter()
            .filter(|c| c.kind == ConstructKind::PessimisticLock)
            .collect();
        if !txns.is_empty() || !plocks.is_empty() {
            let mut src = String::new();
            src.push_str("class ApplicationController\n");
            for (i, c) in txns.iter().enumerate() {
                let model = &self.model_names[c.model.min(self.model_names.len() - 1)];
                src.push_str(&format!(
                    "  def action_txn_{i}\n    {model}.transaction do\n      perform\n    end\n  end\n"
                ));
            }
            for (i, c) in plocks.iter().enumerate() {
                let model = &self.model_names[c.model.min(self.model_names.len() - 1)];
                let style = i % 2;
                if style == 0 {
                    src.push_str(&format!(
                        "  def action_lock_{i}\n    record = {model}.find(params[:id])\n    record.lock!\n  end\n"
                    ));
                } else {
                    src.push_str(&format!(
                        "  def action_lock_{i}\n    {model}.find(params[:id]).with_lock do\n      perform\n    end\n  end\n"
                    ));
                }
            }
            src.push_str("end\n");
            files.push(("app/controllers/application_controller.rb".to_string(), src));
        }
        files
    }
}

impl SyntheticApp {
    /// Render the application's migration DDL as of `commit_limit` —
    /// one `db/migrate/*.sql` file per visible model, containing its
    /// `CREATE TABLE` (with `REFERENCES` foreign keys on a fraction of
    /// `belongs_to` columns) and `CREATE UNIQUE INDEX` statements backing
    /// a fraction of the uniqueness validations.
    ///
    /// The schema-side backing is deliberately partial, mirroring the
    /// paper's finding that applications rarely pair feral invariants
    /// with in-database constraints (§3, §4.4): roughly 1 in 4
    /// uniqueness validations gets a unique index, 1 in 3 `belongs_to`
    /// columns gets a foreign key, and 1 in 2 optimistic-lock models
    /// gets its `lock_version` column. The walk mirrors [`Self::render`]
    /// exactly, so the schema lines up with the Ruby sources
    /// construct-for-construct, and the whole rendering is deterministic.
    pub fn render_schema(&self, commit_limit: Option<u32>) -> Vec<(String, String)> {
        let limit = commit_limit.unwrap_or(u32::MAX);
        let visible: Vec<&Construct> = self
            .constructs
            .iter()
            .filter(|c| c.commit <= limit)
            .collect();
        let mut files = Vec::new();
        // app-wide counters drive the deterministic backed fractions
        let mut uniq_i = 0usize;
        let mut fk_i = 0usize;
        let mut lock_i = 0usize;
        for (m, name) in self.model_names.iter().enumerate() {
            let model_visible = visible
                .iter()
                .any(|c| c.model == m && c.kind == ConstructKind::Model);
            if !model_visible {
                continue;
            }
            let table = crate::table_name(name);
            let mut columns: Vec<String> = vec!["id INT PRIMARY KEY".to_string()];
            let mut seen: Vec<String> = Vec::new();
            let mut unique_fields: Vec<&str> = Vec::new();
            let mut field_i = 0usize;
            let mut assoc_i = 0usize;
            let mut lock_emitted = false;
            for c in visible.iter().filter(|c| c.model == m) {
                match &c.kind {
                    ConstructKind::Validation(kind) => {
                        let field = FIELD_POOL[field_i % FIELD_POOL.len()];
                        field_i += 1;
                        if !seen.iter().any(|s| s == field) {
                            seen.push(field.to_string());
                            columns.push(format!("{field} TEXT"));
                        }
                        if kind == "validates_uniqueness_of" {
                            let backed = uniq_i.is_multiple_of(4);
                            uniq_i += 1;
                            if backed && !unique_fields.contains(&field) {
                                unique_fields.push(field);
                            }
                        }
                    }
                    ConstructKind::Association(kind) => {
                        let target = &self.model_names[(m + assoc_i + 1) % self.model_names.len()];
                        assoc_i += 1;
                        if *kind == "belongs_to" {
                            let col = format!("{}_id", crate::underscore(target));
                            let backed = fk_i.is_multiple_of(3);
                            fk_i += 1;
                            if !seen.contains(&col) {
                                seen.push(col.clone());
                                if backed {
                                    columns.push(format!(
                                        "{col} INT REFERENCES {} (id)",
                                        crate::table_name(target)
                                    ));
                                } else {
                                    columns.push(format!("{col} INT"));
                                }
                            }
                        }
                    }
                    ConstructKind::OptimisticLock if !lock_emitted => {
                        lock_emitted = true;
                        let backed = lock_i.is_multiple_of(2);
                        lock_i += 1;
                        if backed {
                            columns.push("lock_version INT".to_string());
                        }
                    }
                    _ => {}
                }
            }
            let mut sql = format!("CREATE TABLE {table} (\n  {}\n);\n", columns.join(",\n  "));
            for field in unique_fields {
                sql.push_str(&format!(
                    "CREATE UNIQUE INDEX index_{table}_on_{field} ON {table} ({field});\n"
                ));
            }
            files.push((format!("db/migrate/create_{table}.sql"), sql));
        }
        files
    }
}

/// Render one validation declaration, alternating between legacy and
/// modern syntax (and occasionally the hash-rocket form) so the analyzer
/// is exercised across styles.
fn render_validation(kind: &str, field: &str, variety: usize) -> String {
    if kind == "custom" {
        return match variety % 3 {
            0 => format!("  validate :check_{field}\n"),
            1 => format!(
                "  validates_each :{field} do |record, attr, value|\n    record.errors.add attr if value.nil?\n  end\n"
            ),
            _ => "  validates_with CustomValidator\n".to_string(),
        };
    }
    let modern_key = match kind {
        "validates_presence_of" => Some("presence: true"),
        "validates_uniqueness_of" => Some("uniqueness: true"),
        "validates_length_of" => Some("length: { maximum: 255 }"),
        "validates_inclusion_of" => Some("inclusion: { in: %w(a b) }"),
        "validates_numericality_of" => Some("numericality: true"),
        "validates_confirmation_of" => Some("confirmation: true"),
        "validates_acceptance_of" => Some("acceptance: true"),
        "validates_exclusion_of" => Some("exclusion: { in: %w(admin) }"),
        _ => None,
    };
    match (variety % 3, modern_key) {
        (0, Some(key)) => format!("  validates :{field}, {key}\n"),
        _ => match kind {
            "validates_format_of" => {
                format!("  validates_format_of :{field}, :with => /\\A[a-z]+\\z/\n")
            }
            "validates_length_of" => {
                format!("  validates_length_of :{field}, :maximum => 255\n")
            }
            "validates_inclusion_of" => {
                format!("  validates_inclusion_of :{field}, :in => %w(a b c)\n")
            }
            "validates_attachment_content_type" => format!(
                "  validates_attachment_content_type :{field}, :content_type => ['image/png']\n"
            ),
            "validates_attachment_size" => {
                format!("  validates_attachment_size :{field}, :less_than => 1000000\n")
            }
            "validates_associated" => format!("  validates_associated :{field}\n"),
            "validates_email" => format!("  validates_email :{field}\n"),
            other => format!("  {other} :{field}\n"),
        },
    }
}

fn render_association(kind: &str, target: &str, variety: usize) -> String {
    let assoc_name = crate::underscore(target);
    match kind {
        "belongs_to" => format!("  belongs_to :{assoc_name}\n"),
        "has_one" => format!("  has_one :{assoc_name}\n"),
        _ => {
            let plural = format!("{assoc_name}s");
            match variety % 4 {
                0 => format!("  has_many :{plural}, :dependent => :destroy\n"),
                1 => format!("  has_many :{plural}, dependent: :delete_all\n"),
                2 => format!("  has_many :{plural}, through: :{assoc_name}_links\n"),
                _ => format!("  has_many :{plural}\n"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ruby::{analyze_source, ParseOptions};

    #[test]
    fn kind_pool_totals_3505() {
        assert_eq!(validation_kind_pool().len(), 3505);
    }

    #[test]
    fn corpus_has_67_apps_and_is_deterministic() {
        let a = synthesize_corpus(42);
        let b = synthesize_corpus(42);
        assert_eq!(a.len(), 67);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.constructs.len(), y.constructs.len());
            assert_eq!(x.render(None), y.render(None));
        }
    }

    #[test]
    fn rendered_sources_measure_back_to_ground_truth() {
        let corpus = synthesize_corpus(7);
        for app in corpus.iter().take(10) {
            let mut analysis = crate::ruby::FileAnalysis::default();
            for (_, src) in app.render(None) {
                analysis.absorb(analyze_source(&src, &ParseOptions::default()));
            }
            assert_eq!(
                analysis.models.len() as u32,
                app.stats.models,
                "{}: model count",
                app.stats.name
            );
            assert_eq!(
                analysis.validation_count() as u32,
                app.stats.validations,
                "{}: validation count",
                app.stats.name
            );
            assert_eq!(
                analysis.association_count() as u32,
                app.stats.associations,
                "{}: association count",
                app.stats.name
            );
            assert_eq!(
                analysis.transactions as u32, app.stats.transactions,
                "{}: transactions",
                app.stats.name
            );
            assert_eq!(
                analysis.pessimistic_locks as u32, app.stats.pessimistic_locks,
                "{}: pessimistic locks",
                app.stats.name
            );
            assert_eq!(
                analysis.optimistic_locks as u32, app.stats.optimistic_locks,
                "{}: optimistic locks",
                app.stats.name
            );
        }
    }

    #[test]
    fn partial_render_respects_commit_limit() {
        let corpus = synthesize_corpus(11);
        let app = &corpus[0]; // Canvas LMS: plenty of history
        let early = app.render(Some(app.stats.commits / 10));
        let late = app.render(None);
        let count = |files: &[(String, String)]| {
            let mut a = crate::ruby::FileAnalysis::default();
            for (_, src) in files {
                a.absorb(analyze_source(src, &ParseOptions::default()));
            }
            (a.models.len(), a.validation_count())
        };
        let (em, ev) = count(&early);
        let (lm, lv) = count(&late);
        assert!(em < lm);
        assert!(ev < lv);
        // models stabilize earlier than validations (Figure 6's shape)
        let model_frac = em as f64 / lm as f64;
        let val_frac = ev as f64 / lv.max(1) as f64;
        assert!(
            model_frac > val_frac,
            "at 10% of history, models ({model_frac:.2}) should lead validations ({val_frac:.2})"
        );
    }

    #[test]
    fn rendered_schema_is_deterministic_and_parses() {
        let corpus = synthesize_corpus(42);
        let mut statements = 0usize;
        for app in corpus.iter().take(10) {
            let a = app.render_schema(None);
            let b = app.render_schema(None);
            assert_eq!(a, b, "{}: schema must be deterministic", app.stats.name);
            for (path, sql) in &a {
                assert!(path.starts_with("db/migrate/create_"), "{path}");
                for stmt in sql.split(';').map(str::trim).filter(|s| !s.is_empty()) {
                    statements += 1;
                    feral_sql::parse(stmt).unwrap_or_else(|e| {
                        panic!("{}: `{stmt}` must parse: {e:?}", app.stats.name)
                    });
                }
            }
        }
        assert!(statements > 0);
    }

    #[test]
    fn schema_backs_a_quarter_of_uniqueness_and_a_third_of_references() {
        let corpus = synthesize_corpus(42);
        let (mut uniq, mut uniq_backed, mut refs, mut refs_backed) = (0usize, 0, 0usize, 0);
        for app in &corpus {
            for (_, sql) in app.render_schema(None) {
                refs += sql.matches("_id INT").count();
                refs_backed += sql.matches("REFERENCES").count();
                uniq_backed += sql.matches("CREATE UNIQUE INDEX").count();
            }
            for (_, src) in app.render(None) {
                let a = analyze_source(&src, &ParseOptions::default());
                uniq += a
                    .models
                    .iter()
                    .flat_map(|m| &m.validations)
                    .filter(|v| v.kind == "validates_uniqueness_of")
                    .count();
            }
        }
        assert!(
            uniq_backed > 0 && uniq_backed < uniq,
            "{uniq_backed}/{uniq}"
        );
        assert!(
            refs_backed > 0 && refs_backed < refs,
            "{refs_backed}/{refs}"
        );
        // backed fractions sit near the deterministic 1/4 and 1/3 rates
        // (dedup of repeated fields/columns pulls them off the exact
        // ratio, but not far)
        let uniq_frac = uniq_backed as f64 / uniq as f64;
        let ref_frac = refs_backed as f64 / refs as f64;
        assert!(
            (0.10..0.45).contains(&uniq_frac),
            "uniqueness backed: {uniq_frac:.2}"
        );
        assert!(
            (0.15..0.55).contains(&ref_frac),
            "references backed: {ref_frac:.2}"
        );
    }

    #[test]
    fn unique_indexes_only_cover_uniqueness_validated_fields() {
        let corpus = synthesize_corpus(42);
        for app in corpus.iter().take(15) {
            // model table → fields with a uniqueness validation, per sources
            let mut validated: std::collections::BTreeMap<String, Vec<String>> =
                std::collections::BTreeMap::new();
            for (_, src) in app.render(None) {
                let a = analyze_source(&src, &ParseOptions::default());
                for m in &a.models {
                    let entry = validated.entry(crate::table_name(&m.name)).or_default();
                    for v in &m.validations {
                        if v.kind == "validates_uniqueness_of" {
                            entry.push(v.field.clone());
                        }
                    }
                }
            }
            for (_, sql) in app.render_schema(None) {
                for line in sql.lines() {
                    let Some(rest) = line.strip_prefix("CREATE UNIQUE INDEX ") else {
                        continue;
                    };
                    let table = rest.split_whitespace().nth(2).unwrap();
                    let field = rest
                        .split('(')
                        .nth(1)
                        .unwrap()
                        .trim_end_matches(&[')', ';'][..]);
                    assert!(
                        validated
                            .get(table)
                            .is_some_and(|fs| fs.iter().any(|f| f == field)),
                        "{}: index on {table}.{field} has no matching validation",
                        app.stats.name
                    );
                }
            }
        }
    }

    #[test]
    fn authors_are_within_pool() {
        let corpus = synthesize_corpus(3);
        for app in &corpus {
            for c in &app.constructs {
                assert!(c.author < app.stats.authors.max(1));
                assert!(c.commit < app.stats.commits.max(1));
            }
        }
    }
}
