//! A syntactic static analyzer for the Ruby subset that expresses
//! ActiveRecord models — the methodology of the paper's Appendix A
//! ("a very rudimentary syntactic static analysis ... the syntactic
//! approach proved portable between the many versions of Rails").
//!
//! The analyzer tokenizes line by line (skipping comments, strings, and
//! regex literals), tracks `class ... end` nesting, and counts:
//!
//! * model declarations (`class X < ActiveRecord::Base`, including
//!   project-specific base classes — the "esoteric syntaxes" escape
//!   hatch Appendix A mentions);
//! * validation declarations, both legacy (`validates_presence_of :a,
//!   :b`) and modern (`validates :a, presence: true, uniqueness: true`),
//!   plus user-defined validations (`validates_each`, `validate :sym`);
//! * association declarations (`belongs_to`/`has_one`/`has_many`/HABTM,
//!   with `:dependent` and `:through` options);
//! * transaction blocks, pessimistic locks (`lock!`, `with_lock`), and
//!   optimistic locking (`lock_version`).

use std::collections::BTreeMap;

/// One token of the Ruby subset.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Bare identifier or keyword (`validates_presence_of`, `do`, `end`).
    Ident(String),
    /// Symbol literal (`:name`).
    Sym(String),
    /// Hash key shorthand (`presence:`).
    Key(String),
    /// Constant (`ActiveRecord`, `Base`), with `::` folded in.
    Const(String),
    /// `=>`.
    Arrow,
    /// `<`.
    Lt,
    /// Any other punctuation.
    Punct(char),
}

/// Closing delimiter for a `%w(...)`-style percent literal opener.
fn percent_closer(open: char) -> Option<char> {
    Some(match open {
        '(' => ')',
        '[' => ']',
        '{' => '}',
        '<' => '>',
        '|' => '|',
        _ => return None,
    })
}

/// Tokenize one line, skipping comments, strings, regex-ish literals, and
/// `%w[]`/`%i[]` word/symbol arrays. Heredoc openers (`<<~SQL`, `<<-EOS`,
/// `<<'TAG'`) push their terminator tags onto `heredocs` so the caller
/// can skip the body lines.
fn tokenize(line: &str, heredocs: &mut Vec<String>) -> Vec<Tok> {
    let mut out = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '#' => break, // comment to EOL
            '%' if matches!(chars.get(i + 1), Some('w' | 'W' | 'i' | 'I'))
                && chars.get(i + 2).copied().and_then(percent_closer).is_some() =>
            {
                // `%w(a b)` / `%i[x y]` word/symbol array: skip wholesale
                let closer = percent_closer(chars[i + 2]).unwrap();
                i += 3;
                while i < chars.len() && chars[i] != closer {
                    i += 1;
                }
                i += 1; // past the closer (or EOL on unterminated input)
            }
            '\'' | '"' => {
                // skip string literal
                let quote = c;
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if chars[i] == quote {
                        break;
                    }
                    i += 1;
                }
                i += 1;
            }
            '/' => {
                // treat as a regex literal when in value position (after
                // `:`-key, comma, arrow, or open bracket); else skip char
                let value_pos = matches!(
                    out.last(),
                    Some(Tok::Key(_)) | Some(Tok::Arrow) | Some(Tok::Punct(',' | '(' | '{' | '['))
                );
                if value_pos {
                    i += 1;
                    while i < chars.len() {
                        if chars[i] == '\\' {
                            i += 2;
                            continue;
                        }
                        if chars[i] == '/' {
                            break;
                        }
                        i += 1;
                    }
                }
                i += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&':') {
                    // `::` — handled when reading constants; skip
                    i += 2;
                } else if chars
                    .get(i + 1)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                {
                    // symbol
                    let start = i + 1;
                    let mut j = start;
                    while j < chars.len()
                        && (chars[j].is_alphanumeric() || chars[j] == '_' || chars[j] == '?')
                    {
                        j += 1;
                    }
                    out.push(Tok::Sym(chars[start..j].iter().collect()));
                    i = j;
                } else {
                    i += 1;
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'>') {
                    out.push(Tok::Arrow);
                    i += 2;
                } else {
                    out.push(Tok::Punct('='));
                    i += 1;
                }
            }
            '<' => {
                // heredoc opener? `<<TAG`, `<<~TAG`, `<<-TAG`, `<<~'TAG'`
                if chars.get(i + 1) == Some(&'<') {
                    let mut j = i + 2;
                    if matches!(chars.get(j), Some('~' | '-')) {
                        j += 1;
                    }
                    let tag = match chars.get(j) {
                        Some(&q @ ('\'' | '"')) => {
                            let start = j + 1;
                            let mut k = start;
                            while k < chars.len() && chars[k] != q {
                                k += 1;
                            }
                            if k < chars.len() {
                                let t: String = chars[start..k].iter().collect();
                                j = k + 1;
                                Some(t)
                            } else {
                                None
                            }
                        }
                        Some(c) if c.is_ascii_uppercase() || *c == '_' => {
                            let start = j;
                            let mut k = j;
                            while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_')
                            {
                                k += 1;
                            }
                            j = k;
                            Some(chars[start..k].iter().collect())
                        }
                        _ => None,
                    };
                    if let Some(tag) = tag {
                        heredocs.push(tag);
                        i = j;
                        continue;
                    }
                }
                out.push(Tok::Lt);
                i += 1;
            }
            c if c.is_ascii_uppercase() => {
                // constant path: Foo::Bar::Baz
                let start = i;
                let mut j = i;
                while j < chars.len()
                    && (chars[j].is_alphanumeric()
                        || chars[j] == '_'
                        || (chars[j] == ':' && chars.get(j + 1) == Some(&':')))
                {
                    if chars[j] == ':' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                out.push(Tok::Const(chars[start..j].iter().collect()));
                i = j;
            }
            c if c.is_ascii_lowercase() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < chars.len()
                    && (chars[j].is_alphanumeric()
                        || chars[j] == '_'
                        || chars[j] == '!'
                        || chars[j] == '?')
                {
                    j += 1;
                }
                let word: String = chars[start..j].iter().collect();
                // hash key shorthand `presence:` (but not `::`)
                if chars.get(j) == Some(&':') && chars.get(j + 1) != Some(&':') {
                    out.push(Tok::Key(word));
                    j += 1;
                } else {
                    out.push(Tok::Ident(word));
                }
                i = j;
            }
            c if c.is_whitespace() => i += 1,
            other => {
                out.push(Tok::Punct(other));
                i += 1;
            }
        }
    }
    out
}

/// Legacy `validates_*_of`-style helper names (plus gem-provided ones
/// found in the corpus).
const LEGACY_VALIDATORS: &[&str] = &[
    "validates_presence_of",
    "validates_uniqueness_of",
    "validates_length_of",
    "validates_size_of",
    "validates_inclusion_of",
    "validates_exclusion_of",
    "validates_numericality_of",
    "validates_format_of",
    "validates_confirmation_of",
    "validates_acceptance_of",
    "validates_associated",
    "validates_email",
    "validates_email_format_of",
    "validates_attachment_content_type",
    "validates_attachment_size",
    "validates_attachment_presence",
];

/// Map a modern `validates :f, <key>: ...` option key to its canonical
/// validator name.
fn key_to_validator(key: &str) -> Option<&'static str> {
    Some(match key {
        "presence" => "validates_presence_of",
        "uniqueness" => "validates_uniqueness_of",
        "length" | "size" => "validates_length_of",
        "inclusion" => "validates_inclusion_of",
        "exclusion" => "validates_exclusion_of",
        "numericality" => "validates_numericality_of",
        "format" => "validates_format_of",
        "confirmation" => "validates_confirmation_of",
        "acceptance" => "validates_acceptance_of",
        "associated" => "validates_associated",
        "email" => "validates_email",
        _ => return None,
    })
}

/// Canonicalize gem aliases onto the paper's Table 1 names.
fn canonical(name: &str) -> String {
    match name {
        "validates_size_of" => "validates_length_of".into(),
        "validates_email_format_of" => "validates_email".into(),
        other => other.into(),
    }
}

/// One counted validation use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationUse {
    /// Canonical validator name (`validates_presence_of`, ... or
    /// `custom`).
    pub kind: String,
    /// Validated field (empty for block-based customs).
    pub field: String,
    /// Whether this is a user-defined validation.
    pub custom: bool,
}

/// One counted association use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssociationUse {
    /// `belongs_to` / `has_one` / `has_many` /
    /// `has_and_belongs_to_many`.
    pub kind: String,
    /// Association name.
    pub name: String,
    /// `:dependent` option, if declared (`destroy`, `delete_all`, ...).
    pub dependent: Option<String>,
    /// `:through` target, if declared (`through: :positions` →
    /// `Some("positions")`).
    pub through: Option<String>,
}

/// A parsed Active Record model.
#[derive(Debug, Clone, Default)]
pub struct ParsedModel {
    /// Class name.
    pub name: String,
    /// Validation uses, in declaration order.
    pub validations: Vec<ValidationUse>,
    /// Association uses, in declaration order.
    pub associations: Vec<AssociationUse>,
    /// `lock_version` references inside the model body (optimistic
    /// locking declared/used on this model).
    pub lock_version_refs: usize,
}

/// Analysis results for one source file (or one application's
/// concatenated sources).
#[derive(Debug, Clone, Default)]
pub struct FileAnalysis {
    /// Models declared.
    pub models: Vec<ParsedModel>,
    /// Transaction-block uses.
    pub transactions: usize,
    /// Pessimistic lock uses (`lock!`, `with_lock`).
    pub pessimistic_locks: usize,
    /// Optimistic lock uses (`lock_version` occurrences).
    pub optimistic_locks: usize,
}

impl FileAnalysis {
    /// Total validation uses across models.
    pub fn validation_count(&self) -> usize {
        self.models.iter().map(|m| m.validations.len()).sum()
    }

    /// Total association uses across models.
    pub fn association_count(&self) -> usize {
        self.models.iter().map(|m| m.associations.len()).sum()
    }

    /// Validation counts grouped by canonical kind.
    pub fn validations_by_kind(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for m in &self.models {
            for v in &m.validations {
                *out.entry(v.kind.clone()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Merge another analysis into this one (multi-file applications).
    pub fn absorb(&mut self, other: FileAnalysis) {
        self.models.extend(other.models);
        self.transactions += other.transactions;
        self.pessimistic_locks += other.pessimistic_locks;
        self.optimistic_locks += other.optimistic_locks;
    }
}

/// Analyzer options.
#[derive(Debug, Clone, Default)]
pub struct ParseOptions {
    /// Base classes whose subclasses count as models (beyond
    /// `ActiveRecord::Base` / `ApplicationRecord`) — the Appendix A
    /// "custom logic to handle esoteric syntaxes" hook.
    pub extra_base_classes: Vec<String>,
}

fn is_model_base(konst: &str, opts: &ParseOptions) -> bool {
    konst == "ActiveRecord::Base"
        || konst == "ApplicationRecord"
        || konst.ends_with("::Base") && konst.starts_with("ActiveRecord")
        || opts.extra_base_classes.iter().any(|b| b == konst)
}

/// Keywords that open a nesting level when they lead a line.
const LEADING_OPENERS: &[&str] = &[
    "class", "module", "def", "if", "unless", "case", "while", "until", "begin",
];

/// Analyze one Ruby source file.
pub fn analyze_source(src: &str, opts: &ParseOptions) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    // stack of (depth_at_open, model_index) for open model classes
    let mut depth: i32 = 0;
    let mut model_stack: Vec<(i32, usize)> = Vec::new();
    // heredoc terminators still pending (skip body lines until each)
    let mut heredoc_tags: Vec<String> = Vec::new();
    // tokens of a declaration continued across lines (trailing comma)
    let mut pending: Vec<Tok> = Vec::new();

    for line in src.lines() {
        // inside a heredoc body: consume until the terminator tag
        if let Some(tag) = heredoc_tags.first() {
            if line.trim() == tag {
                heredoc_tags.remove(0);
            }
            continue;
        }
        pending.extend(tokenize(line, &mut heredoc_tags));
        // `validates :name,` — the declaration continues on the next line
        if matches!(pending.last(), Some(Tok::Punct(','))) && heredoc_tags.is_empty() {
            continue;
        }
        let toks = std::mem::take(&mut pending);
        if toks.is_empty() {
            continue;
        }
        process_logical_line(&toks, &mut out, &mut depth, &mut model_stack, opts);
    }
    // EOF with a dangling continuation: process what accumulated
    if !pending.is_empty() {
        process_logical_line(&pending, &mut out, &mut depth, &mut model_stack, opts);
    }
    out
}

/// Process one logical (continuation-joined) line's tokens.
fn process_logical_line(
    toks: &[Tok],
    out: &mut FileAnalysis,
    depth: &mut i32,
    model_stack: &mut Vec<(i32, usize)>,
    opts: &ParseOptions,
) {
    // --- nesting bookkeeping --------------------------------------
    let mut opens = 0i32;
    let mut closes = 0i32;
    if let Some(Tok::Ident(first)) = toks.first() {
        if LEADING_OPENERS.contains(&first.as_str()) {
            opens += 1;
        }
    }
    for t in toks {
        match t {
            Tok::Ident(w) if w == "do" => opens += 1,
            Tok::Ident(w) if w == "end" => closes += 1,
            _ => {}
        }
    }

    // --- model declaration ------------------------------------------
    if let (Some(Tok::Ident(kw)), Some(Tok::Const(name))) = (toks.first(), toks.get(1)) {
        if kw == "class" {
            if let (Some(Tok::Lt), Some(Tok::Const(base))) = (toks.get(2), toks.get(3)) {
                if is_model_base(base, opts) {
                    out.models.push(ParsedModel {
                        name: name.clone(),
                        ..Default::default()
                    });
                    model_stack.push((*depth, out.models.len() - 1));
                }
            }
        }
    }

    // --- constructs ---------------------------------------------------
    let current_model = model_stack.last().map(|&(_, i)| i);
    if let Some(mi) = current_model {
        scan_model_line(toks, &mut out.models[mi]);
    }
    scan_cc_line(toks, out, current_model);

    // --- close scopes ------------------------------------------------
    *depth += opens - closes;
    while let Some(&(open_depth, _)) = model_stack.last() {
        if *depth <= open_depth {
            model_stack.pop();
        } else {
            break;
        }
    }
}

/// Scan a line inside a model body for validation/association
/// declarations.
fn scan_model_line(toks: &[Tok], model: &mut ParsedModel) {
    let Some(Tok::Ident(head)) = toks.first() else {
        return;
    };
    let symbols: Vec<&str> = toks
        .iter()
        .filter_map(|t| match t {
            Tok::Sym(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let keys: Vec<&str> = toks
        .iter()
        .filter_map(|t| match t {
            Tok::Key(k) => Some(k.as_str()),
            _ => None,
        })
        .collect();

    match head.as_str() {
        // associations -----------------------------------------------------
        "belongs_to" | "has_one" | "has_many" | "has_and_belongs_to_many" => {
            let name = symbols.first().copied().unwrap_or("").to_string();
            let dependent = find_option_value(toks, "dependent");
            let through = find_option_value(toks, "through");
            model.associations.push(AssociationUse {
                kind: head.clone(),
                name,
                dependent,
                through,
            });
        }
        // legacy validators --------------------------------------------------
        h if LEGACY_VALIDATORS.contains(&h) => {
            // one validation per field symbol (skipping option symbols,
            // which appear after the first Key/Arrow)
            let fields = leading_field_symbols(toks);
            let n = fields.len().max(1);
            for i in 0..n {
                model.validations.push(ValidationUse {
                    kind: canonical(h),
                    field: fields.get(i).copied().unwrap_or("").to_string(),
                    custom: false,
                });
            }
        }
        // modern `validates :f, presence: true, uniqueness: true` -----------
        "validates" => {
            let fields = leading_field_symbols(toks);
            let mut kinds: Vec<&'static str> = Vec::new();
            for k in &keys {
                if let Some(v) = key_to_validator(k) {
                    kinds.push(v);
                }
            }
            // hash-rocket form: `:presence => true`
            for (i, t) in toks.iter().enumerate() {
                if let (Tok::Sym(s), Some(Tok::Arrow)) = (t, toks.get(i + 1)) {
                    if let Some(v) = key_to_validator(s) {
                        kinds.push(v);
                    }
                }
            }
            if kinds.is_empty() {
                return;
            }
            let field_count = fields.len().max(1);
            for f in 0..field_count {
                for kind in &kinds {
                    model.validations.push(ValidationUse {
                        kind: canonical(kind),
                        field: fields.get(f).copied().unwrap_or("").to_string(),
                        custom: false,
                    });
                }
            }
        }
        // user-defined validations -----------------------------------------
        "validates_each" => {
            let fields = leading_field_symbols(toks);
            let n = fields.len().max(1);
            for i in 0..n {
                model.validations.push(ValidationUse {
                    kind: "custom".into(),
                    field: fields.get(i).copied().unwrap_or("").to_string(),
                    custom: true,
                });
            }
        }
        "validate" => {
            for s in &symbols {
                model.validations.push(ValidationUse {
                    kind: "custom".into(),
                    field: (*s).to_string(),
                    custom: true,
                });
            }
        }
        // `validates_with SomeValidator`
        "validates_with" => {
            model.validations.push(ValidationUse {
                kind: "custom".into(),
                field: String::new(),
                custom: true,
            });
        }
        _ => {}
    }
}

/// Field symbols before the first option key (`validates :a, :b,
/// presence: true` → `[a, b]`).
fn leading_field_symbols(toks: &[Tok]) -> Vec<&str> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate().skip(1) {
        match t {
            Tok::Sym(s) => {
                // a symbol followed by `=>` is an option, not a field
                if matches!(toks.get(i + 1), Some(Tok::Arrow)) {
                    break;
                }
                out.push(s.as_str());
            }
            Tok::Key(_) => break,
            Tok::Punct(',') => {}
            _ => {}
        }
    }
    out
}

/// Find `key: :value` / `:key => :value` option values on a line.
fn find_option_value(toks: &[Tok], key: &str) -> Option<String> {
    for (i, t) in toks.iter().enumerate() {
        let matched = match t {
            Tok::Key(k) => k == key,
            Tok::Sym(s) => s == key && matches!(toks.get(i + 1), Some(Tok::Arrow)),
            _ => false,
        };
        if matched {
            for next in toks.iter().skip(i + 1) {
                if let Tok::Sym(v) = next {
                    return Some(v.clone());
                }
                if matches!(next, Tok::Punct(',')) {
                    break;
                }
            }
        }
    }
    None
}

/// Scan any line for concurrency-control constructs (transactions,
/// locks) — these appear in models and controllers alike. `lock_version`
/// references inside a model body are additionally attributed to that
/// model (`current_model`).
fn scan_cc_line(toks: &[Tok], out: &mut FileAnalysis, current_model: Option<usize>) {
    for (i, t) in toks.iter().enumerate() {
        if let Tok::Ident(w) = t {
            match w.as_str() {
                "transaction" => {
                    // `transaction do`, `Model.transaction do`, or
                    // `transaction(isolation: ...) do`
                    let has_do = toks
                        .iter()
                        .skip(i + 1)
                        .any(|t| matches!(t, Tok::Ident(w) if w == "do"));
                    if has_do {
                        out.transactions += 1;
                    }
                }
                "lock!" | "with_lock" => out.pessimistic_locks += 1,
                "lock_version" => {
                    out.optimistic_locks += 1;
                    if let Some(mi) = current_model {
                        out.models[mi].lock_version_refs += 1;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> FileAnalysis {
        analyze_source(src, &ParseOptions::default())
    }

    #[test]
    fn detects_models_and_ignores_plain_classes() {
        let src = r#"
class User < ActiveRecord::Base
end
class Helper
end
class Post < ApplicationRecord
end
"#;
        let a = analyze(src);
        let names: Vec<&str> = a.models.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["User", "Post"]);
    }

    #[test]
    fn legacy_validators_count_per_field() {
        let src = r#"
class User < ActiveRecord::Base
  validates_presence_of :name, :email
  validates_uniqueness_of :email, :scope => :site_id
  validates_length_of :bio, :maximum => 500
end
"#;
        let a = analyze(src);
        let by_kind = a.validations_by_kind();
        assert_eq!(by_kind["validates_presence_of"], 2);
        assert_eq!(by_kind["validates_uniqueness_of"], 1);
        assert_eq!(by_kind["validates_length_of"], 1);
        // :scope and :maximum option symbols are not fields
        assert_eq!(a.validation_count(), 4);
    }

    #[test]
    fn modern_validates_counts_field_times_option() {
        let src = r#"
class User < ActiveRecord::Base
  validates :name, presence: true, uniqueness: true
  validates :email, :presence => true
  validates :a, :b, length: { maximum: 10 }
end
"#;
        let a = analyze(src);
        let by_kind = a.validations_by_kind();
        assert_eq!(by_kind["validates_presence_of"], 2);
        assert_eq!(by_kind["validates_uniqueness_of"], 1);
        assert_eq!(by_kind["validates_length_of"], 2);
    }

    #[test]
    fn custom_validations_are_flagged() {
        let src = r#"
class Post < ActiveRecord::Base
  validate :ensure_no_spam
  validates_each :karma do |record, attr, value|
    record.errors.add attr if value < 0
  end
  validates_with AvailabilityValidator
end
"#;
        let a = analyze(src);
        assert_eq!(a.validation_count(), 3);
        assert!(a.models[0].validations.iter().all(|v| v.custom));
    }

    #[test]
    fn associations_with_options() {
        let src = r#"
class Department < ActiveRecord::Base
  has_many :users, :dependent => :destroy
  has_many :managers, through: :positions
  has_one :budget, dependent: :nullify
  belongs_to :company
end
"#;
        let a = analyze(src);
        let m = &a.models[0];
        assert_eq!(m.associations.len(), 4);
        assert_eq!(m.associations[0].dependent.as_deref(), Some("destroy"));
        assert_eq!(m.associations[1].through.as_deref(), Some("positions"));
        assert_eq!(m.associations[2].dependent.as_deref(), Some("nullify"));
        assert_eq!(m.associations[3].kind, "belongs_to");
    }

    #[test]
    fn transactions_and_locks_counted_everywhere() {
        let src = r#"
class OrdersController
  def cancel
    Order.transaction do
      order.lock!
      order.update(state: 'canceled')
    end
  end
  def adjust
    item.with_lock do
      item.save!
    end
  end
end
class Order < ActiveRecord::Base
  # lock_version enables optimistic locking
  def bump
    self.lock_version
  end
end
"#;
        let a = analyze(src);
        assert_eq!(a.transactions, 1);
        assert_eq!(a.pessimistic_locks, 2);
        assert_eq!(a.optimistic_locks, 1);
    }

    #[test]
    fn comments_and_strings_do_not_count() {
        let src = r#"
class User < ActiveRecord::Base
  # validates_presence_of :name
  DESCRIPTION = "use validates_uniqueness_of :email here"
  validates_presence_of :real
end
"#;
        let a = analyze(src);
        assert_eq!(a.validation_count(), 1);
        assert_eq!(a.models[0].validations[0].field, "real");
    }

    #[test]
    fn nested_classes_attribute_constructs_correctly() {
        let src = r#"
class Outer < ActiveRecord::Base
  validates_presence_of :a
  class Inner
    def helper
      nil
    end
  end
  validates_presence_of :b
end
validates_presence_of :not_in_a_model
"#;
        let a = analyze(src);
        assert_eq!(a.models.len(), 1);
        assert_eq!(a.models[0].validations.len(), 2);
    }

    #[test]
    fn extra_base_classes_option() {
        let src = "class Widget < Spree::Base\n  validates_presence_of :name\nend\n";
        let none = analyze_source(src, &ParseOptions::default());
        assert!(none.models.is_empty());
        let opts = ParseOptions {
            extra_base_classes: vec!["Spree::Base".into()],
        };
        let some = analyze_source(src, &opts);
        assert_eq!(some.models.len(), 1);
        assert_eq!(some.validation_count(), 1);
    }

    #[test]
    fn regex_literals_in_format_validations_do_not_confuse_the_lexer() {
        let src = r#"
class User < ActiveRecord::Base
  validates :email, format: { with: /\A[^@\s]+@[^@\s]+\z/ }
  validates_format_of :zip, :with => /\A\d{5}\z/
end
"#;
        let a = analyze(src);
        assert_eq!(a.validations_by_kind()["validates_format_of"], 2);
    }

    #[test]
    fn multiline_declarations_join_on_trailing_comma() {
        let src = r#"
class User < ActiveRecord::Base
  validates :name,
    presence: true,
    uniqueness: true
  validates_presence_of :email,
    :login
  has_many :posts,
    dependent: :destroy
end
"#;
        let a = analyze(src);
        let by_kind = a.validations_by_kind();
        assert_eq!(by_kind["validates_presence_of"], 3, "name + email + login");
        assert_eq!(by_kind["validates_uniqueness_of"], 1);
        let assoc = &a.models[0].associations[0];
        assert_eq!(assoc.name, "posts");
        assert_eq!(assoc.dependent.as_deref(), Some("destroy"));
    }

    #[test]
    fn dangling_continuation_at_eof_still_counts() {
        let src = "class User < ActiveRecord::Base\n  validates :name,";
        let a = analyze(src);
        // the joined declaration is processed at EOF; no kind key yet so
        // nothing counts, but the model itself must exist and not panic
        assert_eq!(a.models.len(), 1);
        let src2 = "class User < ActiveRecord::Base\n  validates :name,\n    presence: true";
        let a2 = analyze(src2);
        assert_eq!(a2.validation_count(), 1);
    }

    #[test]
    fn percent_word_literals_do_not_leak_tokens() {
        let src = r#"
class Post < ActiveRecord::Base
  validates_inclusion_of :state, :in => %w[draft published archived]
  validates :kind, inclusion: { in: %i(article page) }
  ROLES = %w{admin editor}
end
"#;
        let a = analyze(src);
        let m = &a.models[0];
        assert_eq!(a.validations_by_kind()["validates_inclusion_of"], 2);
        // %w/%i contents must not be mistaken for validated fields
        let fields: Vec<&str> = m.validations.iter().map(|v| v.field.as_str()).collect();
        assert_eq!(fields, vec!["state", "kind"]);
    }

    #[test]
    fn heredoc_bodies_are_skipped() {
        let src = r#"
class Report < ActiveRecord::Base
  QUERY = <<~SQL
    SELECT * FROM reports
    -- validates_presence_of :fake
    validates_uniqueness_of :also_fake
  SQL
  LEGACY = <<-'EOS'
    validates :nope, presence: true
  EOS
  validates_presence_of :real
end
"#;
        let a = analyze(src);
        assert_eq!(a.validation_count(), 1);
        assert_eq!(a.models[0].validations[0].field, "real");
    }

    #[test]
    fn lock_version_refs_attribute_to_the_declaring_model() {
        let src = r#"
class Order < ActiveRecord::Base
  def bump
    self.lock_version
  end
end
class Plain
  def noop
    lock_version
  end
end
"#;
        let a = analyze(src);
        assert_eq!(a.optimistic_locks, 2);
        assert_eq!(a.models.len(), 1);
        assert_eq!(a.models[0].lock_version_refs, 1);
    }

    #[test]
    fn gem_aliases_canonicalize() {
        let src = r#"
class Photo < ActiveRecord::Base
  validates_email_format_of :contact
  validates_size_of :caption, :maximum => 50
  validates_attachment_content_type :image, :content_type => ['image/png']
  validates_attachment_size :image, :less_than => 1000
end
"#;
        let a = analyze(src);
        let by_kind = a.validations_by_kind();
        assert_eq!(by_kind["validates_email"], 1);
        assert_eq!(by_kind["validates_length_of"], 1);
        assert_eq!(by_kind["validates_attachment_content_type"], 1);
        assert_eq!(by_kind["validates_attachment_size"], 1);
    }
}
