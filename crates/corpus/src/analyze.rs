//! The survey pipeline: measure a corpus of (synthesized) applications
//! and produce the datasets behind Table 1, Table 2/Figure 1, Figure 6,
//! and Figure 7.

use crate::ruby::{analyze_source, FileAnalysis, ParseOptions};
use crate::synth::{ConstructKind, SyntheticApp};
use std::collections::BTreeMap;

/// Per-application survey row (the measured analogue of a Table 2 row).
#[derive(Debug, Clone)]
pub struct SurveyRow {
    /// Application name.
    pub name: String,
    /// Measured model count.
    pub models: usize,
    /// Measured transaction uses.
    pub transactions: usize,
    /// Measured pessimistic lock uses.
    pub pessimistic_locks: usize,
    /// Measured optimistic lock uses.
    pub optimistic_locks: usize,
    /// Measured validation uses.
    pub validations: usize,
    /// Measured association uses.
    pub associations: usize,
}

/// The full survey output.
#[derive(Debug, Clone, Default)]
pub struct Survey {
    /// One row per application, corpus order.
    pub rows: Vec<SurveyRow>,
    /// Validation occurrences by canonical kind, corpus-wide.
    pub validations_by_kind: BTreeMap<String, usize>,
}

impl Survey {
    /// Sum a field over rows.
    fn sum(&self, f: impl Fn(&SurveyRow) -> usize) -> usize {
        self.rows.iter().map(f).sum()
    }

    /// Corpus-wide averages per application:
    /// `(models, transactions, plocks, olocks, validations, associations)`.
    pub fn averages(&self) -> (f64, f64, f64, f64, f64, f64) {
        let n = self.rows.len().max(1) as f64;
        (
            self.sum(|r| r.models) as f64 / n,
            self.sum(|r| r.transactions) as f64 / n,
            self.sum(|r| r.pessimistic_locks) as f64 / n,
            self.sum(|r| r.optimistic_locks) as f64 / n,
            self.sum(|r| r.validations) as f64 / n,
            self.sum(|r| r.associations) as f64 / n,
        )
    }

    /// Per-model usage rates: `(transactions, locks, validations,
    /// associations)` per model — the Figure 1 dotted lines.
    pub fn per_model(&self) -> (f64, f64, f64, f64) {
        let models = self.sum(|r| r.models).max(1) as f64;
        (
            self.sum(|r| r.transactions) as f64 / models,
            self.sum(|r| r.pessimistic_locks + r.optimistic_locks) as f64 / models,
            self.sum(|r| r.validations) as f64 / models,
            self.sum(|r| r.associations) as f64 / models,
        )
    }

    /// `(validations/transactions, associations/transactions)` — the
    /// headline "13.6× and 24.2×" ratios.
    pub fn feral_ratios(&self) -> (f64, f64) {
        let t = self.sum(|r| r.transactions).max(1) as f64;
        (
            self.sum(|r| r.validations) as f64 / t,
            self.sum(|r| r.associations) as f64 / t,
        )
    }

    /// Fraction of applications using any transactions.
    pub fn fraction_with_transactions(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        self.rows.iter().filter(|r| r.transactions > 0).count() as f64 / n
    }

    /// Applications using any locks.
    pub fn apps_with_locks(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.pessimistic_locks + r.optimistic_locks > 0)
            .count()
    }

    /// Table 1 view: top-`k` validator kinds by occurrence, with the rest
    /// folded into `Other` (custom validations reported separately).
    pub fn table_one(&self, k: usize) -> (Vec<(String, usize)>, usize, usize) {
        let mut builtin: Vec<(String, usize)> = self
            .validations_by_kind
            .iter()
            .filter(|(name, _)| *name != "custom")
            .map(|(n, c)| (n.clone(), *c))
            .collect();
        builtin.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let custom = self.validations_by_kind.get("custom").copied().unwrap_or(0);
        let other: usize = builtin.iter().skip(k).map(|(_, c)| c).sum();
        builtin.truncate(k);
        (builtin, other, custom)
    }
}

/// Analyze one application's rendered sources.
pub fn analyze_app(sources: &[(String, String)], opts: &ParseOptions) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    for (_, src) in sources {
        out.absorb(analyze_source(src, opts));
    }
    out
}

/// Run the survey over a corpus at final state.
pub fn survey(corpus: &[SyntheticApp]) -> Survey {
    let opts = ParseOptions::default();
    let mut out = Survey::default();
    for app in corpus {
        let analysis = analyze_app(&app.render(None), &opts);
        for (kind, count) in analysis.validations_by_kind() {
            *out.validations_by_kind.entry(kind).or_insert(0) += count;
        }
        out.rows.push(SurveyRow {
            name: app.stats.name.to_string(),
            models: analysis.models.len(),
            transactions: analysis.transactions,
            pessimistic_locks: analysis.pessimistic_locks,
            optimistic_locks: analysis.optimistic_locks,
            validations: analysis.validation_count(),
            associations: analysis.association_count(),
        });
    }
    out
}

/// One checkpoint of the longitudinal (Figure 6) analysis: the median,
/// across applications, of each construct count normalized to its final
/// value.
#[derive(Debug, Clone, Copy)]
pub struct HistoryPoint {
    /// Checkpoint position as a fraction of commit history (0..=1).
    pub commit_fraction: f64,
    /// Median fraction of final models present.
    pub models: f64,
    /// Median fraction of final validations present.
    pub validations: f64,
    /// Median fraction of final associations present.
    pub associations: f64,
    /// Median fraction of final transactions present.
    pub transactions: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    let mid = xs.len() / 2;
    if xs.len().is_multiple_of(2) {
        (xs[mid - 1] + xs[mid]) / 2.0
    } else {
        xs[mid]
    }
}

/// The Figure 6 analysis: re-run the (real) analyzer at evenly spaced
/// checkpoints through each application's commit history. Following the
/// paper, an application is omitted from a construct's median when its
/// final count of that construct is zero.
pub fn history(corpus: &[SyntheticApp], checkpoints: usize) -> Vec<HistoryPoint> {
    let opts = ParseOptions::default();
    let mut out = Vec::with_capacity(checkpoints + 1);
    // measure finals once
    let finals: Vec<FileAnalysis> = corpus
        .iter()
        .map(|a| analyze_app(&a.render(None), &opts))
        .collect();
    for cp in 0..=checkpoints {
        let frac = cp as f64 / checkpoints as f64;
        let mut m = Vec::new();
        let mut v = Vec::new();
        let mut a = Vec::new();
        let mut t = Vec::new();
        for (app, fin) in corpus.iter().zip(finals.iter()) {
            let limit = ((app.stats.commits.max(1) - 1) as f64 * frac) as u32;
            let analysis = analyze_app(&app.render(Some(limit)), &opts);
            let frac_of = |now: usize, end: usize, bucket: &mut Vec<f64>| {
                if end > 0 {
                    bucket.push(now as f64 / end as f64);
                }
            };
            frac_of(analysis.models.len(), fin.models.len(), &mut m);
            frac_of(analysis.validation_count(), fin.validation_count(), &mut v);
            frac_of(
                analysis.association_count(),
                fin.association_count(),
                &mut a,
            );
            frac_of(analysis.transactions, fin.transactions, &mut t);
        }
        out.push(HistoryPoint {
            commit_fraction: frac,
            models: median(m),
            validations: median(v),
            associations: median(a),
            transactions: median(t),
        });
    }
    out
}

/// Authorship CDFs (Figure 7): for each application, sort authors by
/// contribution (descending) and accumulate; return the *average* CDF
/// sampled at `points` author-fractions, for commits and for invariants
/// (validations + associations).
#[derive(Debug, Clone)]
pub struct AuthorshipCdf {
    /// Sampled author fractions (x axis).
    pub author_fraction: Vec<f64>,
    /// Average cumulative fraction of commits authored.
    pub commits: Vec<f64>,
    /// Average cumulative fraction of invariants authored.
    pub invariants: Vec<f64>,
}

impl AuthorshipCdf {
    /// Smallest author fraction whose average CDF reaches `target`
    /// (e.g. 0.95) for commits.
    pub fn authors_for_commit_share(&self, target: f64) -> f64 {
        Self::first_reaching(&self.author_fraction, &self.commits, target)
    }

    /// Smallest author fraction whose average CDF reaches `target` for
    /// invariants.
    pub fn authors_for_invariant_share(&self, target: f64) -> f64 {
        Self::first_reaching(&self.author_fraction, &self.invariants, target)
    }

    fn first_reaching(xs: &[f64], ys: &[f64], target: f64) -> f64 {
        for (x, y) in xs.iter().zip(ys.iter()) {
            if *y >= target {
                return *x;
            }
        }
        1.0
    }
}

/// Compute per-app author-contribution CDF values at `points` samples and
/// average across apps.
pub fn authorship(corpus: &[SyntheticApp], points: usize) -> AuthorshipCdf {
    let xs: Vec<f64> = (0..=points).map(|i| i as f64 / points as f64).collect();
    let mut commit_sum = vec![0.0; xs.len()];
    let mut inv_sum = vec![0.0; xs.len()];
    let mut n_apps = 0.0;
    for app in corpus {
        let authors = app.stats.authors.max(1) as usize;
        // commit counts per author
        let mut commit_counts = vec![0usize; authors];
        for &a in &app.commit_authors {
            commit_counts[a as usize] += 1;
        }
        // invariant counts per author
        let mut inv_counts = vec![0usize; authors];
        for c in &app.constructs {
            if matches!(
                c.kind,
                ConstructKind::Validation(_) | ConstructKind::Association(_)
            ) {
                inv_counts[c.author as usize] += 1;
            }
        }
        let cdf_at = |counts: &mut Vec<usize>, frac: f64| -> f64 {
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let total: usize = counts.iter().sum();
            if total == 0 {
                return 1.0;
            }
            let k = ((authors as f64) * frac).round() as usize;
            let head: usize = counts.iter().take(k).sum();
            head as f64 / total as f64
        };
        let mut cc = commit_counts.clone();
        let mut ic = inv_counts.clone();
        for (i, &x) in xs.iter().enumerate() {
            commit_sum[i] += cdf_at(&mut cc, x);
            inv_sum[i] += cdf_at(&mut ic, x);
        }
        n_apps += 1.0;
    }
    AuthorshipCdf {
        author_fraction: xs,
        commits: commit_sum.into_iter().map(|s| s / n_apps).collect(),
        invariants: inv_sum.into_iter().map(|s| s / n_apps).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize_corpus;
    use crate::table2;

    fn corpus() -> Vec<SyntheticApp> {
        synthesize_corpus(2015)
    }

    #[test]
    fn survey_reproduces_table_two_totals_exactly() {
        let s = survey(&corpus());
        let t = table2::totals();
        assert_eq!(s.sum(|r| r.models) as u32, t.models);
        assert_eq!(s.sum(|r| r.validations) as u32, t.validations);
        assert_eq!(s.sum(|r| r.associations) as u32, t.associations);
        assert_eq!(s.sum(|r| r.transactions) as u32, t.transactions);
        assert_eq!(s.sum(|r| r.pessimistic_locks) as u32, t.pessimistic_locks);
        assert_eq!(s.sum(|r| r.optimistic_locks) as u32, t.optimistic_locks);
    }

    #[test]
    fn survey_reproduces_headline_ratios() {
        let s = survey(&corpus());
        let (v_ratio, a_ratio) = s.feral_ratios();
        assert!((v_ratio - 13.6).abs() < 0.1);
        assert!((a_ratio - 24.2).abs() < 0.1);
        assert!((s.fraction_with_transactions() - 0.687).abs() < 0.01);
        assert_eq!(s.apps_with_locks(), 6);
    }

    #[test]
    fn survey_reproduces_table_one_counts_exactly() {
        let s = survey(&corpus());
        let (top, other, custom) = s.table_one(10);
        // the exact Table 1 counts flow through synthesis + analysis
        let expect: Vec<(&str, usize)> = vec![
            ("validates_presence_of", 1762),
            ("validates_uniqueness_of", 440),
            ("validates_length_of", 438),
            ("validates_inclusion_of", 201),
            ("validates_numericality_of", 133),
            ("validates_format_of", 150), // "Other" constituent
            ("validates_exclusion_of", 100),
            ("validates_acceptance_of", 71),
            ("validates_associated", 39),
            ("validates_email", 34),
        ];
        for (name, count) in expect.iter().take(5) {
            let got = top
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            assert_eq!(got, *count, "{name}");
        }
        assert_eq!(custom, 60);
        let total: usize = top.iter().map(|(_, c)| c).sum::<usize>() + other + custom;
        assert_eq!(total, 3505);
    }

    #[test]
    fn history_shows_models_leading_cc_constructs() {
        let c: Vec<SyntheticApp> = corpus().into_iter().take(12).collect();
        let h = history(&c, 5);
        assert_eq!(h.len(), 6);
        // start empty-ish, end complete
        let last = h.last().unwrap();
        assert!((last.models - 1.0).abs() < 1e-9);
        assert!((last.validations - 1.0).abs() < 1e-9);
        // at 40% of history, models are further along than validations
        let early = &h[2];
        assert!(
            early.models > early.validations,
            "models {:.2} should lead validations {:.2}",
            early.models,
            early.validations
        );
        assert!(early.models > early.transactions);
    }

    #[test]
    fn authorship_invariants_more_concentrated_than_commits() {
        let c = corpus();
        let cdf = authorship(&c, 40);
        let commit_authors_95 = cdf.authors_for_commit_share(0.95);
        let invariant_authors_95 = cdf.authors_for_invariant_share(0.95);
        // Figure 7: 95% of commits by ~42.4% of authors; 95% of
        // invariants by ~20.3%
        assert!(
            invariant_authors_95 < commit_authors_95,
            "invariants ({invariant_authors_95:.2}) should need fewer authors than commits ({commit_authors_95:.2})"
        );
        assert!(
            (0.25..0.65).contains(&commit_authors_95),
            "commit 95% share at {commit_authors_95:.2} authors"
        );
        assert!(
            (0.08..0.40).contains(&invariant_authors_95),
            "invariant 95% share at {invariant_authors_95:.2} authors"
        );
    }
}
