//! The paper's Table 2, embedded verbatim: the 67-application corpus with
//! per-application counts of models (M), transactions (T), pessimistic
//! locks (PL), optimistic locks (OL), validations (V), and associations
//! (A), plus project metadata.
//!
//! This is the ground truth the corpus synthesizer regenerates Ruby
//! source from, and the reference the survey analyzer is tested against.

/// Ground-truth statistics for one application (one row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppStats {
    /// Project name.
    pub name: &'static str,
    /// Application domain.
    pub domain: &'static str,
    /// Number of commit authors.
    pub authors: u32,
    /// Lines of Ruby.
    pub loc: u32,
    /// Number of commits.
    pub commits: u32,
    /// Models (Active Record classes).
    pub models: u32,
    /// Transaction uses.
    pub transactions: u32,
    /// Pessimistic lock uses.
    pub pessimistic_locks: u32,
    /// Optimistic lock uses (`lock_version`).
    pub optimistic_locks: u32,
    /// Validation uses.
    pub validations: u32,
    /// Association uses.
    pub associations: u32,
    /// GitHub stars (October 2014).
    pub stars: u32,
}

macro_rules! row {
    ($name:literal, $domain:literal, $au:literal, $loc:literal, $c:literal,
     $m:literal, $t:literal, $pl:literal, $ol:literal, $v:literal, $a:literal, $s:literal) => {
        AppStats {
            name: $name,
            domain: $domain,
            authors: $au,
            loc: $loc,
            commits: $c,
            models: $m,
            transactions: $t,
            pessimistic_locks: $pl,
            optimistic_locks: $ol,
            validations: $v,
            associations: $a,
            stars: $s,
        }
    };
}

/// All 67 applications, in Table 2 order (descending model count).
pub const TABLE_TWO: &[AppStats] = &[
    row!(
        "Canvas LMS",
        "Education",
        132,
        309_580,
        12_853,
        161,
        46,
        12,
        1,
        354,
        837,
        1_251
    ),
    row!(
        "OpenCongress",
        "Congress data",
        15,
        30_867,
        1_884,
        106,
        1,
        0,
        0,
        48,
        357,
        124
    ),
    row!(
        "Fedena",
        "Education management",
        4,
        49_297,
        1_471,
        104,
        5,
        0,
        0,
        153,
        317,
        262
    ),
    row!(
        "Discourse",
        "Community discussion",
        440,
        72_225,
        11_480,
        77,
        41,
        0,
        0,
        83,
        266,
        12_233
    ),
    row!(
        "Spree",
        "eCommerce",
        677,
        47_268,
        14_096,
        72,
        6,
        0,
        0,
        92,
        252,
        5_582
    ),
    row!(
        "Sharetribe",
        "Content management",
        35,
        31_164,
        7_140,
        68,
        0,
        0,
        0,
        112,
        202,
        127
    ),
    row!(
        "ROR Ecommerce",
        "eCommerce",
        19,
        16_808,
        1_604,
        63,
        2,
        3,
        0,
        219,
        207,
        857
    ),
    row!(
        "Diaspora",
        "Social network",
        388,
        31_726,
        14_640,
        63,
        2,
        0,
        0,
        66,
        128,
        9_571
    ),
    row!(
        "Redmine",
        "Project management",
        10,
        81_536,
        11_042,
        62,
        11,
        0,
        1,
        131,
        157,
        2_264
    ),
    row!(
        "ChiliProject",
        "Project management",
        53,
        66_683,
        5_532,
        61,
        7,
        0,
        1,
        118,
        130,
        623
    ),
    row!(
        "Spot.us",
        "Community reporting",
        46,
        94_705,
        9_280,
        58,
        0,
        0,
        0,
        96,
        165,
        343
    ),
    row!(
        "Jobsworth",
        "Project management",
        46,
        24_731,
        7_890,
        55,
        10,
        0,
        0,
        86,
        225,
        478
    ),
    row!(
        "OpenProject",
        "Project management",
        63,
        84_374,
        11_185,
        49,
        8,
        1,
        3,
        136,
        227,
        371
    ),
    row!(
        "Danbooru",
        "Image board",
        25,
        27_857,
        3_738,
        47,
        9,
        0,
        0,
        71,
        114,
        238
    ),
    row!(
        "Salor Retail",
        "Retail point of sale",
        26,
        18_404,
        2_259,
        44,
        0,
        0,
        0,
        81,
        309,
        24
    ),
    row!(
        "Zena",
        "Content management",
        7,
        56_430,
        2_514,
        44,
        1,
        0,
        0,
        12,
        43,
        172
    ),
    row!(
        "Skyline CMS",
        "Content management",
        7,
        10_404,
        894,
        40,
        5,
        0,
        0,
        28,
        89,
        127
    ),
    row!(
        "Opal",
        "Project management",
        6,
        10_707,
        474,
        38,
        3,
        0,
        0,
        42,
        96,
        45
    ),
    row!(
        "OneBody",
        "Church portal",
        33,
        20_398,
        3_973,
        36,
        3,
        0,
        0,
        97,
        140,
        1_041
    ),
    row!(
        "CommunityEngine",
        "Social networking",
        67,
        13_967,
        1_613,
        35,
        3,
        0,
        0,
        92,
        101,
        1_073
    ),
    row!("Publify", "Blogging", 93, 16_763, 5_067, 35, 7, 0, 0, 33, 50, 1_274),
    row!(
        "Comas",
        "Conference management",
        5,
        5_879,
        435,
        33,
        6,
        0,
        0,
        80,
        45,
        21
    ),
    row!(
        "BrowserCMS",
        "Content management",
        56,
        21_259,
        2_503,
        32,
        4,
        0,
        0,
        47,
        77,
        1_183
    ),
    row!(
        "RailsCollab",
        "Project management",
        25,
        8_849,
        865,
        29,
        6,
        0,
        0,
        40,
        122,
        262
    ),
    row!(
        "OpenGovernment",
        "Government data",
        15,
        9_383,
        2_231,
        28,
        4,
        0,
        0,
        22,
        141,
        160
    ),
    row!(
        "Tracks",
        "Personal productivity",
        89,
        17_419,
        3_121,
        27,
        2,
        0,
        0,
        24,
        43,
        639
    ),
    row!(
        "GitLab",
        "Code management",
        671,
        39_094,
        12_266,
        24,
        15,
        0,
        0,
        131,
        114,
        14_129
    ),
    row!(
        "Brevidy",
        "Video sharing",
        2,
        7_608,
        6,
        24,
        1,
        0,
        0,
        74,
        56,
        167
    ),
    row!(
        "Insoshi",
        "Social network",
        16,
        121_552,
        1_321,
        24,
        1,
        0,
        0,
        41,
        63,
        1_583
    ),
    row!(
        "Alchemy",
        "Content management",
        34,
        19_329,
        4_222,
        23,
        2,
        0,
        0,
        37,
        40,
        240
    ),
    row!(
        "Teambox",
        "Project management",
        48,
        32_844,
        3_155,
        22,
        2,
        0,
        0,
        56,
        116,
        1_864
    ),
    row!(
        "Fat Free CRM",
        "Customer relationship",
        99,
        21_284,
        4_144,
        21,
        3,
        0,
        0,
        39,
        92,
        2_384
    ),
    row!(
        "linuxfr.org",
        "FLOSS community",
        29,
        8_123,
        2_271,
        20,
        1,
        0,
        0,
        50,
        50,
        86
    ),
    row!(
        "Squash",
        "Bug reporting",
        28,
        15_776,
        231,
        19,
        6,
        0,
        0,
        87,
        62,
        879
    ),
    row!(
        "Shoppe",
        "eCommerce",
        14,
        3_172,
        349,
        19,
        1,
        0,
        0,
        58,
        34,
        208
    ),
    row!(
        "nimbleShop",
        "eCommerce",
        12,
        8_041,
        1_805,
        19,
        0,
        0,
        0,
        47,
        34,
        47
    ),
    row!(
        "Piggybak",
        "eCommerce",
        16,
        2_235,
        383,
        17,
        1,
        0,
        0,
        51,
        35,
        166
    ),
    row!(
        "wallgig",
        "Wallpaper sharing",
        6,
        5_543,
        350,
        17,
        1,
        0,
        0,
        42,
        45,
        18
    ),
    row!(
        "Rucksack",
        "Collaboration",
        7,
        5_346,
        445,
        17,
        3,
        0,
        0,
        18,
        79,
        169
    ),
    row!(
        "Calagator",
        "Online calendar",
        48,
        9_061,
        1_766,
        16,
        0,
        0,
        0,
        8,
        11,
        196
    ),
    row!(
        "Amahi Platform",
        "Home media sharing",
        15,
        6_244,
        577,
        15,
        2,
        0,
        0,
        38,
        22,
        65
    ),
    row!(
        "Sprint",
        "Project management",
        5,
        3_056,
        71,
        14,
        0,
        0,
        0,
        50,
        45,
        247
    ),
    row!(
        "Citizenry",
        "Community directory",
        17,
        8_197,
        512,
        13,
        0,
        0,
        0,
        12,
        45,
        138
    ),
    row!(
        "LovdByLess",
        "Social network",
        17,
        30_718,
        150,
        12,
        0,
        0,
        0,
        27,
        41,
        568
    ),
    row!(
        "lobste.rs",
        "Link sharing",
        24,
        4_963,
        624,
        12,
        8,
        0,
        0,
        20,
        40,
        646
    ),
    row!(
        "BucketWise",
        "Personal finance",
        10,
        4_644,
        258,
        12,
        2,
        0,
        0,
        11,
        46,
        484
    ),
    row!("Sugar", "Forum", 13, 7_703, 1_316, 11, 1, 0, 0, 20, 53, 89),
    row!(
        "Comf. Mexican Sofa",
        "Content management",
        106,
        8_881,
        1_746,
        10,
        0,
        0,
        0,
        35,
        26,
        1_523
    ),
    row!(
        "Radiant",
        "Content management",
        100,
        15_923,
        2_385,
        9,
        3,
        0,
        1,
        26,
        12,
        1_554
    ),
    row!("Forem", "Forum", 100, 4_676, 1_383, 9, 0, 0, 0, 8, 29, 1_302),
    row!("Saasy", "eCommerce", 2, 163_170, 21, 8, 4, 0, 0, 19, 9, 520),
    row!(
        "Refinery CMS",
        "Content management",
        438,
        10_847,
        9_107,
        8,
        0,
        0,
        0,
        16,
        8,
        2_979
    ),
    row!(
        "BostonRB",
        "Ruby community",
        40,
        2_135,
        889,
        7,
        0,
        0,
        0,
        18,
        12,
        199
    ),
    row!(
        "Inkwell",
        "Social networking",
        6,
        6_764,
        156,
        7,
        0,
        0,
        0,
        4,
        51,
        327
    ),
    row!(
        "Boxroom",
        "File sharing",
        9,
        1_956,
        368,
        6,
        0,
        0,
        0,
        18,
        12,
        218
    ),
    row!(
        "Copycopter",
        "Copy writing",
        9,
        2_347,
        46,
        6,
        1,
        0,
        0,
        7,
        14,
        652
    ),
    row!("Enki", "Blogging", 29, 4_678, 562, 6, 1, 0, 0, 5, 7, 835),
    row!(
        "Fulcrum",
        "Project planning",
        46,
        3_190,
        637,
        5,
        0,
        0,
        0,
        13,
        15,
        1_335
    ),
    row!(
        "GitLab CI",
        "Continuous integration",
        80,
        3_700,
        870,
        5,
        2,
        0,
        0,
        11,
        13,
        1_188
    ),
    row!(
        "Kandan",
        "Persistent chat",
        56,
        1_694,
        808,
        5,
        0,
        0,
        0,
        6,
        8,
        2_249
    ),
    row!("Juvia", "Commenting", 8, 2_302, 202, 4, 3, 0, 0, 11, 8, 937),
    row!(
        "Go vs Go",
        "Go board game",
        2,
        2_378,
        302,
        4,
        0,
        0,
        0,
        11,
        9,
        145
    ),
    row!(
        "Adopt-a-Hydrant",
        "Civics",
        14,
        14_165,
        1_242,
        3,
        0,
        0,
        0,
        11,
        8,
        182
    ),
    row!(
        "Selfstarter",
        "Crowdfunding",
        23,
        577,
        127,
        3,
        0,
        0,
        0,
        1,
        4,
        2_688
    ),
    row!(
        "Heaven",
        "Code deployment",
        19,
        2_090,
        387,
        2,
        0,
        0,
        0,
        2,
        2,
        163
    ),
    row!("Carter", "eCommerce", 3, 1_093, 70, 2, 1, 0, 0, 0, 12, 22),
    row!("Obtvse", "Blogging", 27, 455, 393, 1, 0, 0, 0, 3, 0, 1_516),
];

/// Totals over Table 2 (used as the analyzer's reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusTotals {
    /// Sum of models.
    pub models: u32,
    /// Sum of transactions.
    pub transactions: u32,
    /// Sum of pessimistic lock uses.
    pub pessimistic_locks: u32,
    /// Sum of optimistic lock uses.
    pub optimistic_locks: u32,
    /// Sum of validations.
    pub validations: u32,
    /// Sum of associations.
    pub associations: u32,
    /// Applications in the corpus.
    pub apps: u32,
}

/// Compute corpus totals.
pub fn totals() -> CorpusTotals {
    let mut t = CorpusTotals {
        models: 0,
        transactions: 0,
        pessimistic_locks: 0,
        optimistic_locks: 0,
        validations: 0,
        associations: 0,
        apps: TABLE_TWO.len() as u32,
    };
    for a in TABLE_TWO {
        t.models += a.models;
        t.transactions += a.transactions;
        t.pessimistic_locks += a.pessimistic_locks;
        t.optimistic_locks += a.optimistic_locks;
        t.validations += a.validations;
        t.associations += a.associations;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_67_applications() {
        assert_eq!(TABLE_TWO.len(), 67);
    }

    #[test]
    fn totals_match_the_papers_averages() {
        let t = totals();
        let n = t.apps as f64;
        // Table 2's "Average" row: M 29.07, T 3.84, PL 0.24, OL 0.10,
        // V 52.31, A 92.87
        assert!((t.models as f64 / n - 29.07).abs() < 0.05, "{}", t.models);
        assert!((t.transactions as f64 / n - 3.84).abs() < 0.05);
        assert!((t.pessimistic_locks as f64 / n - 0.24).abs() < 0.05);
        assert!((t.optimistic_locks as f64 / n - 0.10).abs() < 0.05);
        assert!((t.validations as f64 / n - 52.31).abs() < 0.05);
        assert!((t.associations as f64 / n - 92.87).abs() < 0.05);
    }

    #[test]
    fn headline_ratios_match_section_3() {
        let t = totals();
        // "validations and associations are, respectively, 13.6 and 24.2
        // times more common than transactions"
        let v_ratio = t.validations as f64 / t.transactions as f64;
        let a_ratio = t.associations as f64 / t.transactions as f64;
        assert!((v_ratio - 13.6).abs() < 0.1, "v/t = {v_ratio:.2}");
        assert!((a_ratio - 24.2).abs() < 0.1, "a/t = {a_ratio:.2}");
        // "over 37 times more popular than transactions" (combined)
        assert!((v_ratio + a_ratio) > 37.0);
        // per-model figures from §3.2
        let per_model = |x: u32| x as f64 / t.models as f64;
        assert!((per_model(t.transactions) - 0.13).abs() < 0.01);
        assert!((per_model(t.validations) - 1.80).abs() < 0.01);
        assert!((per_model(t.associations) - 3.19).abs() < 0.01);
        // "over 9950 uses of application-level validations": the Table 2
        // column sums give V + A = 9727; the paper's 9950 includes uses
        // its per-app table rounds away (see EXPERIMENTS.md). We assert
        // the reproducible bound.
        assert_eq!(t.validations + t.associations, 9727);
    }

    #[test]
    fn transaction_and_lock_usage_counts_match_section_3() {
        // "46 (68.7%) of applications used transactions"
        let with_txn = TABLE_TWO.iter().filter(|a| a.transactions > 0).count();
        assert_eq!(with_txn, 46);
        // "all used some validations or associations"
        assert!(TABLE_TWO.iter().all(|a| a.validations + a.associations > 0));
        // "Only six applications used locks"
        let with_locks = TABLE_TWO
            .iter()
            .filter(|a| a.pessimistic_locks + a.optimistic_locks > 0)
            .count();
        assert_eq!(with_locks, 6);
        // "Use of pessimistic locks was over twice as common as ... optimistic"
        let t = totals();
        assert!(t.pessimistic_locks as f64 > 2.0 * t.optimistic_locks as f64);
    }

    #[test]
    fn spree_row_matches_its_case_study() {
        let spree = TABLE_TWO.iter().find(|a| a.name == "Spree").unwrap();
        // "Spree uses only six transactions"
        assert_eq!(spree.transactions, 6);
        assert_eq!(spree.models, 72);
    }
}
