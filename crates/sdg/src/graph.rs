//! Static dependency graphs over template pairs.
//!
//! Two templates running concurrently can only interact where an access
//! of one conflicts with an access of the other. Each such *overlap*
//! yields candidate Adya-style dependency edges, and the isolation level
//! decides which of them can actually materialise between two
//! transactions that both commit (`IsolationLevel::admits_concurrent`):
//!
//! - a read/write overlap (T reads item i, U writes i) can surface as a
//!   `rw` antidependency T→U (T read the version U overwrote) or as a
//!   `wr` dependency U→T (T read U's committed write mid-flight);
//! - a write/write overlap never becomes a cycle edge here. Under
//!   first-updater-wins it *aborts* one side (a safety gate, handled in
//!   [`crate::matrix`]); where both writes are admitted, commit-duration
//!   write locks order them, and a pure-ww cycle is a lock deadlock the
//!   engine resolves by abort, not an anomaly.

use crate::template::TxnTemplate;
use feral_db::{ConflictKind, IsolationLevel};

/// A read/write conflict between steps of two different templates.
#[derive(Debug, Clone)]
pub struct RwOverlap {
    /// Index into the pair's overlap table (edges cite it; a cycle may
    /// not use the same overlap twice).
    pub id: usize,
    /// Template index of the reading transaction.
    pub reader_txn: usize,
    /// Step index of the read within the reader.
    pub reader_step: usize,
    /// Template index of the writing transaction.
    pub writer_txn: usize,
    /// Step index of the write within the writer.
    pub writer_step: usize,
    /// The conflicting item (`"key_values{key='dup'}"`).
    pub item: String,
}

/// A write/write conflict between steps of two different templates.
#[derive(Debug, Clone)]
pub struct WwOverlap {
    /// Template index of one writer.
    pub a_txn: usize,
    /// Its writing step.
    pub a_step: usize,
    /// Template index of the other writer.
    pub b_txn: usize,
    /// Its writing step.
    pub b_step: usize,
    /// The doubly-written item (`"accounts[acct]"`).
    pub item: String,
}

/// One admitted dependency edge between two templates.
#[derive(Debug, Clone)]
pub struct Edge {
    /// `rw` (antidependency) or `wr` (read dependency).
    pub kind: ConflictKind,
    /// Source template index.
    pub from: usize,
    /// Target template index.
    pub to: usize,
    /// The [`RwOverlap`] this edge interprets.
    pub overlap: usize,
    /// The conflicting item, for rendering.
    pub item: String,
}

/// The static dependency graph of one template pair at one isolation
/// level.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// The concurrent transaction templates (node i = `templates[i]`).
    pub templates: Vec<TxnTemplate>,
    /// Isolation level the edges were admitted under.
    pub isolation: IsolationLevel,
    /// All read/write overlaps between distinct templates.
    pub rw_overlaps: Vec<RwOverlap>,
    /// All write/write overlaps between distinct templates.
    pub ww_overlaps: Vec<WwOverlap>,
    /// Candidate edges the isolation level admits between two
    /// *committing* concurrent transactions.
    pub edges: Vec<Edge>,
}

/// Enumerate every read/write and write/write overlap between distinct
/// templates. Overlaps are a property of the access sets alone — the
/// isolation level only decides which *edges* they admit.
fn collect_overlaps(templates: &[TxnTemplate]) -> (Vec<RwOverlap>, Vec<WwOverlap>) {
    let mut rw_overlaps = Vec::new();
    let mut ww_overlaps = Vec::new();
    for (ti, t) in templates.iter().enumerate() {
        for (ui, u) in templates.iter().enumerate() {
            if ti == ui {
                continue;
            }
            for (si, s) in t.steps.iter().enumerate() {
                for (wi, w) in u.steps.iter().enumerate() {
                    if w.access.write_conflicts_read(&s.access) {
                        rw_overlaps.push(RwOverlap {
                            id: rw_overlaps.len(),
                            reader_txn: ti,
                            reader_step: si,
                            writer_txn: ui,
                            writer_step: wi,
                            item: s.access.item(),
                        });
                    }
                    // count each unordered ww pair once
                    if ti < ui && w.access.write_conflicts_write(&s.access) {
                        ww_overlaps.push(WwOverlap {
                            a_txn: ti,
                            a_step: si,
                            b_txn: ui,
                            b_step: wi,
                            item: s.access.item(),
                        });
                    }
                }
            }
        }
    }
    (rw_overlaps, ww_overlaps)
}

/// Build the dependency graph for `templates` at `isolation`.
pub fn build_graph(templates: Vec<TxnTemplate>, isolation: IsolationLevel) -> DepGraph {
    let (rw_overlaps, ww_overlaps) = collect_overlaps(&templates);

    let mut edges = Vec::new();
    for o in &rw_overlaps {
        // rw: the reader commits having read the version the writer
        // replaced — possible unless commits validate read sets
        if isolation.admits_concurrent(ConflictKind::ReadWrite) {
            edges.push(Edge {
                kind: ConflictKind::ReadWrite,
                from: o.reader_txn,
                to: o.writer_txn,
                overlap: o.id,
                item: o.item.clone(),
            });
        }
        // wr: the reader observes the writer's commit mid-transaction —
        // only without a transaction-duration snapshot (under snapshots
        // the same overlap surfaces as the rw edge above instead)
        if isolation.admits_concurrent(ConflictKind::WriteRead) {
            edges.push(Edge {
                kind: ConflictKind::WriteRead,
                from: o.writer_txn,
                to: o.reader_txn,
                overlap: o.id,
                item: o.item.clone(),
            });
        }
    }

    DepGraph {
        templates,
        isolation,
        rw_overlaps,
        ww_overlaps,
        edges,
    }
}

/// Build the dependency graph for `templates` where template `i` runs at
/// `levels[i]` — the heterogeneous-isolation variant feral-plan's
/// fixed-point inference evaluates.
///
/// Edge admission differs from [`build_graph`] in one structural way:
/// every `rw` antidependency is *kept* regardless of the reader's level,
/// because commit-time read-set validation does not make the edge
/// impossible — it only constrains its direction in commit order (a
/// validating reader must commit before the writer that overwrote its
/// read, or it aborts). Whether a cycle through such ordered edges is
/// realizable is decided by [`crate::find_cycle_constrained`], which
/// requires at least one *unordered* edge; under a uniform level this
/// yields verdicts identical to [`build_graph`] + [`crate::find_cycle`].
/// `wr` dependencies still require the reader to lack a
/// transaction-duration snapshot, exactly as in the uniform builder.
///
/// `levels.len()` must equal `templates.len()`.
pub fn build_graph_mixed(templates: Vec<TxnTemplate>, levels: &[IsolationLevel]) -> DepGraph {
    assert_eq!(
        templates.len(),
        levels.len(),
        "one isolation level per template"
    );
    let (rw_overlaps, ww_overlaps) = collect_overlaps(&templates);

    let mut edges = Vec::new();
    for o in &rw_overlaps {
        // rw: always a candidate edge; a validating reader merely turns
        // it into an ordered edge (reader-commits-first)
        edges.push(Edge {
            kind: ConflictKind::ReadWrite,
            from: o.reader_txn,
            to: o.writer_txn,
            overlap: o.id,
            item: o.item.clone(),
        });
        // wr: the reader observes the writer's commit mid-transaction —
        // only possible for a reader without a transaction snapshot
        if levels[o.reader_txn].admits_concurrent(ConflictKind::WriteRead) {
            edges.push(Edge {
                kind: ConflictKind::WriteRead,
                from: o.writer_txn,
                to: o.reader_txn,
                overlap: o.id,
                item: o.item.clone(),
            });
        }
    }

    // the display level: the strongest level any template runs at
    let isolation = levels
        .iter()
        .copied()
        .max_by_key(|l| *l as u64)
        .unwrap_or(IsolationLevel::ReadCommitted);

    DepGraph {
        templates,
        isolation,
        rw_overlaps,
        ww_overlaps,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{lock_version_rmw, uniqueness_probe_insert};

    #[test]
    fn uniqueness_pair_has_crossed_overlaps_and_no_ww() {
        let g = build_graph(
            vec![uniqueness_probe_insert(1), uniqueness_probe_insert(2)],
            IsolationLevel::ReadCommitted,
        );
        // each probe overlaps the *other* txn's insert
        assert_eq!(g.rw_overlaps.len(), 2);
        assert!(g.ww_overlaps.is_empty());
        // read committed admits both interpretations of each overlap
        assert_eq!(g.edges.len(), 4);
    }

    #[test]
    fn snapshot_drops_wr_edges_serializable_drops_rw_too() {
        let pair = || vec![uniqueness_probe_insert(1), uniqueness_probe_insert(2)];
        let si = build_graph(pair(), IsolationLevel::Snapshot);
        assert!(si.edges.iter().all(|e| e.kind == ConflictKind::ReadWrite));
        assert_eq!(si.edges.len(), 2);
        let ser = build_graph(pair(), IsolationLevel::Serializable);
        assert!(ser.edges.is_empty());
        assert_eq!(ser.rw_overlaps.len(), 2, "overlaps remain visible");
    }

    #[test]
    fn mixed_builder_keeps_rw_edges_and_gates_wr_per_reader() {
        use IsolationLevel::{ReadCommitted, Serializable};
        let g = build_graph_mixed(
            vec![uniqueness_probe_insert(1), uniqueness_probe_insert(2)],
            &[Serializable, ReadCommitted],
        );
        // both rw interpretations survive (the serializable reader's is
        // merely ordered); only the read-committed reader admits its wr
        let rw = g
            .edges
            .iter()
            .filter(|e| e.kind == ConflictKind::ReadWrite)
            .count();
        let wr: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.kind == ConflictKind::WriteRead)
            .collect();
        assert_eq!(rw, 2);
        assert_eq!(wr.len(), 1);
        assert_eq!(wr[0].to, 1, "the wr edge targets the RC reader");
        assert_eq!(g.isolation, Serializable, "display level is the max");
    }

    #[test]
    fn mixed_builder_agrees_with_uniform_on_overlaps() {
        let iso = IsolationLevel::Snapshot;
        let uniform = build_graph(
            vec![uniqueness_probe_insert(1), uniqueness_probe_insert(2)],
            iso,
        );
        let mixed = build_graph_mixed(
            vec![uniqueness_probe_insert(1), uniqueness_probe_insert(2)],
            &[iso, iso],
        );
        assert_eq!(uniform.rw_overlaps.len(), mixed.rw_overlaps.len());
        assert_eq!(uniform.ww_overlaps.len(), mixed.ww_overlaps.len());
    }

    #[test]
    fn lock_rmw_pair_surfaces_the_ww_overlap_once() {
        let g = build_graph(
            vec![lock_version_rmw(1), lock_version_rmw(2)],
            IsolationLevel::ReadCommitted,
        );
        assert_eq!(g.ww_overlaps.len(), 1);
        assert_eq!(g.rw_overlaps.len(), 2);
    }
}
