//! Transaction templates: the static IR the dependency-graph analysis
//! runs over.
//!
//! A template names the reads and writes one feral code path performs,
//! at the granularity the engine's conflict detection sees them: row
//! accesses by identity, and predicate reads by the selection they
//! evaluate. The four canonical templates mirror the ORM's feral
//! mechanisms exactly as `feral_sim::scenarios` drives them, so every
//! static verdict has a runnable counterpart.

use std::fmt;

/// One access a template performs, as the conflict analysis sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// Read one row by identity.
    ReadRow {
        /// Table holding the row.
        table: String,
        /// Logical row identity (`"dept"`), shared across templates
        /// that touch the same row.
        row: String,
    },
    /// Predicate read: scan `table` for rows matching `sel`.
    ReadPred {
        /// Table scanned.
        table: String,
        /// Selection label (`"key='dup'"`); a write conflicts with the
        /// scan when its row lists the label in `matches`.
        sel: String,
    },
    /// Write — insert, update, or delete — of one row.
    WriteRow {
        /// Table holding the row.
        table: String,
        /// Logical row identity.
        row: String,
        /// Selection labels the written row satisfies (an insert of a
        /// `key='dup'` row matches the uniqueness probe's predicate).
        matches: Vec<String>,
    },
}

impl Access {
    /// Whether this write conflicts with that read (same row identity,
    /// or a written row matching the read predicate).
    pub fn write_conflicts_read(&self, read: &Access) -> bool {
        let Access::WriteRow {
            table,
            row,
            matches,
        } = self
        else {
            return false;
        };
        match read {
            Access::ReadRow { table: rt, row: rr } => rt == table && rr == row,
            Access::ReadPred { table: rt, sel } => rt == table && matches.contains(sel),
            Access::WriteRow { .. } => false,
        }
    }

    /// Whether two writes conflict (same row identity).
    pub fn write_conflicts_write(&self, other: &Access) -> bool {
        match (self, other) {
            (
                Access::WriteRow {
                    table: t1, row: r1, ..
                },
                Access::WriteRow {
                    table: t2, row: r2, ..
                },
            ) => t1 == t2 && r1 == r2,
            _ => false,
        }
    }

    /// The conflict item this access names, for rendering.
    pub fn item(&self) -> String {
        match self {
            Access::ReadRow { table, row } | Access::WriteRow { table, row, .. } => {
                format!("{table}[{row}]")
            }
            Access::ReadPred { table, sel } => format!("{table}{{{sel}}}"),
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::ReadRow { .. } => write!(f, "r {}", self.item()),
            Access::ReadPred { .. } => write!(f, "r {}", self.item()),
            Access::WriteRow { .. } => write!(f, "w {}", self.item()),
        }
    }
}

/// One step of a template: a labelled access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// What the ORM is doing at this step (`"uniqueness probe"`).
    pub label: String,
    /// The access the engine performs for it.
    pub access: Access,
}

impl Step {
    fn new(label: &str, access: Access) -> Step {
        Step {
            label: label.to_string(),
            access,
        }
    }
}

/// A transaction template: the ordered accesses of one feral code path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnTemplate {
    /// Template name (`"uniqueness-probe-insert#1"`).
    pub name: String,
    /// Steps in program order.
    pub steps: Vec<Step>,
}

fn read_row(table: &str, row: &str) -> Access {
    Access::ReadRow {
        table: table.to_string(),
        row: row.to_string(),
    }
}

fn read_pred(table: &str, sel: &str) -> Access {
    Access::ReadPred {
        table: table.to_string(),
        sel: sel.to_string(),
    }
}

fn write_row(table: &str, row: &str, matches: &[&str]) -> Access {
    Access::WriteRow {
        table: table.to_string(),
        row: row.to_string(),
        matches: matches.iter().map(|s| s.to_string()).collect(),
    }
}

/// §5.2 uniqueness probe-then-insert (`validates_uniqueness_of`):
/// `SELECT ... WHERE key='dup' LIMIT 1`, then insert a fresh row with
/// that key. `i` distinguishes concurrent instances (each inserts its
/// own row — no ww conflict, only the predicate/insert antidependency).
pub fn uniqueness_probe_insert(i: usize) -> TxnTemplate {
    TxnTemplate {
        name: format!("uniqueness-probe-insert#{i}"),
        steps: vec![
            Step::new("uniqueness probe", read_pred("key_values", "key='dup'")),
            Step::new(
                "insert validated row",
                write_row("key_values", &format!("new{i}"), &["key='dup'"]),
            ),
        ],
    }
}

/// §5.3 association check-then-insert (`validates_presence_of` on
/// `belongs_to :department`): read the parent row to prove it exists,
/// then insert the child referencing it.
pub fn assoc_check_insert(i: usize) -> TxnTemplate {
    TxnTemplate {
        name: format!("assoc-check-insert#{i}"),
        steps: vec![
            Step::new("presence-check parent", read_row("departments", "dept")),
            Step::new(
                "insert child",
                write_row("users", &format!("user{i}"), &["department_id=dept"]),
            ),
        ],
    }
}

/// §5.3/§5.4 feral cascading destroy (`has_many :users, dependent:
/// :destroy`): find the parent, scan its children (none pre-exist in
/// the canonical scenario, so no child deletes appear), delete the
/// parent.
pub fn cascade_destroy() -> TxnTemplate {
    TxnTemplate {
        name: "cascade-destroy".to_string(),
        steps: vec![
            Step::new("find parent", read_row("departments", "dept")),
            Step::new("scan dependents", read_pred("users", "department_id=dept")),
            Step::new("delete parent", write_row("departments", "dept", &[])),
        ],
    }
}

/// §4.4 unguarded `lock_version` read-modify-write: read the record
/// (version included), write back the bumped value. This is the code
/// path an *inert* optimistic lock degenerates to — the conditional
/// `WHERE lock_version = n` never runs, so nothing ties the write to
/// the read.
pub fn lock_version_rmw(i: usize) -> TxnTemplate {
    TxnTemplate {
        name: format!("lock-version-rmw#{i}"),
        steps: vec![
            Step::new("read record + version", read_row("accounts", "acct")),
            Step::new("write bumped record", write_row("accounts", "acct", &[])),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_reads_conflict_with_matching_writes_only() {
        let probe = read_pred("key_values", "key='dup'");
        let matching = write_row("key_values", "new1", &["key='dup'"]);
        let other_key = write_row("key_values", "new2", &["key='x'"]);
        let other_table = write_row("users", "new1", &["key='dup'"]);
        assert!(matching.write_conflicts_read(&probe));
        assert!(!other_key.write_conflicts_read(&probe));
        assert!(!other_table.write_conflicts_read(&probe));
    }

    #[test]
    fn row_identity_drives_row_conflicts() {
        let read = read_row("departments", "dept");
        let delete = write_row("departments", "dept", &[]);
        let unrelated = write_row("departments", "other", &[]);
        assert!(delete.write_conflicts_read(&read));
        assert!(!unrelated.write_conflicts_read(&read));
        assert!(delete.write_conflicts_write(&delete.clone()));
        assert!(!delete.write_conflicts_write(&unrelated));
    }

    #[test]
    fn canonical_templates_have_distinct_fresh_rows() {
        let t1 = uniqueness_probe_insert(1);
        let t2 = uniqueness_probe_insert(2);
        let (w1, w2) = (&t1.steps[1].access, &t2.steps[1].access);
        assert!(
            !w1.write_conflicts_write(w2),
            "fresh inserts must not ww-conflict"
        );
        // but each insert matches the *other* transaction's probe
        assert!(w1.write_conflicts_read(&t2.steps[0].access));
        assert!(w2.write_conflicts_read(&t1.steps[0].access));
    }
}
