//! # feral-sdg
//!
//! Static dependency-graph anomaly prediction for feral concurrency
//! control (paper §4–§5), cross-validated three ways.
//!
//! The ORM's feral mechanisms — uniqueness probe-then-insert,
//! association check-then-insert, cascading destroy, unguarded
//! `lock_version` read-modify-write — are distilled into **transaction
//! templates** ([`template`]): the ordered row and predicate accesses
//! the engine actually sees. For a pair of concurrently running
//! templates, [`graph`] enumerates every conflicting access overlap and
//! admits Adya-style dependency edges (`wr`, `rw`) per
//! `feral_db::IsolationLevel::admits_concurrent`; write/write overlaps
//! act as first-updater-wins abort gates rather than cycle edges.
//! [`cycles`] searches for a *realizable* critical cycle — simple,
//! never interpreting one overlap twice, containing at least one `rw`
//! antidependency — and [`matrix`] turns pair × isolation into a
//! SAFE/UNSAFE verdict matrix.
//!
//! Every verdict is falsifiable, and the crate checks all of them:
//!
//! * **UNSAFE** cells generate a `feral-sim` witness schedule that
//!   replays to the concrete anomaly ([`matrix::validate_cell`]);
//! * **SAFE** cells survive an exhaustive schedule sweep of the same
//!   scenario;
//! * each matrix row is diffed against the invariant-confluence
//!   derivation of its Table 1 analog
//!   ([`matrix::iconfluence_agreement`]).
//!
//! The `feral-sdg` binary surfaces the matrix as text, JSON
//! (`BENCH_sdg.json`), and Graphviz dot; `feral-lint` reuses the
//! verdicts for its FERAL006–FERAL008 isolation-advice rules.

#![warn(missing_docs)]

pub mod cycles;
pub mod graph;
pub mod matrix;
pub mod report;
pub mod template;

pub use cycles::{edge_ordered, find_cycle, find_cycle_constrained, render_cycle};
pub use graph::{build_graph, build_graph_mixed, DepGraph, Edge, RwOverlap, WwOverlap};
pub use matrix::{
    build_matrix, decide, decide_mixed, iconfluence_agreement, validate_cell, Cell, CellEvidence,
    PairKind, SafeReason, SimWitness, SweepEvidence, Verdict, LEVELS,
};
pub use report::{render_dot, render_graph_text, render_json, render_matrix_text};
pub use template::{Access, Step, TxnTemplate};
