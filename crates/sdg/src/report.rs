//! Renderers: text matrix, per-cell graph dumps, Graphviz dot, and the
//! `BENCH_sdg.json` machine-readable artifact (hand-rolled JSON — the
//! vendored serde shim has no serializer).

use crate::cycles::render_cycle;
use crate::graph::DepGraph;
use crate::matrix::{Cell, CellEvidence, PairKind, Verdict, LEVELS};
use feral_sim::scenarios::{Guard, ScenarioSpec};
use std::fmt::Write as _;

/// Shared JSON string escaper (re-exported so existing callers keep
/// their `feral_sdg::report::json_escape` path).
pub use feral_cli::report::json_escape;

/// The `feral-sim systematic` invocation that probes a cell's scenario.
pub fn probe_command(spec: &ScenarioSpec) -> String {
    format!(
        "feral-sim systematic --scenario {} --isolation {} --guard {} --workers {}",
        spec.kind.name(),
        spec.isolation_flag(),
        match spec.guard {
            Guard::Feral => "feral",
            Guard::Database => "database",
        },
        spec.workers
    )
}

fn short_verdict(cell: &Cell) -> String {
    match &cell.verdict {
        Verdict::Unsafe { .. } => "UNSAFE".to_string(),
        Verdict::Safe { reason } => format!("safe:{}", reason.name()),
    }
}

/// Render the matrix as an aligned text table.
pub fn render_matrix_text(cells: &[Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:<28} {:<28} {:<28} {:<28}",
        "pair", "read committed", "repeatable read", "snapshot", "serializable"
    );
    for pair in PairKind::all() {
        let mut line = format!("{:<16}", pair.name());
        for level in LEVELS {
            let cell = cells
                .iter()
                .find(|c| c.pair == pair && c.isolation == level)
                .expect("full matrix");
            let _ = write!(line, " {:<28}", short_verdict(cell));
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Render one cell's graph, verdict, and scenario as text.
pub fn render_graph_text(cell: &Cell) -> String {
    let g = &cell.graph;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pair {} at {} — {}",
        cell.pair.name(),
        cell.isolation,
        short_verdict(cell)
    );
    for t in &g.templates {
        let _ = writeln!(out, "  txn {}", t.name);
        for s in &t.steps {
            let _ = writeln!(out, "    {:<24} {}", s.label, s.access);
        }
    }
    let _ = writeln!(
        out,
        "  overlaps: {} rw, {} ww",
        g.rw_overlaps.len(),
        g.ww_overlaps.len()
    );
    for o in &g.ww_overlaps {
        let _ = writeln!(
            out,
            "    ww {} <-> {} on {}",
            g.templates[o.a_txn].name, g.templates[o.b_txn].name, o.item
        );
    }
    let _ = writeln!(out, "  admitted edges: {}", g.edges.len());
    for e in &g.edges {
        let _ = writeln!(
            out,
            "    {} -{}[{}]-> {}  (overlap {})",
            g.templates[e.from].name,
            e.kind.label(),
            e.item,
            g.templates[e.to].name,
            e.overlap
        );
    }
    match &cell.verdict {
        Verdict::Unsafe { cycle } => {
            let _ = writeln!(out, "  critical cycle: {}", render_cycle(g, cycle));
        }
        Verdict::Safe { reason } => {
            let _ = writeln!(out, "  safe: {}", reason.name());
        }
    }
    let _ = writeln!(out, "  probe: {}", probe_command(&cell.scenario));
    out
}

/// Render one cell's graph as Graphviz dot (cycle edges bold).
pub fn render_dot(cell: &Cell) -> String {
    let g = &cell.graph;
    let cycle_edges: Vec<(usize, usize, usize)> = match &cell.verdict {
        Verdict::Unsafe { cycle } => cycle.iter().map(|e| (e.from, e.to, e.overlap)).collect(),
        Verdict::Safe { .. } => Vec::new(),
    };
    let mut out = String::new();
    let _ = writeln!(out, "digraph sdg {{");
    let _ = writeln!(
        out,
        "  label=\"{} at {} — {}\";",
        cell.pair.name(),
        cell.isolation,
        short_verdict(cell)
    );
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, t) in g.templates.iter().enumerate() {
        let _ = writeln!(out, "  t{} [label=\"{}\", shape=box];", i, t.name);
    }
    for e in &g.edges {
        let in_cycle = cycle_edges.contains(&(e.from, e.to, e.overlap));
        let _ = writeln!(
            out,
            "  t{} -> t{} [label=\"{} {}\"{}];",
            e.from,
            e.to,
            e.kind.label(),
            e.item,
            if in_cycle {
                ", penwidth=2.5, color=red"
            } else {
                ""
            }
        );
    }
    for o in &g.ww_overlaps {
        let _ = writeln!(
            out,
            "  t{} -> t{} [label=\"ww {}\", dir=both, style=dashed];",
            o.a_txn, o.b_txn, o.item
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn json_mix(mix: feral_iconfluence::OperationMix) -> &'static str {
    match mix {
        feral_iconfluence::OperationMix::InsertionsOnly => "insertions-only",
        feral_iconfluence::OperationMix::WithDeletions => "with-deletions",
    }
}

fn json_safety(s: feral_iconfluence::Safety) -> &'static str {
    match s {
        feral_iconfluence::Safety::IConfluent => "iconfluent",
        feral_iconfluence::Safety::NotIConfluent => "not-iconfluent",
    }
}

fn json_templates(g: &DepGraph) -> String {
    let mut parts = Vec::new();
    for t in &g.templates {
        let steps: Vec<String> = t
            .steps
            .iter()
            .map(|s| {
                format!(
                    "{{\"label\":\"{}\",\"access\":\"{}\"}}",
                    json_escape(&s.label),
                    json_escape(&s.access.to_string())
                )
            })
            .collect();
        parts.push(format!(
            "{{\"name\":\"{}\",\"steps\":[{}]}}",
            json_escape(&t.name),
            steps.join(",")
        ));
    }
    format!("[{}]", parts.join(","))
}

fn json_cell(cell: &Cell, evidence: Option<&CellEvidence>) -> String {
    let g = &cell.graph;
    let (verdict, reason, cycle) = match &cell.verdict {
        Verdict::Unsafe { cycle } => {
            let edges: Vec<String> = cycle
                .iter()
                .map(|e| {
                    format!(
                        "{{\"kind\":\"{}\",\"from\":\"{}\",\"to\":\"{}\",\"item\":\"{}\"}}",
                        e.kind.label(),
                        json_escape(&g.templates[e.from].name),
                        json_escape(&g.templates[e.to].name),
                        json_escape(&e.item)
                    )
                })
                .collect();
            (
                "unsafe",
                "null".to_string(),
                format!("[{}]", edges.join(",")),
            )
        }
        Verdict::Safe { reason } => ("safe", format!("\"{}\"", reason.name()), "[]".to_string()),
    };
    let mut out = format!(
        "{{\"pair\":\"{}\",\"isolation\":\"{}\",\"verdict\":\"{}\",\"reason\":{},\"cycle\":{},\
         \"rw_overlaps\":{},\"ww_overlaps\":{},\"edges\":{},\"scenario\":\"{}\"",
        cell.pair.name(),
        cell.isolation,
        verdict,
        reason,
        cycle,
        g.rw_overlaps.len(),
        g.ww_overlaps.len(),
        g.edges.len(),
        json_escape(&probe_command(&cell.scenario))
    );
    if let Some(evidence) = evidence {
        out.push_str(",\"validation\":");
        match evidence {
            CellEvidence::Witness(w) => {
                let seed = match w.seed {
                    Some(s) => s.to_string(),
                    None => "null".to_string(),
                };
                let choices: Vec<String> = w.choices.iter().map(|c| c.to_string()).collect();
                let _ = write!(
                    out,
                    "{{\"witness\":{{\"strategy\":\"{}\",\"seed\":{},\"choices\":[{}],\
                     \"message\":\"{}\",\"schedules_searched\":{},\"replay\":\"{}\"}}}}",
                    w.strategy,
                    seed,
                    choices.join(","),
                    json_escape(&w.message),
                    w.schedules_searched,
                    json_escape(&w.replay)
                );
            }
            CellEvidence::Sweep(s) => {
                let _ = write!(
                    out,
                    "{{\"sweep\":{{\"runs\":{},\"complete\":true,\"schedules_pruned\":{},\
                     \"pruned_exact\":{},\"sleep_set_blocked\":{}}}}}",
                    s.runs, s.schedules_pruned, s.pruned_exact, s.sleep_set_blocked
                );
            }
        }
    }
    out.push('}');
    out
}

/// Render the full matrix as the `BENCH_sdg.json` artifact. Without
/// `evidence` the output is fully deterministic (the checked-in golden);
/// with it, each cell gains a `validation` object.
pub fn render_json(cells: &[Cell], evidence: Option<&[CellEvidence]>) -> String {
    let mut out = String::from("{\"tool\":\"feral-sdg\",\"version\":1,");
    let levels: Vec<String> = LEVELS.iter().map(|l| format!("\"{l}\"")).collect();
    let _ = write!(out, "\"isolations\":[{}],", levels.join(","));
    let mut pairs = Vec::new();
    for pair in PairKind::all() {
        let cell = cells.iter().find(|c| c.pair == pair).expect("full matrix");
        pairs.push(format!(
            "{{\"pair\":\"{}\",\"iconfluence\":{{\"validator\":\"{}\",\"mix\":\"{}\",\
             \"safety\":\"{}\"}},\"templates\":{}}}",
            pair.name(),
            cell.iconfluence.kind,
            json_mix(cell.iconfluence.mix),
            json_safety(cell.iconfluence.safety),
            json_templates(&cell.graph)
        ));
    }
    let _ = write!(out, "\"pairs\":[{}],", pairs.join(","));
    let cell_json: Vec<String> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| json_cell(c, evidence.map(|e| &e[i])))
        .collect();
    let _ = write!(out, "\"cells\":[{}]}}", cell_json.join(","));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::build_matrix;

    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_artifact_is_deterministic_and_covers_every_cell() {
        let matrix = build_matrix();
        let a = render_json(&matrix, None);
        let b = render_json(&build_matrix(), None);
        assert_eq!(a, b);
        assert_eq!(a.matches("\"pair\":").count(), 4 + 16);
        // uniqueness 3 + orphans 3 + lock-rmw 2 unsafe cells
        assert_eq!(a.matches("\"verdict\":\"unsafe\"").count(), 8);
        assert!(!a.contains("\"validation\":"));
    }

    #[test]
    fn dot_marks_cycle_edges() {
        let matrix = build_matrix();
        let unsafe_cell = matrix
            .iter()
            .find(|c| c.verdict.is_unsafe())
            .expect("matrix has unsafe cells");
        let dot = render_dot(unsafe_cell);
        assert!(dot.contains("color=red"));
        assert!(dot.starts_with("digraph sdg {"));
    }
}
