//! `feral-sdg` — static dependency-graph anomaly prediction from the
//! command line.
//!
//! ```text
//! feral-sdg matrix [--json] [--out PATH] [--validate]
//!         [--seeds N] [--max-runs N]
//!     Print the pair × isolation verdict matrix. With --json, emit the
//!     BENCH_sdg.json artifact (to stdout or --out). With --validate,
//!     cross-check every cell: UNSAFE cells must produce a replaying
//!     feral-sim witness (directed DPOR biased toward the predicted
//!     cycle's tables, random search as fallback), SAFE cells must
//!     survive a complete partial-order-reduced sweep, and every row
//!     must agree with its invariant-confluence derivation — any
//!     disagreement exits non-zero.
//!
//! feral-sdg graph --pair P [--isolation LEVEL] [--dot]
//!     Dump one cell's dependency graph (text or Graphviz dot).
//!
//! feral-sdg templates
//!     List the transaction templates of every pair.
//! ```
//!
//! Pairs: `uniqueness`, `orphans`, `lock-rmw`, `sibling-inserts`.
//! Isolation levels: `read-committed`, `repeatable-read`, `snapshot`,
//! `serializable`.

use feral_cli::Args;
use feral_db::IsolationLevel;
use feral_sdg::matrix::{build_matrix, decide, iconfluence_agreement, validate_cell, PairKind};
use feral_sdg::report::{render_dot, render_graph_text, render_json, render_matrix_text};
use std::process::ExitCode;

const TOOL: &str = "feral-sdg";

fn die(msg: &str) -> ! {
    feral_cli::die(TOOL, msg)
}

fn help() -> String {
    feral_cli::render_help(
        TOOL,
        "static dependency-graph anomaly prediction",
        "  feral-sdg matrix [--seeds N] [--max-runs N]\n\
         \x20 feral-sdg graph --pair P [--isolation LEVEL] [--dot]\n\
         \x20 feral-sdg templates\n",
        "  --pair P          uniqueness|orphans|lock-rmw|sibling-inserts\n\
         \x20 --isolation L     read-committed|repeatable-read|snapshot|serializable\n\
         \x20 --seeds N         random witness seeds before systematic fallback\n\
         \x20 --max-runs N      schedule budget per validated cell\n\
         \x20 --dot             Graphviz output for `graph`\n",
    )
}

fn cmd_matrix(args: &Args) -> ExitCode {
    let matrix = build_matrix();

    let evidence = if args.has("validate") {
        let seeds = args.get_u64("seeds", 500);
        let max_runs = args.get_usize("max-runs", 200_000);
        let mut collected = Vec::with_capacity(matrix.len());
        let mut failures = 0;
        for cell in &matrix {
            match validate_cell(cell, seeds, max_runs) {
                Ok(evidence) => collected.push(evidence),
                Err(msg) => {
                    eprintln!("feral-sdg: validation FAILED: {msg}");
                    failures += 1;
                }
            }
        }
        for pair in PairKind::all() {
            let row: Vec<_> = matrix.iter().filter(|c| c.pair == pair).cloned().collect();
            if let Err(msg) = iconfluence_agreement(&row) {
                eprintln!("feral-sdg: iconfluence disagreement: {msg}");
                failures += 1;
            }
        }
        if failures > 0 {
            eprintln!("feral-sdg: {failures} validation failure(s)");
            return ExitCode::from(1);
        }
        Some(collected)
    } else {
        None
    };

    let rendered = if args.has("json") {
        render_json(&matrix, evidence.as_deref())
    } else {
        let mut text = render_matrix_text(&matrix);
        if evidence.is_some() {
            text.push_str(
                "validated: every UNSAFE cell replayed a witness, every SAFE cell swept \
                 exhaustively, every row agrees with iconfluence\n",
            );
        }
        text
    };
    feral_cli::write_out(TOOL, args.get_str("out"), &rendered);
    ExitCode::SUCCESS
}

fn cmd_graph(args: &Args) -> ExitCode {
    let pair = match args.get_str("pair") {
        Some(name) => PairKind::parse(name).unwrap_or_else(|| {
            die(&format!(
                "unknown pair `{name}` (uniqueness|orphans|lock-rmw|sibling-inserts)"
            ))
        }),
        None => die("--pair is required"),
    };
    let isolation = args
        .get_str("isolation")
        .map(|s| feral_cli::parse_isolation(TOOL, s))
        .unwrap_or(IsolationLevel::ReadCommitted);
    let cell = decide(pair, isolation);
    if args.has("dot") {
        print!("{}", render_dot(&cell));
    } else {
        print!("{}", render_graph_text(&cell));
    }
    ExitCode::SUCCESS
}

fn cmd_templates() -> ExitCode {
    for pair in PairKind::all() {
        println!("pair {}", pair.name());
        for t in pair.templates() {
            println!("  txn {}", t.name);
            for s in &t.steps {
                println!("    {:<24} {}", s.label, s.access);
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help") {
        print!("{}", help());
        return ExitCode::SUCCESS;
    }
    let Some(command) = argv.first() else {
        die("usage: feral-sdg <matrix|graph|templates> [flags] (--help for details)")
    };
    let args = Args::from_iter(argv[1..].iter().cloned());
    match command.as_str() {
        "matrix" => cmd_matrix(&args),
        "graph" => cmd_graph(&args),
        "templates" => cmd_templates(),
        other => die(&format!("unknown command `{other}`")),
    }
}
