//! The verdict matrix: template pairs × isolation levels, with the
//! safety gates applied in engine order, plus dynamic (feral-sim) and
//! analytic (invariant-confluence) cross-validation.

use crate::cycles::{find_cycle, find_cycle_constrained};
use crate::graph::{build_graph, build_graph_mixed, DepGraph, Edge};
use crate::template::{
    assoc_check_insert, cascade_destroy, lock_version_rmw, uniqueness_probe_insert, TxnTemplate,
};
use feral_db::{ConflictKind, IsolationLevel};
use feral_iconfluence::{derive_safety, OperationMix, Safety};
use feral_sim::scenarios::{Guard, ScenarioKind, ScenarioSpec};
use feral_sim::{
    explore_dpor, explore_random, run_with_choices, run_with_seed, DirectionHint, DporConfig,
};

/// The four canonical template pairs the matrix covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// Two uniqueness probe-then-insert transactions on the same key.
    Uniqueness,
    /// An association check-then-insert racing a cascading destroy.
    Orphans,
    /// Two unguarded `lock_version` read-modify-writes on one record.
    LockRmw,
    /// Two association check-then-inserts under the same parent — the
    /// insert-only control with no realizable cycle anywhere.
    SiblingInserts,
}

/// The isolation columns, weakest to strongest.
pub const LEVELS: [IsolationLevel; 4] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::RepeatableRead,
    IsolationLevel::Snapshot,
    IsolationLevel::Serializable,
];

impl PairKind {
    /// All pairs, matrix row order.
    pub fn all() -> [PairKind; 4] {
        [
            PairKind::Uniqueness,
            PairKind::Orphans,
            PairKind::LockRmw,
            PairKind::SiblingInserts,
        ]
    }

    /// Stable CLI/report spelling.
    pub fn name(self) -> &'static str {
        match self {
            PairKind::Uniqueness => "uniqueness",
            PairKind::Orphans => "orphans",
            PairKind::LockRmw => "lock-rmw",
            PairKind::SiblingInserts => "sibling-inserts",
        }
    }

    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Option<PairKind> {
        PairKind::all().into_iter().find(|p| p.name() == s)
    }

    /// The concurrent transaction templates of this pair.
    pub fn templates(self) -> Vec<TxnTemplate> {
        match self {
            PairKind::Uniqueness => vec![uniqueness_probe_insert(1), uniqueness_probe_insert(2)],
            PairKind::Orphans => vec![assoc_check_insert(1), cascade_destroy()],
            PairKind::LockRmw => vec![lock_version_rmw(1), lock_version_rmw(2)],
            PairKind::SiblingInserts => vec![assoc_check_insert(1), assoc_check_insert(2)],
        }
    }

    /// The runnable feral-sim scenario this pair predicts for — same
    /// templates, driven through the real ORM and engine.
    pub fn scenario(self, isolation: IsolationLevel) -> ScenarioSpec {
        let (kind, workers) = match self {
            PairKind::Uniqueness => (ScenarioKind::Uniqueness, 2),
            PairKind::Orphans => (ScenarioKind::Orphans, 1),
            PairKind::LockRmw => (ScenarioKind::LostUpdate, 2),
            PairKind::SiblingInserts => (ScenarioKind::SiblingInserts, 2),
        };
        ScenarioSpec {
            kind,
            isolation,
            guard: Guard::Feral,
            workers,
        }
    }

    /// The invariant-confluence analog of this pair: the validator kind
    /// and operation mix whose Table 1 derivation the matrix row must
    /// agree with.
    pub fn iconfluence(self) -> (&'static str, OperationMix) {
        match self {
            PairKind::Uniqueness => ("validates_uniqueness_of", OperationMix::InsertionsOnly),
            PairKind::Orphans => ("validates_presence_of", OperationMix::WithDeletions),
            PairKind::LockRmw => ("optimistic_lock_version", OperationMix::InsertionsOnly),
            PairKind::SiblingInserts => ("validates_presence_of", OperationMix::InsertionsOnly),
        }
    }
}

/// Why a cell is safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeReason {
    /// The templates share no conflicting accesses at all.
    NoConflicts,
    /// Conflicts exist but admit no realizable cycle.
    Acyclic,
    /// A write/write overlap plus first-updater-wins aborts one side
    /// before any cycle can close.
    FirstUpdaterAborts,
    /// Commit-time read-set validation refuses the `rw` edges the cycle
    /// would need.
    ReadSetValidationAborts,
}

impl SafeReason {
    /// Stable report spelling.
    pub fn name(self) -> &'static str {
        match self {
            SafeReason::NoConflicts => "no-conflicts",
            SafeReason::Acyclic => "acyclic",
            SafeReason::FirstUpdaterAborts => "first-updater-aborts",
            SafeReason::ReadSetValidationAborts => "read-set-validation-aborts",
        }
    }
}

/// A cell's static verdict.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A realizable critical cycle exists; the anomaly is reachable.
    Unsafe {
        /// The preferred realizable cycle.
        cycle: Vec<Edge>,
    },
    /// No realizable cycle; the invariant holds on every schedule.
    Safe {
        /// Which gate closed the cycle off.
        reason: SafeReason,
    },
}

impl Verdict {
    /// Whether this verdict predicts a reachable anomaly.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe { .. })
    }

    /// The schedule-search bias this verdict induces: the tables on the
    /// predicted critical cycle, stripped of their item qualifiers
    /// (`key_values{key='dup'}` → `key_values`). Safe verdicts yield an
    /// empty (no-op) hint.
    pub fn direction_hint(&self) -> DirectionHint {
        let Verdict::Unsafe { cycle } = self else {
            return DirectionHint::default();
        };
        let mut tables: Vec<String> = cycle
            .iter()
            .map(|e| {
                e.item
                    .split(['[', '{'])
                    .next()
                    .unwrap_or(&e.item)
                    .to_string()
            })
            .collect();
        tables.sort();
        tables.dedup();
        DirectionHint::for_tables(tables)
    }
}

/// The invariant-confluence expectation attached to a matrix row.
#[derive(Debug, Clone, Copy)]
pub struct IconExpectation {
    /// Validator kind diffed against (`validates_uniqueness_of`).
    pub kind: &'static str,
    /// Operation mix of the derivation.
    pub mix: OperationMix,
    /// The checker-derived safety.
    pub safety: Safety,
}

/// One cell of the verdict matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Template pair (matrix row).
    pub pair: PairKind,
    /// Isolation level (matrix column).
    pub isolation: IsolationLevel,
    /// The dependency graph the verdict was decided on.
    pub graph: DepGraph,
    /// The static verdict.
    pub verdict: Verdict,
    /// The runnable scenario this cell predicts for.
    pub scenario: ScenarioSpec,
    /// The row's invariant-confluence expectation.
    pub iconfluence: IconExpectation,
}

/// Decide one cell: build the graph, then apply the engine's gates in
/// the order the engine applies them.
pub fn decide(pair: PairKind, isolation: IsolationLevel) -> Cell {
    let graph = build_graph(pair.templates(), isolation);
    let (kind, mix) = pair.iconfluence();
    let safety = derive_safety(kind, mix)
        .unwrap_or_else(|| panic!("{kind} must be checkable for the iconfluence diff"));

    let verdict = if !graph.ww_overlaps.is_empty()
        && !isolation.admits_concurrent(ConflictKind::WriteWrite)
    {
        // gate 1: first-updater-wins fires on the doubly-written row
        // before either transaction can commit the cycle
        Verdict::Safe {
            reason: SafeReason::FirstUpdaterAborts,
        }
    } else if let Some(cycle) = find_cycle(&graph) {
        // gate 2: a realizable critical cycle among admitted edges
        Verdict::Unsafe { cycle }
    } else if graph.rw_overlaps.is_empty() && graph.ww_overlaps.is_empty() {
        Verdict::Safe {
            reason: SafeReason::NoConflicts,
        }
    } else if isolation.validates_read_sets()
        && find_cycle(&build_graph(pair.templates(), IsolationLevel::Snapshot)).is_some()
    {
        // gate 3: the cycle exists in the counterfactual graph where rw
        // edges are admitted — read-set validation is what kills it
        Verdict::Safe {
            reason: SafeReason::ReadSetValidationAborts,
        }
    } else {
        Verdict::Safe {
            reason: SafeReason::Acyclic,
        }
    };

    Cell {
        pair,
        isolation,
        graph,
        verdict,
        scenario: pair.scenario(isolation),
        iconfluence: IconExpectation { kind, mix, safety },
    }
}

/// Decide one pair where template `i` of [`PairKind::templates`] runs at
/// `levels[i]` — the heterogeneous-isolation judgment feral-plan's
/// fixed-point inference escalates against.
///
/// The gates mirror [`decide`], generalised per template:
///
/// 1. a write/write overlap aborts one side before commit only when
///    *both* writers run under first-updater-wins — otherwise the
///    adversary schedules the non-validating writer second and both
///    commit;
/// 2. the cycle search runs over the mixed graph with commit-order
///    constraints ([`find_cycle_constrained`]): a validating reader's
///    `rw` edge must point forward in commit order, so cycles made
///    entirely of ordered edges are unrealizable;
/// 3. the read-set-validation attribution compares against the
///    counterfactual where every serializable template is demoted to
///    snapshot.
///
/// On a uniform assignment (`[l, l]`) the verdict agrees with
/// `decide(pair, l)` — pinned by a test below.
pub fn decide_mixed(pair: PairKind, levels: [IsolationLevel; 2]) -> (DepGraph, Verdict) {
    let graph = build_graph_mixed(pair.templates(), &levels);

    let fuw_gated = !graph.ww_overlaps.is_empty()
        && graph
            .ww_overlaps
            .iter()
            .all(|o| levels[o.a_txn].first_updater_wins() && levels[o.b_txn].first_updater_wins());
    let verdict = if fuw_gated {
        Verdict::Safe {
            reason: SafeReason::FirstUpdaterAborts,
        }
    } else if let Some(cycle) = find_cycle_constrained(&graph, &levels) {
        Verdict::Unsafe { cycle }
    } else if graph.rw_overlaps.is_empty() && graph.ww_overlaps.is_empty() {
        Verdict::Safe {
            reason: SafeReason::NoConflicts,
        }
    } else {
        // counterfactual: demote read-set validation to plain snapshot
        let demoted = levels.map(|l| match l {
            IsolationLevel::Serializable => IsolationLevel::Snapshot,
            other => other,
        });
        let counterfactual = build_graph_mixed(pair.templates(), &demoted);
        if levels.iter().any(|l| l.validates_read_sets())
            && find_cycle_constrained(&counterfactual, &demoted).is_some()
        {
            Verdict::Safe {
                reason: SafeReason::ReadSetValidationAborts,
            }
        } else {
            Verdict::Safe {
                reason: SafeReason::Acyclic,
            }
        }
    };
    (graph, verdict)
}

/// Build the full matrix: every pair at every level, row-major.
pub fn build_matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for pair in PairKind::all() {
        for level in LEVELS {
            cells.push(decide(pair, level));
        }
    }
    cells
}

/// Diff one pair's row against its invariant-confluence derivation.
///
/// I-confluence speaks to coordination-free execution: a
/// non-I-confluent invariant must be violable without coordination
/// (weakest level UNSAFE) yet enforceable with it (serializable SAFE);
/// an I-confluent invariant needs no coordination at any level.
pub fn iconfluence_agreement(row: &[Cell]) -> Result<(), String> {
    let pair = row[0].pair;
    let find = |level: IsolationLevel| {
        row.iter()
            .find(|c| c.isolation == level)
            .unwrap_or_else(|| panic!("{} row is missing {level}", pair.name()))
    };
    let rc = find(IsolationLevel::ReadCommitted);
    let ser = find(IsolationLevel::Serializable);
    match row[0].iconfluence.safety {
        Safety::NotIConfluent => {
            if !rc.verdict.is_unsafe() {
                return Err(format!(
                    "{}: not I-confluent but read committed is SAFE",
                    pair.name()
                ));
            }
            if ser.verdict.is_unsafe() {
                return Err(format!(
                    "{}: serializable is UNSAFE — coordination must suffice",
                    pair.name()
                ));
            }
        }
        Safety::IConfluent => {
            if let Some(cell) = row.iter().find(|c| c.verdict.is_unsafe()) {
                return Err(format!(
                    "{}: I-confluent but {} is UNSAFE",
                    pair.name(),
                    cell.isolation
                ));
            }
        }
    }
    Ok(())
}

/// A dynamic witness backing an UNSAFE verdict: one concrete feral-sim
/// schedule on which the anomaly oracle fired, plus proof it replays.
#[derive(Debug, Clone)]
pub struct SimWitness {
    /// Search strategy that surfaced the witness (`directed-dpor`, or
    /// `random` when the fallback found it).
    pub strategy: &'static str,
    /// Seed that found the schedule, when random search found it.
    pub seed: Option<u64>,
    /// Replayable branch choices.
    pub choices: Vec<usize>,
    /// What the oracle reported.
    pub message: String,
    /// Schedules searched before the witness surfaced.
    pub schedules_searched: usize,
    /// `feral-sim replay ...` command reproducing it.
    pub replay: String,
}

/// Exhaustive-sweep evidence backing a SAFE verdict.
#[derive(Debug, Clone)]
pub struct SweepEvidence {
    /// Schedules executed by the partial-order-reduced sweep.
    pub runs: usize,
    /// Schedules proven Mazurkiewicz-equivalent and skipped.
    pub schedules_pruned: u64,
    /// Whether `schedules_pruned` is exact (else a lower bound).
    pub pruned_exact: bool,
    /// Backtrack candidates skipped by sleep sets.
    pub sleep_set_blocked: usize,
}

/// Dynamic cross-validation of one cell.
#[derive(Debug, Clone)]
pub enum CellEvidence {
    /// UNSAFE: a replayed witness schedule.
    Witness(SimWitness),
    /// SAFE: a complete, silent exhaustive sweep.
    Sweep(SweepEvidence),
}

/// Cross-validate one cell against feral-sim.
///
/// UNSAFE cells must produce a witness schedule — directed DPOR biased
/// toward the predicted cycle's tables first, seeded random search as
/// fallback — and that witness must fire again on byte-identical
/// replay. SAFE cells must survive a *complete* partial-order-reduced
/// sweep with a silent oracle (the DPOR sweep covers every Mazurkiewicz
/// class, which `dpor_equivalence.rs` proves verdict-equivalent to full
/// enumeration).
pub fn validate_cell(cell: &Cell, seeds: u64, max_runs: usize) -> Result<CellEvidence, String> {
    let spec = cell.scenario;
    let label = format!("{}/{}", cell.pair.name(), cell.isolation);
    match &cell.verdict {
        Verdict::Unsafe { .. } => {
            let config =
                DporConfig::new(max_runs, spec.isolation).directed(cell.verdict.direction_hint());
            let strategy = config.strategy();
            let (violation, strategy, searched) = {
                let directed = explore_dpor(|| spec.build(), &config);
                match directed.violation {
                    Some(v) => (Some(v), strategy, directed.runs),
                    None => {
                        let random = explore_random(|| spec.build(), 0..seeds);
                        let runs = directed.runs + random.runs;
                        (random.violation, "random", runs)
                    }
                }
            };
            let Some(v) = violation else {
                return Err(format!(
                    "{label}: predicted UNSAFE but no witness in {searched} schedules"
                ));
            };
            // the witness must replay: same schedule, same anomaly
            let (_, verdict) = match v.seed {
                Some(seed) => run_with_seed(spec.build(), seed),
                None => run_with_choices(spec.build(), &v.choices),
            };
            if verdict.is_ok() {
                return Err(format!("{label}: witness did not replay ({})", v.message));
            }
            Ok(CellEvidence::Witness(SimWitness {
                strategy,
                seed: v.seed,
                choices: v.choices.clone(),
                message: v.message.clone(),
                schedules_searched: searched,
                replay: spec.replay_command(v.seed, &v.choices),
            }))
        }
        Verdict::Safe { .. } => {
            let config = DporConfig::new(max_runs, spec.isolation);
            let sweep = explore_dpor(|| spec.build(), &config);
            if let Some(v) = sweep.violation {
                return Err(format!(
                    "{label}: predicted SAFE but oracle fired: {} ({})",
                    v.message,
                    spec.replay_command(v.seed, &v.choices)
                ));
            }
            if !sweep.complete {
                return Err(format!(
                    "{label}: SAFE sweep incomplete after {} schedules — raise --max-runs",
                    sweep.runs
                ));
            }
            Ok(CellEvidence::Sweep(SweepEvidence {
                runs: sweep.runs,
                schedules_pruned: sweep.stats.schedules_pruned,
                pruned_exact: sweep.stats.pruned_exact,
                sleep_set_blocked: sweep.stats.sleep_set_blocked,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict_of(pair: PairKind, level: IsolationLevel) -> bool {
        decide(pair, level).verdict.is_unsafe()
    }

    #[test]
    fn matrix_matches_the_engine_semantics() {
        use IsolationLevel::*;
        // (pair, [RC, RR, SI, SER] unsafe?)
        let expected = [
            (PairKind::Uniqueness, [true, true, true, false]),
            (PairKind::Orphans, [true, true, true, false]),
            (PairKind::LockRmw, [true, true, false, false]),
            (PairKind::SiblingInserts, [false, false, false, false]),
        ];
        for (pair, row) in expected {
            for (level, want) in [ReadCommitted, RepeatableRead, Snapshot, Serializable]
                .into_iter()
                .zip(row)
            {
                assert_eq!(verdict_of(pair, level), want, "{} at {level}", pair.name());
            }
        }
    }

    #[test]
    fn safe_reasons_name_the_closing_gate() {
        let reason = |pair, level| match decide(pair, level).verdict {
            Verdict::Safe { reason } => reason,
            Verdict::Unsafe { .. } => panic!("expected safe"),
        };
        assert_eq!(
            reason(PairKind::LockRmw, IsolationLevel::Snapshot),
            SafeReason::FirstUpdaterAborts
        );
        assert_eq!(
            reason(PairKind::Uniqueness, IsolationLevel::Serializable),
            SafeReason::ReadSetValidationAborts
        );
        assert_eq!(
            reason(PairKind::SiblingInserts, IsolationLevel::ReadCommitted),
            SafeReason::NoConflicts
        );
    }

    #[test]
    fn mixed_verdicts_agree_with_uniform_on_the_diagonal() {
        for pair in PairKind::all() {
            for level in LEVELS {
                let (_, mixed) = decide_mixed(pair, [level, level]);
                assert_eq!(
                    mixed.is_unsafe(),
                    decide(pair, level).verdict.is_unsafe(),
                    "{} at uniform {level}",
                    pair.name()
                );
            }
        }
    }

    #[test]
    fn mixed_verdicts_capture_one_sided_validation() {
        use IsolationLevel::{ReadCommitted, RepeatableRead, Serializable, Snapshot};
        let is_unsafe = |pair, levels| decide_mixed(pair, levels).1.is_unsafe();

        // one validating probe cannot close off write skew alone: the
        // RC/SI side's rw edge stays unordered
        assert!(is_unsafe(PairKind::Uniqueness, [Snapshot, Serializable]));
        assert!(is_unsafe(
            PairKind::Uniqueness,
            [Serializable, ReadCommitted]
        ));
        // a serializable destroyer still orphans an RC checker's insert
        // when the destroyer commits first
        assert!(is_unsafe(PairKind::Orphans, [ReadCommitted, Serializable]));
        assert!(is_unsafe(PairKind::Orphans, [Serializable, Snapshot]));
        // lock-rmw: first-updater-wins must hold on BOTH writers
        assert!(is_unsafe(PairKind::LockRmw, [RepeatableRead, Snapshot]));
        assert!(is_unsafe(PairKind::LockRmw, [Serializable, ReadCommitted]));
        let (_, v) = decide_mixed(PairKind::LockRmw, [Snapshot, Serializable]);
        assert!(matches!(
            v,
            Verdict::Safe {
                reason: SafeReason::FirstUpdaterAborts
            }
        ));
        // the insert-only control is safe under any assignment
        for a in LEVELS {
            for b in LEVELS {
                assert!(!is_unsafe(PairKind::SiblingInserts, [a, b]));
            }
        }
    }

    #[test]
    fn every_row_agrees_with_its_iconfluence_derivation() {
        let matrix = build_matrix();
        for pair in PairKind::all() {
            let row: Vec<Cell> = matrix.iter().filter(|c| c.pair == pair).cloned().collect();
            iconfluence_agreement(&row).unwrap();
        }
    }
}
