//! Critical-cycle search over admitted dependency edges.
//!
//! A verdict of UNSAFE requires a *realizable* cycle, Adya-style: a
//! simple directed cycle through the admitted edges that
//!
//! 1. never interprets the same read/write overlap twice — one overlap
//!    yields either its `rw` or its `wr` reading in a given execution,
//!    never both; and
//! 2. contains at least one `rw` antidependency — a cycle of `wr` edges
//!    alone says every transaction committed before every other started
//!    reading it, which is temporally contradictory, so pure-`wr` cycles
//!    are unrealizable noise.

use crate::graph::{DepGraph, Edge};
use feral_db::{ConflictKind, IsolationLevel};

/// Find the preferred realizable cycle in `graph`, if any: shortest
/// first, then the one maximising `rw` edges (antidependencies are the
/// anomaly carriers), then first in deterministic edge order.
pub fn find_cycle(graph: &DepGraph) -> Option<Vec<Edge>> {
    let mut best: Option<Vec<Edge>> = None;
    let n = graph.templates.len();
    for start in 0..n {
        let mut path: Vec<Edge> = Vec::new();
        dfs(graph, start, start, &mut path, &mut best, None);
    }
    best
}

/// Whether an edge of a mixed-isolation graph is *ordered*: realizable
/// only when its source commits before its target.
///
/// - every `wr` dependency is ordered — the reader observed a commit, so
///   the writer committed first;
/// - an `rw` antidependency whose reader validates read sets at commit
///   is ordered — if the overwriting writer had committed first, the
///   reader's validation would have aborted it instead.
///
/// Everything else (an `rw` edge with a non-validating reader) is
/// unordered: the engine lets it materialise in either commit order.
pub fn edge_ordered(edge: &Edge, levels: &[IsolationLevel]) -> bool {
    match edge.kind {
        ConflictKind::WriteRead => true,
        ConflictKind::ReadWrite => levels[edge.from].validates_read_sets(),
        ConflictKind::WriteWrite => true,
    }
}

/// [`find_cycle`] for graphs built by
/// [`build_graph_mixed`](crate::build_graph_mixed), where template `i`
/// runs at `levels[i]`.
///
/// Adds one realizability requirement on top of the uniform rules: the
/// cycle must contain at least one **unordered** edge ([`edge_ordered`]).
/// Ordered edges all point source-commits-before-target, so a cycle made
/// only of ordered edges demands a cyclic commit order — temporally
/// contradictory, exactly like the pure-`wr` case. One unordered edge
/// breaks the chain, leaving a satisfiable commit order for the rest.
pub fn find_cycle_constrained(graph: &DepGraph, levels: &[IsolationLevel]) -> Option<Vec<Edge>> {
    assert_eq!(
        graph.templates.len(),
        levels.len(),
        "one isolation level per template"
    );
    let mut best: Option<Vec<Edge>> = None;
    let n = graph.templates.len();
    for start in 0..n {
        let mut path: Vec<Edge> = Vec::new();
        dfs(graph, start, start, &mut path, &mut best, Some(levels));
    }
    best
}

fn rw_count(cycle: &[Edge]) -> usize {
    cycle
        .iter()
        .filter(|e| e.kind == ConflictKind::ReadWrite)
        .count()
}

/// Preference key, minimized: length first, then non-`rw` edge count
/// (so rw-heavy cycles win ties).
fn key(cycle: &[Edge]) -> (usize, usize) {
    (cycle.len(), cycle.len() - rw_count(cycle))
}

fn better(candidate: &[Edge], incumbent: &Option<Vec<Edge>>) -> bool {
    match incumbent {
        None => true,
        Some(cur) => key(candidate) < key(cur),
    }
}

fn dfs(
    graph: &DepGraph,
    start: usize,
    at: usize,
    path: &mut Vec<Edge>,
    best: &mut Option<Vec<Edge>>,
    levels: Option<&[IsolationLevel]>,
) {
    for edge in &graph.edges {
        // cycles are rooted at their minimum node, so siblings of the
        // same cycle aren't enumerated once per rotation
        if edge.from != at || edge.to < start {
            continue;
        }
        if path.iter().any(|e| e.overlap == edge.overlap) {
            continue; // one interpretation per overlap
        }
        if edge.to == start {
            path.push(edge.clone());
            let realizable = rw_count(path) > 0
                && levels.is_none_or(|lv| path.iter().any(|e| !edge_ordered(e, lv)));
            if realizable && better(path, best) {
                *best = Some(path.clone());
            }
            path.pop();
            continue;
        }
        // simple cycle: never revisit a node already on the path
        if edge.to == at || path.iter().any(|e| e.from == edge.to || e.to == edge.to) {
            continue;
        }
        path.push(edge.clone());
        dfs(graph, start, edge.to, path, best, levels);
        path.pop();
    }
}

/// Render a cycle as `T1 -rw-> T2 -rw-> T1 (items: ...)`.
pub fn render_cycle(graph: &DepGraph, cycle: &[Edge]) -> String {
    let mut out = String::new();
    for (i, e) in cycle.iter().enumerate() {
        if i == 0 {
            out.push_str(&graph.templates[e.from].name);
        }
        out.push_str(&format!(
            " -{}[{}]-> {}",
            e.kind.label(),
            e.item,
            graph.templates[e.to].name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::template::uniqueness_probe_insert;
    use feral_db::IsolationLevel;

    fn uniq_graph(iso: IsolationLevel) -> DepGraph {
        build_graph(
            vec![uniqueness_probe_insert(1), uniqueness_probe_insert(2)],
            iso,
        )
    }

    #[test]
    fn uniqueness_cycle_found_and_prefers_rw_edges() {
        let g = uniq_graph(IsolationLevel::ReadCommitted);
        let cycle = find_cycle(&g).expect("read committed admits the write-skew cycle");
        assert_eq!(cycle.len(), 2);
        // rw/rw beats rw/wr at equal length
        assert!(cycle.iter().all(|e| e.kind == ConflictKind::ReadWrite));
        // distinct overlaps
        assert_ne!(cycle[0].overlap, cycle[1].overlap);
    }

    #[test]
    fn no_cycle_once_rw_edges_are_validated_away() {
        let g = uniq_graph(IsolationLevel::Serializable);
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn pure_wr_cycles_are_rejected_as_unrealizable() {
        // hand-build a graph whose only edges are the two wr readings:
        // temporally contradictory, must not count as a cycle
        let mut g = uniq_graph(IsolationLevel::ReadCommitted);
        g.edges.retain(|e| e.kind == ConflictKind::WriteRead);
        assert_eq!(g.edges.len(), 2);
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn constrained_search_rejects_fully_ordered_cycles() {
        use crate::graph::build_graph_mixed;
        use IsolationLevel::{ReadCommitted, Serializable};
        let pair = || vec![uniqueness_probe_insert(1), uniqueness_probe_insert(2)];
        // both validate: every rw edge is ordered, no realizable cycle
        let both = build_graph_mixed(pair(), &[Serializable, Serializable]);
        assert!(find_cycle_constrained(&both, &[Serializable, Serializable]).is_none());
        // one validating reader only orders one edge; the RC reader's rw
        // edge stays unordered, so the write-skew cycle is realizable
        let levels = [Serializable, ReadCommitted];
        let one = build_graph_mixed(pair(), &levels);
        let cycle = find_cycle_constrained(&one, &levels).expect("one free edge suffices");
        assert!(cycle.iter().any(|e| !edge_ordered(e, &levels)));
    }

    #[test]
    fn one_overlap_cannot_serve_both_directions() {
        // keep only the two readings of overlap 0: rw T1->T2 and wr T2->T1.
        // they would close a 2-cycle, but they are the same overlap.
        let mut g = uniq_graph(IsolationLevel::ReadCommitted);
        g.edges.retain(|e| e.overlap == 0);
        assert_eq!(g.edges.len(), 2);
        assert!(find_cycle(&g).is_none());
    }
}
