//! The tentpole cross-validation: the static verdict matrix against
//! (a) exhaustive feral-sim schedule exploration, (b) witness replay,
//! (c) the invariant-confluence derivations, and (d) the checked-in
//! golden artifact.

use feral_db::IsolationLevel;
use feral_sdg::matrix::{
    build_matrix, iconfluence_agreement, validate_cell, Cell, CellEvidence, PairKind,
};
use feral_sdg::report::render_json;
use feral_sim::{run_with_choices, run_with_seed};

const SEEDS: u64 = 500;
const MAX_RUNS: usize = 200_000;

#[test]
fn matrix_shape_covers_four_pairs_at_four_levels() {
    let matrix = build_matrix();
    assert_eq!(matrix.len(), 16);
    for pair in PairKind::all() {
        assert_eq!(matrix.iter().filter(|c| c.pair == pair).count(), 4);
    }
}

#[test]
fn static_verdicts_match_exhaustive_schedule_exploration() {
    // every cell: UNSAFE must yield a witness schedule, SAFE must sweep
    // exhaustively with a silent oracle — the whole point of the crate
    for cell in build_matrix() {
        validate_cell(&cell, SEEDS, MAX_RUNS).unwrap_or_else(|msg| {
            panic!("static/dynamic disagreement: {msg}");
        });
    }
}

#[test]
fn every_unsafe_witness_replays_twice() {
    // determinism is the contract: the witness must fire on every
    // replay, not just the first
    for cell in build_matrix().into_iter().filter(|c| c.verdict.is_unsafe()) {
        let CellEvidence::Witness(w) = validate_cell(&cell, SEEDS, MAX_RUNS).unwrap() else {
            panic!("unsafe cell must yield a witness");
        };
        for attempt in 0..2 {
            let (_, verdict) = match w.seed {
                Some(seed) => run_with_seed(cell.scenario.build(), seed),
                None => run_with_choices(cell.scenario.build(), &w.choices),
            };
            assert!(
                verdict.is_err(),
                "{}/{} witness went silent on replay {attempt}: {}",
                cell.pair.name(),
                cell.isolation,
                w.replay
            );
        }
    }
}

#[test]
fn matrix_agrees_with_iconfluence_for_every_pair() {
    let matrix = build_matrix();
    for pair in PairKind::all() {
        let row: Vec<Cell> = matrix.iter().filter(|c| c.pair == pair).cloned().collect();
        iconfluence_agreement(&row).unwrap_or_else(|msg| panic!("iconfluence disagreement: {msg}"));
    }
}

#[test]
fn serializable_column_is_entirely_safe() {
    // the coordination ceiling: with full coordination no feral check
    // is violable, matching the paper's framing of serializability as
    // the sufficient (if expensive) fix
    for cell in build_matrix() {
        if cell.isolation == IsolationLevel::Serializable {
            assert!(
                !cell.verdict.is_unsafe(),
                "{} unsafe at serializable",
                cell.pair.name()
            );
        }
    }
}

#[test]
fn golden_artifact_matches_the_checked_in_matrix() {
    // the golden is the --validate artifact: every cell carries its
    // witness or sweep receipt, so render with the same evidence the
    // binary attaches (defaults match SEEDS / MAX_RUNS)
    let matrix = build_matrix();
    let evidence: Vec<CellEvidence> = matrix
        .iter()
        .map(|cell| {
            validate_cell(cell, SEEDS, MAX_RUNS)
                .unwrap_or_else(|msg| panic!("cell failed validation: {msg}"))
        })
        .collect();
    let rendered = render_json(&matrix, Some(&evidence));
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_sdg.golden.json"
    );
    let golden = std::fs::read_to_string(path).expect("results/BENCH_sdg.golden.json present");
    assert_eq!(
        rendered, golden,
        "verdict matrix drifted from results/BENCH_sdg.golden.json — regenerate with \
         `feral-sdg matrix --validate --json --out results/BENCH_sdg.golden.json` \
         and review the diff"
    );
}
