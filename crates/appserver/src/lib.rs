//! # feral-server
//!
//! A simulated Rails deployment: Nginx + a pool of single-threaded
//! Unicorn workers, reduced to its concurrency-relevant essentials.
//!
//! In the paper's architecture (§2.2), each HTTP request is routed to one
//! worker process holding one database connection; workers share nothing
//! but the database. This crate models exactly that: a [`Deployment`]
//! owns `P` OS threads, each with its own [`feral_orm::Session`], fed
//! from a shared queue. The experiment harness issues *rounds* of
//! concurrent requests and blocks until every response arrives — the
//! paper's "blocking in-between rounds to ensure that each round is, in
//! fact, a concurrent set of requests" (§5.2).
//!
//! ## The [`Service`] boundary
//!
//! Every request path in the repo now goes through one transport-agnostic
//! trait: [`Service::call`] maps a [`Request`] to a [`Response`].
//! Implementations:
//!
//! * [`Deployment`] — the classic in-process worker pool (also the
//!   sim-hooked path: its dispatch and handle sites are
//!   `feral_hooks` yield points, so deterministic schedule exploration
//!   drives it unchanged);
//! * [`PooledService`] — a sessionless front door holding a bounded
//!   connection pool, the shape a networked frontend's executor threads
//!   want (one [`feral_orm::Session`] checked out per in-flight call);
//! * `feral_net::NetClient` — the networked frontend: the same calls,
//!   over a length-prefixed wire protocol.
//!
//! [`Deployment::round`] and [`Deployment::dispatch`] remain as thin
//! adapters over the same machinery, so the round-barrier experiment
//! harness and the benches migrate without behaviour change.

#![warn(missing_docs)]

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use feral_db::Datum;
use feral_orm::{App, OrmError, Record, Session};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A transport-agnostic application service: the one interface the
/// in-process deployment, the deterministic-sim path, and the networked
/// frontend all implement. A service must be callable from any thread;
/// each call is one request/response exchange.
pub trait Service: Send + Sync {
    /// Handle one request to completion.
    fn call(&self, request: Request) -> Response;
}

/// What a request asks the application to do — the HTTP verbs the
/// experiment applications expose (paper Appendix C.1: "simple View and
/// Controller logic to allow us to POST, GET, and DELETE each kind of
/// model instance"), plus the named-template entry point the isolation
/// planner's workloads use.
pub enum Op {
    /// `POST /<model>` — build a record from attributes and `save` it.
    Create {
        /// Model class name.
        model: String,
        /// Attribute assignments.
        attrs: Vec<(String, Datum)>,
    },
    /// `DELETE /<model>/<id>` — `find` then `destroy` (runs dependent
    /// association logic ferally).
    Destroy {
        /// Model class name.
        model: String,
        /// Record id.
        id: i64,
    },
    /// `GET /<model>/<id>`.
    Get {
        /// Model class name.
        model: String,
        /// Record id.
        id: i64,
    },
    /// A named transaction template (the `feral-plan` key vocabulary,
    /// e.g. `uniqueness-probe-insert:signups.email`) applied to `key`.
    /// Only template-aware services (the planner workload frontends)
    /// handle these; ORM-backed services answer with a config error.
    Template {
        /// Template key, `{class}:{table}.{column}`.
        name: String,
        /// Workload key the template instance targets.
        key: u64,
    },
    /// Arbitrary controller logic (used by workloads that update
    /// records). Not serializable: a custom request cannot cross a wire.
    Custom(Box<dyn FnOnce(&mut Session) -> Response + Send>),
}

/// A request, as dispatched to a worker: a first-class user session
/// identity plus the operation. Session ids let a load generator
/// simulate millions of distinct users without any per-user server
/// state; they flow into trace events for per-session provenance.
pub struct Request {
    /// The issuing user session (0 = anonymous/none).
    pub session: u64,
    /// What to do.
    pub op: Op,
}

impl Request {
    /// Start building a model-targeted request.
    pub fn builder(model: impl Into<String>) -> RequestBuilder {
        RequestBuilder {
            model: model.into(),
            session: 0,
            attrs: Vec::new(),
        }
    }

    /// A named-template request (see [`Op::Template`]).
    pub fn template(name: impl Into<String>, key: u64) -> Request {
        Request {
            session: 0,
            op: Op::Template {
                name: name.into(),
                key,
            },
        }
    }

    /// An arbitrary-controller-logic request (see [`Op::Custom`]).
    pub fn custom(f: impl FnOnce(&mut Session) -> Response + Send + 'static) -> Request {
        Request {
            session: 0,
            op: Op::Custom(Box::new(f)),
        }
    }

    /// Attach a session identity to an already-built request.
    pub fn with_session(mut self, session: u64) -> Request {
        self.session = session;
        self
    }
}

/// Builder for model-targeted [`Request`]s: model, op, attributes, and
/// session identity, each spelled once and typed. The terminal methods
/// ([`RequestBuilder::create`], [`RequestBuilder::get`],
/// [`RequestBuilder::destroy`]) pick the operation.
pub struct RequestBuilder {
    model: String,
    session: u64,
    attrs: Vec<(String, Datum)>,
}

impl RequestBuilder {
    /// Set the issuing session id.
    pub fn session(mut self, session: u64) -> Self {
        self.session = session;
        self
    }

    /// Add one attribute assignment.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<Datum>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Add attribute assignments from `(name, value)` pairs.
    pub fn attrs(mut self, pairs: &[(&str, Datum)]) -> Self {
        self.attrs
            .extend(pairs.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
        self
    }

    /// Finish as a `POST /<model>` create.
    pub fn create(self) -> Request {
        Request {
            session: self.session,
            op: Op::Create {
                model: self.model,
                attrs: self.attrs,
            },
        }
    }

    /// Finish as a `GET /<model>/<id>`.
    pub fn get(self, id: i64) -> Request {
        Request {
            session: self.session,
            op: Op::Get {
                model: self.model,
                id,
            },
        }
    }

    /// Finish as a `DELETE /<model>/<id>`.
    pub fn destroy(self, id: i64) -> Request {
        Request {
            session: self.session,
            op: Op::Destroy {
                model: self.model,
                id,
            },
        }
    }
}

/// A response, as returned by a worker.
#[derive(Debug)]
pub enum Response {
    /// Save succeeded; the created record's id.
    Created(i64),
    /// Validations failed; nothing was written.
    Invalid(Vec<String>),
    /// Destroy succeeded.
    Destroyed,
    /// Read succeeded.
    Found(Record),
    /// The target row does not exist.
    NotFound,
    /// The database rejected the request (constraint violation,
    /// serialization failure, lock timeout, ...).
    Error(OrmError),
    /// The deployment shed this request under overload before any
    /// application logic ran. Always safe to retry.
    Overloaded,
    /// Custom-handler / template success marker.
    Ok,
}

impl Response {
    /// Whether the request had its intended effect.
    pub fn succeeded(&self) -> bool {
        matches!(
            self,
            Response::Created(_) | Response::Destroyed | Response::Found(_) | Response::Ok
        )
    }

    /// Whether re-issuing the identical request may succeed: load sheds
    /// always (nothing ran), and errors the ORM classifies as retryable
    /// (concurrency aborts, optimistic-locking conflicts).
    pub fn retryable(&self) -> bool {
        match self {
            Response::Overloaded => true,
            Response::Error(e) => e.is_retryable(),
            _ => false,
        }
    }
}

struct Job {
    /// Position of the request within its round, so one shared reply
    /// channel can preserve request order without per-request collector
    /// threads (which would also defeat deterministic scheduling).
    index: usize,
    request: Request,
    reply: Sender<(usize, Response)>,
}

/// Configuration for a deployment.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Number of single-threaded workers (Unicorn processes).
    pub workers: usize,
    /// Upper bound of the random pre-dispatch delay injected per request,
    /// modelling HTTP proxying and Ruby VM scheduling jitter. Zero
    /// disables it.
    pub request_jitter: Duration,
    /// RNG seed for jitter reproducibility.
    pub seed: u64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            workers: 4,
            request_jitter: Duration::ZERO,
            seed: 0,
        }
    }
}

/// Per-worker request counters (shared with the worker thread).
#[derive(Debug, Default)]
struct WorkerCounters {
    /// Requests handled, regardless of outcome.
    served: AtomicU64,
    /// Requests answered with [`Response::Error`].
    errors: AtomicU64,
    /// Requests answered with [`Response::Invalid`].
    invalid: AtomicU64,
}

/// A point-in-time snapshot of a deployment's counters: per-worker
/// served/error/invalid tallies plus the pool's request-latency
/// histogram. Uneven worker sharing and validation-rejection rates are
/// read off this instead of guessed at.
#[derive(Debug, Clone)]
pub struct DeploymentMetrics {
    /// Requests served, per worker.
    pub served: Vec<u64>,
    /// [`Response::Error`] responses, per worker.
    pub errors: Vec<u64>,
    /// [`Response::Invalid`] responses, per worker.
    pub invalid: Vec<u64>,
    /// Request service-time histogram (nanoseconds), pooled across
    /// workers. Populated only while `feral_trace` is enabled.
    pub latency: feral_trace::HistogramSnapshot,
}

impl DeploymentMetrics {
    /// Total requests served across all workers.
    pub fn total_served(&self) -> u64 {
        self.served.iter().sum()
    }

    /// Total error responses across all workers.
    pub fn total_errors(&self) -> u64 {
        self.errors.iter().sum()
    }

    /// Total validation-rejected responses across all workers.
    pub fn total_invalid(&self) -> u64 {
        self.invalid.iter().sum()
    }
}

/// A running worker pool bound to an [`App`].
pub struct Deployment {
    jobs: Sender<Job>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    counters: Arc<Vec<WorkerCounters>>,
    latency: Arc<feral_trace::Histogram>,
}

impl Deployment {
    /// Spin up `config.workers` workers, each holding one session at the
    /// app database's default isolation.
    pub fn start(app: App, config: DeploymentConfig) -> Self {
        let (tx, rx) = unbounded::<Job>();
        let counters: Arc<Vec<WorkerCounters>> = Arc::new(
            (0..config.workers)
                .map(|_| WorkerCounters::default())
                .collect(),
        );
        let latency = Arc::new(feral_trace::Histogram::new());
        let mut handles = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let app = app.clone();
            let rx: Receiver<Job> = rx.clone();
            let jitter = config.request_jitter;
            let counters = counters.clone();
            let latency = latency.clone();
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(w as u64));
            // register the worker with any active schedule hook *before*
            // spawning, so the simulated worker set is deterministic; the
            // pool threads are daemons (they do not keep a simulation
            // alive while idle in `recv`)
            let reg = feral_hooks::spawn_registration(true);
            handles.push(std::thread::spawn(move || {
                let _active = reg.map(feral_hooks::Registration::activate);
                let mut session = app.session();
                while let Ok(job) = rx.recv() {
                    if feral_hooks::active() {
                        // jitter exists to shake loose interleavings; under
                        // a deterministic scheduler the schedule explorer
                        // does that job, so the sleep becomes a yield point
                        feral_hooks::yield_point(feral_hooks::Site::ServerHandle);
                    } else if !jitter.is_zero() {
                        let d = rng.random_range(0..=jitter.as_micros() as u64);
                        std::thread::sleep(Duration::from_micros(d));
                    }
                    feral_trace::record(
                        feral_trace::EventKind::Site(feral_hooks::Site::ServerHandle),
                        0,
                        w as u64,
                        job.request.session,
                    );
                    let span = feral_trace::start_phase(feral_trace::Phase::Request);
                    let response = handle(&mut session, job.request);
                    let nanos = span.finish(0);
                    if nanos > 0 {
                        latency.record(nanos);
                    }
                    let c = &counters[w];
                    c.served.fetch_add(1, Ordering::Relaxed);
                    match &response {
                        Response::Error(_) => {
                            c.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Invalid(_) => {
                            c.invalid.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    let _ = job.reply.send((job.index, response));
                }
            }));
        }
        Deployment {
            jobs: tx,
            handles,
            workers: config.workers,
            counters,
            latency,
        }
    }

    /// Requests served so far, per worker — load-balance diagnostics.
    /// See [`Deployment::metrics`] for the full counter snapshot.
    pub fn requests_served(&self) -> Vec<u64> {
        self.counters
            .iter()
            .map(|c| c.served.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshot all deployment counters: per-worker served, error, and
    /// validation-rejected tallies plus the pooled request-latency
    /// histogram.
    pub fn metrics(&self) -> DeploymentMetrics {
        DeploymentMetrics {
            served: self.requests_served(),
            errors: self
                .counters
                .iter()
                .map(|c| c.errors.load(Ordering::Relaxed))
                .collect(),
            invalid: self
                .counters
                .iter()
                .map(|c| c.invalid.load(Ordering::Relaxed))
                .collect(),
            latency: self.latency.snapshot(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Dispatch one round of requests concurrently across the pool and
    /// collect all responses (order corresponds to request order). A
    /// thin adapter over the shared queue: the concurrency-relevant
    /// behaviour is identical to issuing [`Service::call`] from `n`
    /// client threads at once.
    pub fn round(&self, requests: Vec<Request>) -> Vec<Response> {
        let n = requests.len();
        let (reply_tx, reply_rx) = bounded::<(usize, Response)>(n);
        for (index, request) in requests.into_iter().enumerate() {
            feral_hooks::yield_point(feral_hooks::Site::ServerDispatch);
            self.jobs
                .send(Job {
                    index,
                    request,
                    reply: reply_tx.clone(),
                })
                .expect("worker pool is gone");
        }
        drop(reply_tx);
        let mut out: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match reply_rx.recv() {
                Ok((i, r)) => out[i] = Some(r),
                Err(_) => break,
            }
        }
        out.into_iter()
            .map(|r| r.unwrap_or(Response::Error(OrmError::Config("worker died".into()))))
            .collect()
    }

    /// Dispatch a single request and wait for its response (the
    /// [`Service::call`] adapter).
    pub fn dispatch(&self, request: Request) -> Response {
        self.round(vec![request]).pop().unwrap()
    }

    /// Shut the pool down, waiting for workers to drain.
    pub fn shutdown(self) {
        drop(self.jobs);
        // joins block in the OS, not at a yield point — tell any active
        // scheduler this worker holds no turn until they complete
        feral_hooks::blocking(|| {
            for h in self.handles {
                let _ = h.join();
            }
        });
    }
}

impl Service for Deployment {
    fn call(&self, request: Request) -> Response {
        self.dispatch(request)
    }
}

/// An in-process [`Service`] with a bounded session pool instead of
/// worker threads: each call checks a [`feral_orm::Session`] out (or
/// opens one when the pool is dry), runs the request on the *calling*
/// thread, and returns the session if the pool has room. This is the
/// shape a networked frontend's executor threads front the database
/// with — `pool` plays the role of the Rails database connection pool.
pub struct PooledService {
    app: App,
    sessions: parking_lot::Mutex<Vec<Session>>,
    pool: usize,
    calls: AtomicU64,
}

impl PooledService {
    /// A pooled service over `app` retaining at most `pool` idle
    /// sessions.
    pub fn new(app: App, pool: usize) -> Self {
        PooledService {
            app,
            sessions: parking_lot::Mutex::new(Vec::with_capacity(pool)),
            pool,
            calls: AtomicU64::new(0),
        }
    }

    /// Requests served so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Sessions currently idle in the pool.
    pub fn idle_sessions(&self) -> usize {
        self.sessions.lock().len()
    }
}

impl Service for PooledService {
    fn call(&self, request: Request) -> Response {
        let checked_out = self.sessions.lock().pop();
        let mut session = checked_out.unwrap_or_else(|| self.app.session());
        let response = handle(&mut session, request);
        self.calls.fetch_add(1, Ordering::Relaxed);
        let mut pool = self.sessions.lock();
        if pool.len() < self.pool {
            pool.push(session);
        }
        response
    }
}

fn handle(session: &mut Session, request: Request) -> Response {
    match request.op {
        Op::Create { model, attrs } => {
            let pairs: Vec<(&str, Datum)> =
                attrs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            match session.create(&model, &pairs) {
                Ok(r) if r.is_persisted() => Response::Created(r.id().unwrap_or(-1)),
                Ok(r) => Response::Invalid(r.errors.full_messages()),
                Err(e) => Response::Error(e),
            }
        }
        Op::Destroy { model, id } => match session.find(&model, id) {
            Ok(mut rec) => match session.destroy(&mut rec) {
                Ok(()) => Response::Destroyed,
                Err(e) => Response::Error(e),
            },
            Err(OrmError::RecordNotFound(_)) => Response::NotFound,
            Err(e) => Response::Error(e),
        },
        Op::Get { model, id } => match session.find(&model, id) {
            Ok(rec) => Response::Found(rec),
            Err(OrmError::RecordNotFound(_)) => Response::NotFound,
            Err(e) => Response::Error(e),
        },
        Op::Template { name, .. } => Response::Error(OrmError::Config(format!(
            "no template handler for `{name}` (ORM-backed service)"
        ))),
        Op::Custom(f) => f(session),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feral_orm::ModelDef;

    fn app() -> App {
        let app = App::in_memory();
        app.define(
            ModelDef::build("Widget")
                .string("name")
                .validates_presence_of("name")
                .finish(),
        )
        .unwrap();
        app
    }

    fn create_widget(name: &str) -> Request {
        Request::builder("Widget")
            .attr("name", Datum::text(name))
            .create()
    }

    #[test]
    fn create_and_get_roundtrip() {
        let app = app();
        let d = Deployment::start(app, DeploymentConfig::default());
        let r = d.dispatch(create_widget("w"));
        let Response::Created(id) = r else {
            panic!("expected Created, got {r:?}")
        };
        let r = d.dispatch(Request::builder("Widget").get(id));
        assert!(matches!(r, Response::Found(_)));
        d.shutdown();
    }

    #[test]
    fn invalid_create_reports_errors() {
        let app = app();
        let d = Deployment::start(app, DeploymentConfig::default());
        let r = d.dispatch(Request::builder("Widget").create());
        match r {
            Response::Invalid(msgs) => {
                assert!(msgs.iter().any(|m| m.contains("blank")), "{msgs:?}")
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        d.shutdown();
    }

    #[test]
    fn round_returns_all_responses_in_order() {
        let app = app();
        let d = Deployment::start(
            app,
            DeploymentConfig {
                workers: 8,
                ..Default::default()
            },
        );
        let reqs: Vec<Request> = (0..32).map(|i| create_widget(&format!("w{i}"))).collect();
        let resps = d.round(reqs);
        assert_eq!(resps.len(), 32);
        assert!(resps.iter().all(|r| r.succeeded()));
        d.shutdown();
    }

    #[test]
    fn destroy_and_not_found() {
        let app = app();
        let d = Deployment::start(app, DeploymentConfig::default());
        let Response::Created(id) = d.dispatch(create_widget("w")) else {
            panic!()
        };
        assert!(matches!(
            d.dispatch(Request::builder("Widget").destroy(id)),
            Response::Destroyed
        ));
        assert!(matches!(
            d.dispatch(Request::builder("Widget").get(id)),
            Response::NotFound
        ));
        d.shutdown();
    }

    #[test]
    fn requests_served_accounts_for_all_work() {
        let app = app();
        let d = Deployment::start(
            app,
            DeploymentConfig {
                workers: 4,
                ..Default::default()
            },
        );
        let reqs: Vec<Request> = (0..40).map(|i| create_widget(&format!("w{i}"))).collect();
        let _ = d.round(reqs);
        let served = d.requests_served();
        assert_eq!(served.len(), 4);
        assert_eq!(served.iter().sum::<u64>(), 40);
        // NOTE: how the shared queue splits the 40 requests across the 4
        // workers is up to the OS scheduler — with zero jitter one worker
        // may legally drain the whole queue, so per-worker share is not
        // asserted here (schedule-dependent behaviour belongs to the
        // deterministic feral-sim tests)
        d.shutdown();
    }

    #[test]
    fn metrics_separates_errors_and_invalid_from_successes() {
        let app = app();
        let d = Deployment::start(app, DeploymentConfig::default());
        // 3 successes, 2 validation rejections, 1 hard error.
        for i in 0..3 {
            let r = d.dispatch(create_widget(&format!("w{i}")));
            assert!(r.succeeded());
        }
        for _ in 0..2 {
            assert!(matches!(
                d.dispatch(Request::builder("Widget").create()),
                Response::Invalid(_)
            ));
        }
        assert!(matches!(
            d.dispatch(Request::builder("NoSuchModel").create()),
            Response::Error(_)
        ));
        let m = d.metrics();
        assert_eq!(m.total_served(), 6);
        assert_eq!(m.total_invalid(), 2);
        assert_eq!(m.total_errors(), 1);
        assert_eq!(m.served.len(), d.workers());
        assert_eq!(m.served.iter().sum::<u64>(), 6);
        // requests_served stays consistent with the richer snapshot
        assert_eq!(d.requests_served(), m.served);
        // tracing is off in this test, so no latency was collected —
        // the histogram must stay empty (branch-on-disabled no-op)
        assert!(m.latency.is_empty());
        d.shutdown();
    }

    #[test]
    fn custom_requests_run_controller_logic() {
        let app = app();
        let d = Deployment::start(app.clone(), DeploymentConfig::default());
        let r = d.dispatch(Request::custom(|s| {
            match s.create("Widget", &[("name", Datum::text("custom"))]) {
                Ok(r) if r.is_persisted() => Response::Created(r.id().unwrap()),
                Ok(_) => Response::Invalid(vec![]),
                Err(e) => Response::Error(e),
            }
        }));
        assert!(matches!(r, Response::Created(_)));
        d.shutdown();
    }

    #[test]
    fn builder_carries_session_attrs_and_op() {
        let r = Request::builder("Widget")
            .session(42)
            .attr("name", Datum::text("w"))
            .attrs(&[("extra", Datum::Int(7))])
            .create();
        assert_eq!(r.session, 42);
        let Op::Create { model, attrs } = r.op else {
            panic!("expected Create")
        };
        assert_eq!(model, "Widget");
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].0, "name");
        assert_eq!(attrs[1].1, Datum::Int(7));

        let r = Request::builder("Widget").session(9).get(3);
        assert!(matches!(r.op, Op::Get { id: 3, .. }));
        assert_eq!(r.session, 9);
        let r = Request::builder("Widget").destroy(4).with_session(8);
        assert!(matches!(r.op, Op::Destroy { id: 4, .. }));
        assert_eq!(r.session, 8);
        let r = Request::template("lock-version-rmw:accounts.lock_version", 17);
        assert!(matches!(r.op, Op::Template { key: 17, .. }));
    }

    #[test]
    fn deployment_is_a_service() {
        let app = app();
        let d = Deployment::start(app, DeploymentConfig::default());
        let svc: &dyn Service = &d;
        assert!(matches!(svc.call(create_widget("s")), Response::Created(_)));
        d.shutdown();
    }

    #[test]
    fn pooled_service_reuses_sessions_and_serves() {
        let svc = PooledService::new(app(), 2);
        let svc = std::sync::Arc::new(svc);
        let mut joins = Vec::new();
        for t in 0..4 {
            let svc = svc.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..8 {
                    let r = svc.call(create_widget(&format!("w{t}-{i}")));
                    assert!(r.succeeded(), "{r:?}");
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(svc.calls(), 32);
        // the pool retains at most its bound
        assert!(svc.idle_sessions() <= 2);
        // a template op is a config error on an ORM-backed service
        let r = svc.call(Request::template("nope:t.c", 1));
        assert!(matches!(r, Response::Error(OrmError::Config(_))));
        assert!(!r.retryable());
    }

    #[test]
    fn retryable_classification() {
        assert!(Response::Overloaded.retryable());
        assert!(!Response::Overloaded.succeeded());
        assert!(Response::Error(OrmError::StaleObject("w".into())).retryable());
        assert!(Response::Error(OrmError::Db(feral_db::DbError::WriteConflict)).retryable());
        assert!(!Response::Error(OrmError::Config("x".into())).retryable());
        assert!(!Response::NotFound.retryable());
    }
}
