//! Minimal JSON support: escaping for the exporters and a small
//! recursive-descent parser for report validation and golden tests.
//! The workspace is offline-vendored and has no serde_json; this
//! covers exactly what the run-report pipeline needs.

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String contents; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64`; `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Signed integer value; `None` for non-numbers and non-integers
    /// (fractions and values outside the exactly-representable `i64`
    /// range).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// Non-negative integer value; `None` for non-numbers, negatives,
    /// and non-integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == want {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole code point.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_u64(), None);
    }

    #[test]
    fn number_accessors_distinguish_sign_and_fraction() {
        let doc = r#"{"neg": -3, "pos": 7, "frac": 2.5, "s": "9", "b": true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("pos").unwrap().as_i64(), Some(7));
        assert_eq!(v.get("pos").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("frac").unwrap().as_i64(), None);
        assert_eq!(v.get("frac").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_i64(), None);
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("b").unwrap().as_i64(), None);
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{1} unicode é";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
