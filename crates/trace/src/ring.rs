//! Per-thread lock-free event rings and the global flight recorder.
//!
//! Each recording thread owns one [`Ring`]: a fixed-size array of
//! seqlock-protected slots written only by that thread. Readers (the
//! flight-recorder dump) never block writers; a slot caught mid-write
//! is simply skipped. All state is `AtomicU64`, so there is no
//! `unsafe` and no torn *word* — the version protocol only guards
//! against observing a mixed event (half old, half new).
//!
//! Protocol per slot:
//! - writer: bump `version` to odd, store the 7 payload words, bump
//!   `version` to even (release).
//! - reader: load `version` (acquire); if odd, skip. Load the words,
//!   re-load `version`; if it changed, skip.
//!
//! Rings register themselves in a global registry on first use so the
//! flight recorder can merge the tails of every thread's ring into one
//! globally ordered (by `seq`) view.

use crate::event::Event;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slots per thread ring. Power of two; the flight recorder keeps the
/// last `RING_SLOTS` events per recording thread.
pub const RING_SLOTS: usize = 1024;

struct Slot {
    version: AtomicU64,
    words: [AtomicU64; 7],
}

impl Slot {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);

    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            words: [Self::ZERO; 7],
        }
    }
}

/// A single thread's event ring. Written by exactly one thread,
/// readable by any.
pub struct Ring {
    /// Trace worker id of the owning thread.
    worker: u64,
    /// Next logical write position (monotonic; slot = head % RING_SLOTS).
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl Ring {
    fn new(worker: u64) -> Ring {
        Ring {
            worker,
            head: AtomicU64::new(0),
            slots: (0..RING_SLOTS).map(|_| Slot::new()).collect(),
        }
    }

    /// Trace worker id of the owning thread.
    pub fn worker(&self) -> u64 {
        self.worker
    }

    /// Publish one event. Called only by the owning thread.
    // racer:publication trace::Ring::head
    // racer:seqlock trace::Slot::version guards trace::Slot::words
    pub fn push(&self, event: &Event) {
        let pos = self.head.load(Ordering::Relaxed); // racer:owner-thread single writer
        let slot = &self.slots[(pos as usize) % RING_SLOTS];
        let v = slot.version.load(Ordering::Relaxed);
        slot.version.store(v | 1, Ordering::Release);
        let words = event.encode();
        for (w, word) in slot.words.iter().zip(words) {
            w.store(word, Ordering::Release);
        }
        slot.version
            .store((v | 1).wrapping_add(1), Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// Snapshot every readable slot, oldest first. Slots caught
    /// mid-write (or never written) are skipped.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let filled = (head as usize).min(RING_SLOTS);
        let mut out = Vec::with_capacity(filled);
        // Walk from the oldest retained logical position forward.
        let start = head - filled as u64;
        for pos in start..head {
            let slot = &self.slots[(pos as usize) % RING_SLOTS];
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                continue; // mid-write
            }
            let mut words = [0u64; 7];
            for (dst, w) in words.iter_mut().zip(&slot.words) {
                *dst = w.load(Ordering::Acquire);
            }
            let v2 = slot.version.load(Ordering::Acquire);
            if v1 != v2 {
                continue; // overwritten while reading
            }
            if let Some(event) = Event::decode(words) {
                out.push(event);
            }
        }
        out
    }
}

/// Global registry of all thread rings ever created. Rings are never
/// unregistered: a finished worker's tail stays dumpable, which is
/// exactly what a post-mortem flight recorder wants.
static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

/// Next trace worker id.
static NEXT_WORKER: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static MY_RING: Arc<Ring> = {
        let ring = Arc::new(Ring::new(NEXT_WORKER.fetch_add(1, Ordering::Relaxed)));
        REGISTRY.lock().push(ring.clone());
        ring
    };
}

/// The calling thread's ring (created and registered on first use).
pub fn with_ring<R>(f: impl FnOnce(&Ring) -> R) -> R {
    MY_RING.with(|ring| f(ring))
}

/// Merge the tails of every registered ring into one `seq`-ordered
/// view, keeping only events with `seq >= floor`, and truncate to the
/// last `limit` events.
pub fn merged_tail(floor: u64, limit: usize) -> Vec<Event> {
    let rings: Vec<Arc<Ring>> = REGISTRY.lock().clone();
    let mut events: Vec<Event> = rings
        .iter()
        .flat_map(|r| r.snapshot())
        .filter(|e| e.seq >= floor)
        .collect();
    events.sort_by_key(|e| e.seq);
    if events.len() > limit {
        events.drain(..events.len() - limit);
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use feral_hooks::Site;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            ts_nanos: seq * 10,
            worker: 0,
            txn: seq,
            kind: EventKind::Site(Site::TxnCommit),
            a: seq,
            b: !seq,
        }
    }

    #[test]
    fn ring_keeps_insertion_order() {
        let ring = Ring::new(99);
        for seq in 0..10 {
            ring.push(&ev(seq));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 10);
        assert_eq!(got.first().unwrap().seq, 0);
        assert_eq!(got.last().unwrap().seq, 9);
        assert_eq!(ring.worker(), 99);
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let ring = Ring::new(0);
        let total = RING_SLOTS as u64 * 3 + 7;
        for seq in 0..total {
            ring.push(&ev(seq));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), RING_SLOTS);
        assert_eq!(got.first().unwrap().seq, total - RING_SLOTS as u64);
        assert_eq!(got.last().unwrap().seq, total - 1);
        // Still contiguous after wrapping.
        for pair in got.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
    }
}
