//! Fixed-bucket log-scale latency histograms.
//!
//! 256 buckets: values below 16 get exact unit buckets (0..=15); above
//! that, each power-of-two octave is split into 4 linear sub-buckets,
//! covering the full `u64` range. Relative quantile error is therefore
//! bounded by one sub-bucket width: at most 25 % of the value, and far
//! less once values exceed a few hundred nanoseconds.
//!
//! The live [`Histogram`] is all relaxed atomics (recordable from any
//! thread, `const`-constructible for statics); [`HistogramSnapshot`]
//! is the plain-data view that supports `merge` (across workers),
//! `diff` (windowed measurements), and quantile extraction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets.
pub const HIST_BUCKETS: usize = 256;

/// Sentinel returned by [`HistogramSnapshot::quantile`] when the
/// snapshot carries no rankable information: it is empty, or every
/// sample landed in a single multi-value bucket (any point inside
/// that bucket's span would be a resolution artefact, not an order
/// statistic). Chosen as `2^53 - 1` so the value survives the f64
/// JSON wire format exactly and is far outside any plausible latency.
pub const QUANTILE_SENTINEL: u64 = (1 << 53) - 1;

/// Bucket index for a recorded value.
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as u64;
        let sub = (v >> (exp - 2)) & 3;
        (16 + (exp - 4) * 4 + sub) as usize
    }
}

/// Inclusive `(low, high)` value range covered by a bucket.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 16 {
        (idx as u64, idx as u64)
    } else {
        let b = (idx - 16) as u64;
        let exp = 4 + b / 4;
        let sub = b % 4;
        let width = 1u64 << (exp - 2);
        let low = (1u64 << exp) + sub * width;
        (low, low + (width - 1))
    }
}

/// A concurrent log-scale histogram. All operations are wait-free
/// relaxed atomics; `record` is a handful of instructions.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);

    /// An empty histogram; usable in `static` position.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [Self::ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (dst, b) in buckets.iter_mut().zip(&self.buckets) {
            *dst = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between experiment cells).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Plain-data histogram state: mergeable, diffable, queryable.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_bounds`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Combine two snapshots (e.g. per-worker histograms into one).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = self.buckets;
        for (dst, src) in buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
        }
    }

    /// Counts accumulated since `earlier` (saturating; `max` is kept
    /// from `self` since a maximum cannot be windowed exactly).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = self.buckets;
        for (dst, src) in buckets.iter_mut().zip(&earlier.buckets) {
            *dst = dst.saturating_sub(*src);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the observed maximum.
    ///
    /// Degenerate snapshots return [`QUANTILE_SENTINEL`] instead of a
    /// fabricated value: an empty snapshot has no order statistics at
    /// all, and a snapshot whose every sample fell into one
    /// multi-value bucket cannot resolve *any* point within that
    /// bucket (previously this returned the bucket's upper bound
    /// clamped to `max` — after a [`HistogramSnapshot::diff`] the
    /// retained `max` may lie outside the window, making that bound a
    /// bogus midpoint of values never recorded). Single-unit buckets
    /// (values below 16) are exact and still return the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return QUANTILE_SENTINEL;
        }
        let mut nonempty = self.buckets.iter().enumerate().filter(|(_, &c)| c > 0);
        if let (Some((idx, _)), None) = (nonempty.next(), nonempty.next()) {
            let (lo, hi) = bucket_bounds(idx);
            if lo < hi {
                return QUANTILE_SENTINEL;
            }
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(idx).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(index, count)` pairs — the sparse wire
    /// form used by the JSON exporter.
    pub fn sparse(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Rebuild from sparse `(index, count)` pairs plus the scalar
    /// fields. Indices out of range are rejected.
    pub fn from_sparse(
        pairs: &[(usize, u64)],
        count: u64,
        sum: u64,
        max: u64,
    ) -> Result<HistogramSnapshot, String> {
        let mut buckets = [0u64; HIST_BUCKETS];
        for &(idx, c) in pairs {
            if idx >= HIST_BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            buckets[idx] += c;
        }
        Ok(HistogramSnapshot {
            buckets,
            count,
            sum,
            max,
        })
    }

    /// Internal consistency: bucket counts must add up to `count`.
    pub fn well_formed(&self) -> bool {
        self.buckets.iter().sum::<u64>() == self.count
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p95", &self.quantile(0.95))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_range() {
        // Every bucket's bounds invert back to its own index, and
        // consecutive buckets are contiguous.
        for idx in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(bucket_index(lo), idx, "low bound of bucket {idx}");
            assert_eq!(bucket_index(hi), idx, "high bound of bucket {idx}");
            if idx + 1 < HIST_BUCKETS {
                assert_eq!(bucket_bounds(idx + 1).0, hi + 1);
            }
        }
        assert_eq!(bucket_bounds(HIST_BUCKETS - 1).1, u64::MAX);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 1_000, 5_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.well_formed());
        // p100-ish never exceeds max; every quantile is within 25 % above
        // the true order statistic.
        assert!(s.quantile(1.0) <= s.max);
        let p50 = s.quantile(0.5);
        assert!((300..=375).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn merge_and_diff_are_inverse_ish() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v * 7);
            b.record(v * 13);
        }
        let sa = a.snapshot();
        let sb = b.snapshot();
        let merged = sa.merge(&sb);
        assert_eq!(merged.count, 200);
        assert!(merged.well_formed());
        let back = merged.diff(&sb);
        assert_eq!(back.buckets, sa.buckets);
        assert_eq!(back.count, sa.count);
        assert_eq!(back.sum, sa.sum);
    }

    #[test]
    fn sparse_roundtrip() {
        let h = Histogram::new();
        for v in [1u64, 1, 2, 900, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let rebuilt = HistogramSnapshot::from_sparse(&s.sparse(), s.count, s.sum, s.max).unwrap();
        assert_eq!(rebuilt, s);
        assert!(HistogramSnapshot::from_sparse(&[(9999, 1)], 1, 1, 1).is_err());
    }

    #[test]
    fn degenerate_quantiles_return_the_sentinel() {
        // Empty snapshot: no order statistic exists at any q.
        let empty = HistogramSnapshot::empty();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(empty.quantile(q), QUANTILE_SENTINEL);
        }
        // Single multi-value bucket: 1000 lands in a bucket spanning
        // 896..=1023, so no point inside it is resolvable.
        let h = Histogram::new();
        for _ in 0..3 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.sparse().len(), 1);
        assert_eq!(s.quantile(0.5), QUANTILE_SENTINEL);
        assert_eq!(s.quantile(0.99), QUANTILE_SENTINEL);
        // Single unit bucket (values below 16) is exact, not bogus.
        let unit = Histogram::new();
        for _ in 0..3 {
            unit.record(5);
        }
        assert_eq!(unit.snapshot().quantile(0.95), 5);
        // A second bucket restores normal rank-based resolution.
        h.record(5);
        let s2 = h.snapshot();
        assert_ne!(s2.quantile(0.99), QUANTILE_SENTINEL);
        assert!(s2.quantile(0.99) <= s2.max);
        // The sentinel itself must survive the f64 JSON wire format.
        assert_eq!((QUANTILE_SENTINEL as f64) as u64, QUANTILE_SENTINEL);
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = Histogram::new();
        h.record(5);
        h.reset();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.max, 0);
        assert_eq!(s, HistogramSnapshot::empty());
    }
}
