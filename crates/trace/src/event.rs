//! The structured trace event: a fixed-size, plain-data record small
//! enough to publish through a lock-free ring slot.
//!
//! Event kinds reuse the [`feral_hooks::Site`] vocabulary wherever a
//! live event corresponds to an instrumented yield point, so a flight
//! recorder dump and a `feral-sim` schedule trace name the same
//! operations the same way (`begin`, `scan`, `commit`, ...).

use feral_hooks::Site;

/// Phases of the save/request pipeline timed by the tracing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One appserver request, queue-to-response (worker service time).
    Request,
    /// One whole ORM `save` (validate + write + commit).
    Save,
    /// The validation pass inside a save (the feral `SELECT` probes).
    Validate,
    /// The write pass inside a save (buffering inserts/updates).
    Write,
    /// Engine-level `Transaction::commit` (validation + install).
    Commit,
}

/// All timed phases, in code order.
pub const PHASES: [Phase; 5] = [
    Phase::Request,
    Phase::Save,
    Phase::Validate,
    Phase::Write,
    Phase::Commit,
];

impl Phase {
    /// Stable numeric code (ring-slot encoding, report keys).
    pub fn code(self) -> u64 {
        match self {
            Phase::Request => 0,
            Phase::Save => 1,
            Phase::Validate => 2,
            Phase::Write => 3,
            Phase::Commit => 4,
        }
    }

    /// Decode a [`Phase::code`].
    pub fn from_code(code: u64) -> Option<Phase> {
        PHASES.get(code as usize).copied()
    }

    /// Stable snake-case name used in reports and metric names.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Request => "request",
            Phase::Save => "save",
            Phase::Validate => "validate",
            Phase::Write => "write",
            Phase::Commit => "commit",
        }
    }
}

/// What a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instrumented yield-point site was reached (`a`/`b` free-form,
    /// usually a table-name hash).
    Site(Site),
    /// A transaction rolled back (`a` = abort-cause code, 0 = unknown).
    Abort,
    /// A feral validation probe (`SELECT ... LIMIT 1`): `a` = key hash,
    /// `b` = table hash.
    UniqueProbe,
    /// The post-validation write of a save: `a` = key hash of the
    /// uniqueness-validated value, `b` = table hash.
    SaveWrite,
    /// A feral cascading destroy rooted at `a` = parent row id,
    /// `b` = parent-table hash.
    DestroyCascade,
    /// A timed phase finished: `a` = [`Phase::code`], `b` = nanoseconds.
    PhaseEnd,
    /// An anomaly oracle fired: `a` = anomaly code, `b` = key hash.
    Anomaly,
    /// A workload driver generated an operation: `a` = op code,
    /// `b` = key.
    WorkloadOp,
}

const SITE_ORDER: [Site; 11] = [
    Site::WorkerStart,
    Site::TxnBegin,
    Site::TxnScan,
    Site::TxnSelectForUpdate,
    Site::TxnWrite,
    Site::TxnCommit,
    Site::OrmValidateWriteGap,
    Site::ServerDispatch,
    Site::ServerHandle,
    Site::CommitShard,
    Site::WalFlush,
];

impl EventKind {
    /// Stable numeric code (ring-slot encoding). Site events occupy
    /// 0..=10 in [`Site`] declaration order; other kinds start at 16.
    pub fn code(self) -> u64 {
        match self {
            EventKind::Site(site) => SITE_ORDER
                .iter()
                .position(|s| *s == site)
                .expect("every Site variant is in SITE_ORDER")
                as u64,
            EventKind::Abort => 16,
            EventKind::UniqueProbe => 17,
            EventKind::SaveWrite => 18,
            EventKind::DestroyCascade => 19,
            EventKind::PhaseEnd => 20,
            EventKind::Anomaly => 21,
            EventKind::WorkloadOp => 22,
        }
    }

    /// Decode a [`EventKind::code`]; `None` for unknown codes (e.g. a
    /// torn slot that slipped through, or a future version's kind).
    pub fn from_code(code: u64) -> Option<EventKind> {
        match code {
            0..=10 => Some(EventKind::Site(SITE_ORDER[code as usize])),
            16 => Some(EventKind::Abort),
            17 => Some(EventKind::UniqueProbe),
            18 => Some(EventKind::SaveWrite),
            19 => Some(EventKind::DestroyCascade),
            20 => Some(EventKind::PhaseEnd),
            21 => Some(EventKind::Anomaly),
            22 => Some(EventKind::WorkloadOp),
            _ => None,
        }
    }

    /// Short stable name: the [`Site::name`] for site events, snake-case
    /// otherwise. Appears in flight-recorder dumps and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Site(site) => site.name(),
            EventKind::Abort => "abort",
            EventKind::UniqueProbe => "unique-probe",
            EventKind::SaveWrite => "save-write",
            EventKind::DestroyCascade => "destroy-cascade",
            EventKind::PhaseEnd => "phase-end",
            EventKind::Anomaly => "anomaly",
            EventKind::WorkloadOp => "workload-op",
        }
    }
}

/// One recorded event. Plain data: every field fits one ring-slot word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (total order across all threads).
    pub seq: u64,
    /// Nanoseconds since tracing started (monotonic).
    pub ts_nanos: u64,
    /// Recording thread's trace id (assigned at first event).
    pub worker: u64,
    /// Engine transaction id, 0 when not in a transaction.
    pub txn: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`] docs).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`] docs).
    pub b: u64,
}

impl Event {
    /// Encode into ring-slot payload words.
    pub(crate) fn encode(&self) -> [u64; 7] {
        [
            self.seq,
            self.ts_nanos,
            self.worker,
            self.txn,
            self.kind.code(),
            self.a,
            self.b,
        ]
    }

    /// Decode ring-slot payload words; `None` if the kind code is
    /// unknown.
    pub(crate) fn decode(words: [u64; 7]) -> Option<Event> {
        Some(Event {
            seq: words[0],
            ts_nanos: words[1],
            worker: words[2],
            txn: words[3],
            kind: EventKind::from_code(words[4])?,
            a: words[5],
            b: words[6],
        })
    }

    /// One-line rendering for flight-recorder dumps:
    /// `seq=12 t=3456ns w2 txn=7 commit a=0 b=0`.
    pub fn render(&self) -> String {
        format!(
            "seq={} t={}ns w{} txn={} {} a={:#x} b={:#x}",
            self.seq,
            self.ts_nanos,
            self.worker,
            self.txn,
            self.kind.name(),
            self.a,
            self.b
        )
    }
}

/// FNV-1a 64-bit hash — the tracing layer's key/table fingerprint.
/// Stable across runs and platforms (reports and provenance matching
/// rely on that).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        let kinds = [
            EventKind::Site(Site::TxnBegin),
            EventKind::Site(Site::ServerHandle),
            EventKind::Site(Site::CommitShard),
            EventKind::Site(Site::WalFlush),
            EventKind::Abort,
            EventKind::UniqueProbe,
            EventKind::SaveWrite,
            EventKind::DestroyCascade,
            EventKind::PhaseEnd,
            EventKind::Anomaly,
            EventKind::WorkloadOp,
        ];
        for k in kinds {
            assert_eq!(EventKind::from_code(k.code()), Some(k));
        }
        assert_eq!(EventKind::from_code(11), None);
        assert_eq!(EventKind::from_code(999), None);
    }

    #[test]
    fn site_events_share_the_sim_vocabulary() {
        assert_eq!(EventKind::Site(Site::TxnCommit).name(), "commit");
        assert_eq!(EventKind::Site(Site::TxnScan).name(), "scan");
        assert_eq!(
            EventKind::Site(Site::OrmValidateWriteGap).name(),
            "validate-write-gap"
        );
    }

    #[test]
    fn event_roundtrips_through_slot_words() {
        let e = Event {
            seq: 42,
            ts_nanos: 9001,
            worker: 3,
            txn: 17,
            kind: EventKind::UniqueProbe,
            a: fnv64(b"key-1"),
            b: fnv64(b"key_values"),
        };
        assert_eq!(Event::decode(e.encode()), Some(e));
    }

    #[test]
    fn phase_codes_roundtrip() {
        for p in PHASES {
            assert_eq!(Phase::from_code(p.code()), Some(p));
        }
        assert_eq!(Phase::from_code(5), None);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_eq!(fnv64(b"key_values"), fnv64(b"key_values"));
    }
}
