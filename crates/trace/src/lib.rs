//! # feral-trace
//!
//! Low-overhead observability for the feral stack: structured
//! per-transaction event spans recorded into per-thread lock-free ring
//! buffers, log-scale latency histograms around request dispatch and
//! every save phase, a global flight recorder that can dump the last N
//! events when an anomaly oracle fires, and anomaly provenance that
//! names the racing transaction pair behind a duplicate key or
//! orphaned row.
//!
//! Tracing is **off by default**. Every hook threaded through
//! `feraldb`, `feral-orm`, `feral-server`, and `feral-workloads` is a
//! branch-on-disabled no-op: one relaxed atomic load and a predictable
//! branch, so tier-1 timing and existing criterion benches are
//! unaffected (see the determinism test in `feraldb`).
//!
//! ```
//! use feral_trace as trace;
//!
//! trace::set_enabled(true);
//! trace::record(trace::EventKind::UniqueProbe, 7, trace::fnv64(b"key-1"), 0);
//! let span = trace::start_phase(trace::Phase::Validate);
//! // ... do the validation ...
//! span.finish(7);
//! let tail = trace::flight_recorder(16);
//! assert!(!tail.is_empty());
//! trace::set_enabled(false);
//! ```

pub mod event;
pub mod hist;
pub mod json;
pub mod provenance;
pub mod report;
pub mod ring;

pub use event::{fnv64, Event, EventKind, Phase, PHASES};
pub use hist::{Histogram, HistogramSnapshot};
pub use provenance::{ProvenanceRecord, RacingTxn, Witness};
pub use report::{CellReport, RunReport};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Master switch. Off by default; every hook below checks it first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Global event sequence (total order across threads).
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Events with `seq` below this floor are invisible to the flight
/// recorder — [`reset`] moves it forward instead of clearing rings.
static FLOOR: AtomicU64 = AtomicU64::new(0);

/// Per-phase global latency histograms, indexed by [`Phase::code`].
static PHASE_HISTS: [Histogram; 5] = [
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
    Histogram::new(),
];

/// Whether tracing is currently enabled (relaxed load — this is the
/// hot-path gate).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Nanoseconds since the tracing clock started (first call).
pub fn now_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Record one event on the calling thread's ring. No-op when tracing
/// is disabled.
#[inline]
pub fn record(kind: EventKind, txn: u64, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    record_always(kind, txn, a, b);
}

fn record_always(kind: EventKind, txn: u64, a: u64, b: u64) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let ts_nanos = now_nanos();
    ring::with_ring(|ring| {
        ring.push(&Event {
            seq,
            ts_nanos,
            worker: ring.worker(),
            txn,
            kind,
            a,
            b,
        });
    });
}

/// Dump the last `limit` events (all threads merged, `seq`-ordered)
/// since the most recent [`reset`]. Safe to call while writers are
/// active — slots caught mid-write are skipped.
pub fn flight_recorder(limit: usize) -> Vec<Event> {
    ring::merged_tail(FLOOR.load(Ordering::Acquire), limit)
}

/// Start a new trace window: the flight recorder forgets prior events
/// and the global phase histograms are zeroed. (Rings are not cleared;
/// a sequence floor hides old events, so concurrent writers are never
/// raced.)
pub fn reset() {
    FLOOR.store(SEQ.load(Ordering::Relaxed), Ordering::Release);
    for h in &PHASE_HISTS {
        h.reset();
    }
}

/// The global latency histogram for one phase.
pub fn phase_histogram(phase: Phase) -> &'static Histogram {
    &PHASE_HISTS[phase.code() as usize]
}

/// Snapshot all five phase histograms, in [`PHASES`] order.
pub fn phase_snapshots() -> Vec<(Phase, HistogramSnapshot)> {
    PHASES
        .iter()
        .map(|&p| (p, phase_histogram(p).snapshot()))
        .collect()
}

/// An in-flight timed phase. Obtained from [`start_phase`]; call
/// [`PhaseSpan::finish`] when the phase completes. When tracing is
/// disabled the span is inert (no clock read, nothing recorded).
#[must_use = "a phase span measures nothing unless finished"]
pub struct PhaseSpan {
    phase: Phase,
    start: Option<Instant>,
}

impl PhaseSpan {
    /// End the phase: records the elapsed nanoseconds into the global
    /// phase histogram and emits a [`EventKind::PhaseEnd`] event tagged
    /// with `txn`. Returns the elapsed nanoseconds (0 when disabled).
    pub fn finish(self, txn: u64) -> u64 {
        let Some(start) = self.start else { return 0 };
        let nanos = start.elapsed().as_nanos() as u64;
        // Re-check: tracing may have been toggled off mid-span; the
        // histogram write is still fine, but stay consistent and drop it.
        if enabled() {
            phase_histogram(self.phase).record(nanos);
            record_always(EventKind::PhaseEnd, txn, self.phase.code(), nanos);
        }
        nanos
    }
}

/// Begin timing a phase. One branch + one clock read when enabled;
/// pure branch when disabled.
#[inline]
pub fn start_phase(phase: Phase) -> PhaseSpan {
    PhaseSpan {
        phase,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests here share the global ENABLED/SEQ state; the integration
    // suite (tests/trace.rs) covers concurrency. This module only
    // checks the disabled path stays inert.
    #[test]
    fn disabled_hooks_are_inert() {
        assert!(!enabled());
        let before = SEQ.load(Ordering::Relaxed);
        record(EventKind::Abort, 1, 2, 3);
        let span = start_phase(Phase::Commit);
        assert_eq!(span.finish(1), 0);
        assert_eq!(SEQ.load(Ordering::Relaxed), before);
        assert!(phase_histogram(Phase::Commit).snapshot().is_empty());
    }
}
