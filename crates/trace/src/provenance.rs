//! Anomaly provenance: turn a flight-recorder dump into a named racing
//! transaction pair, plus a replayable `feral-sim` witness.
//!
//! The feral race this stack studies always has the same shape: two
//! transactions both run the validation probe (`SELECT … LIMIT 1`)
//! *before* either has written, so both probes pass and both writes
//! land. Given the recorded [`EventKind::UniqueProbe`] and
//! [`EventKind::SaveWrite`] events for one key, provenance analysis
//! finds a pair whose probe→write windows overlap and reports exactly
//! which worker/transaction pair raced and how wide the window was.
//!
//! This crate cannot depend on `feral-sim` (the engine depends on this
//! crate), so the replayable witness is carried as pre-rendered
//! strings; `feral-bench` fills it in from a real
//! `feral_sim::scenarios::ScenarioSpec`.

use crate::event::{Event, EventKind};

/// One side of a racing pair: where its probe and its write landed in
/// the global event order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RacingTxn {
    /// Trace worker id of the recording thread.
    pub worker: u64,
    /// Engine transaction id.
    pub txn: u64,
    /// Global sequence number of the validation probe.
    pub probe_seq: u64,
    /// Timestamp (trace nanos) of the validation probe.
    pub probe_ts: u64,
    /// Global sequence number of the post-validation write.
    pub write_seq: u64,
    /// Timestamp (trace nanos) of the post-validation write.
    pub write_ts: u64,
}

/// A replayable `feral-sim` witness, pre-rendered to strings (this
/// crate sits below `feral-sim` in the dependency order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Scenario label, e.g. `uniqueness/read-committed/feral/2w`.
    pub scenario: String,
    /// Isolation level flag value.
    pub isolation: String,
    /// Guard (`feral` or `database`).
    pub guard: String,
    /// Worker count in the scenario.
    pub workers: usize,
    /// Full `feral-sim replay …` command line reproducing the anomaly.
    pub replay: String,
    /// The oracle's violation message from the simulated run.
    pub message: String,
}

/// One explained anomaly: what happened, to which key, which pair of
/// transactions raced, and (once attached) a simulator witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceRecord {
    /// Anomaly class: `duplicate-key` or `orphaned-row`.
    pub anomaly: String,
    /// Table the anomaly materialised in.
    pub table: String,
    /// The duplicated key value (or orphaned foreign key).
    pub key: String,
    /// `fnv64` of `key` — matches the event payloads.
    pub key_hash: u64,
    /// The racing transactions, write order. At least two.
    pub racing: Vec<RacingTxn>,
    /// Width of the race window: first write minus second probe
    /// (the span in which both validations had already passed).
    pub overlap_nanos: u64,
    /// Replayable simulator witness (attached by the bench layer).
    pub witness: Option<Witness>,
    /// Rendered flight-recorder tail captured when the oracle fired.
    pub flight: Vec<String>,
}

#[derive(Debug, Clone, Copy)]
struct Span {
    worker: u64,
    txn: u64,
    probe: Option<(u64, u64)>, // (seq, ts)
    write: Option<(u64, u64)>,
}

fn collect_spans(
    events: &[Event],
    key_hash: u64,
    table_hash: u64,
    probe_kind: EventKind,
    write_kind: EventKind,
) -> Vec<Span> {
    let mut spans: Vec<Span> = Vec::new();
    for e in events {
        if e.a != key_hash || e.b != table_hash {
            continue;
        }
        let is_probe = e.kind == probe_kind;
        let is_write = e.kind == write_kind;
        if !is_probe && !is_write {
            continue;
        }
        let span = match spans
            .iter_mut()
            .find(|s| s.worker == e.worker && s.txn == e.txn)
        {
            Some(s) => s,
            None => {
                spans.push(Span {
                    worker: e.worker,
                    txn: e.txn,
                    probe: None,
                    write: None,
                });
                spans.last_mut().unwrap()
            }
        };
        if is_probe && span.probe.is_none() {
            span.probe = Some((e.seq, e.ts_nanos));
        }
        if is_write && span.write.is_none() {
            span.write = Some((e.seq, e.ts_nanos));
        }
    }
    spans
}

/// Walk a flight-recorder dump and explain one anomaly on `key` in
/// `table`: find two transactions whose probe→write windows overlap
/// (the second probed before the first wrote). Returns `None` when the
/// recorded tail no longer contains both sides of the race.
///
/// `probe_kind`/`write_kind` select the race shape:
/// [`EventKind::UniqueProbe`] vs [`EventKind::SaveWrite`] for duplicate
/// keys, [`EventKind::UniqueProbe`] vs [`EventKind::DestroyCascade`]
/// for orphaned rows (presence probe racing a cascading delete).
pub fn explain_race(
    events: &[Event],
    anomaly: &str,
    table: &str,
    key: &str,
    probe_kind: EventKind,
    write_kind: EventKind,
) -> Option<ProvenanceRecord> {
    let key_hash = crate::event::fnv64(key.as_bytes());
    let table_hash = crate::event::fnv64(table.as_bytes());
    let mut complete: Vec<Span> =
        collect_spans(events, key_hash, table_hash, probe_kind, write_kind)
            .into_iter()
            .filter(|s| s.probe.is_some() && s.write.is_some())
            .collect();
    complete.sort_by_key(|s| s.write.unwrap().0);

    // Find the first pair (i < j in write order) where j's probe ran
    // before i's write — i.e. j validated against a state that did not
    // yet contain i's row.
    for i in 0..complete.len() {
        for j in (i + 1)..complete.len() {
            let (i_write_seq, i_write_ts) = complete[i].write.unwrap();
            let (j_probe_seq, j_probe_ts) = complete[j].probe.unwrap();
            if j_probe_seq < i_write_seq {
                let to_racing = |s: &Span| RacingTxn {
                    worker: s.worker,
                    txn: s.txn,
                    probe_seq: s.probe.unwrap().0,
                    probe_ts: s.probe.unwrap().1,
                    write_seq: s.write.unwrap().0,
                    write_ts: s.write.unwrap().1,
                };
                return Some(ProvenanceRecord {
                    anomaly: anomaly.to_string(),
                    table: table.to_string(),
                    key: key.to_string(),
                    key_hash,
                    racing: vec![to_racing(&complete[i]), to_racing(&complete[j])],
                    overlap_nanos: i_write_ts.saturating_sub(j_probe_ts),
                    witness: None,
                    flight: Vec::new(),
                });
            }
        }
    }
    None
}

/// [`explain_race`] specialised to duplicate keys: two saves of the
/// same uniqueness-validated value whose probe→write windows overlap.
pub fn explain_duplicate(events: &[Event], table: &str, key: &str) -> Option<ProvenanceRecord> {
    explain_race(
        events,
        "duplicate-key",
        table,
        key,
        EventKind::UniqueProbe,
        EventKind::SaveWrite,
    )
}

/// [`explain_race`] specialised to orphaned rows: a presence probe
/// racing a cascading destroy of the parent row.
pub fn explain_orphan(events: &[Event], table: &str, key: &str) -> Option<ProvenanceRecord> {
    explain_race(
        events,
        "orphaned-row",
        table,
        key,
        EventKind::UniqueProbe,
        EventKind::DestroyCascade,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::fnv64;

    fn event(seq: u64, worker: u64, txn: u64, kind: EventKind, key: &str, table: &str) -> Event {
        Event {
            seq,
            ts_nanos: seq * 100,
            worker,
            txn,
            kind,
            a: fnv64(key.as_bytes()),
            b: fnv64(table.as_bytes()),
        }
    }

    #[test]
    fn names_the_overlapping_pair() {
        // w1/t1 probes, w2/t2 probes, t1 writes, t2 writes: classic
        // feral duplicate. Both probes precede the first write.
        let events = vec![
            event(1, 1, 1, EventKind::UniqueProbe, "k", "t"),
            event(2, 2, 2, EventKind::UniqueProbe, "k", "t"),
            event(3, 1, 1, EventKind::SaveWrite, "k", "t"),
            event(4, 2, 2, EventKind::SaveWrite, "k", "t"),
        ];
        let rec = explain_duplicate(&events, "t", "k").expect("race found");
        assert_eq!(rec.anomaly, "duplicate-key");
        assert_eq!(rec.racing.len(), 2);
        assert_eq!(rec.racing[0].txn, 1);
        assert_eq!(rec.racing[1].txn, 2);
        // overlap: t1's write (ts 300) minus t2's probe (ts 200).
        assert_eq!(rec.overlap_nanos, 100);
    }

    #[test]
    fn serial_saves_are_not_a_race() {
        // t1 probes and writes, then t2 probes and writes: no overlap.
        let events = vec![
            event(1, 1, 1, EventKind::UniqueProbe, "k", "t"),
            event(2, 1, 1, EventKind::SaveWrite, "k", "t"),
            event(3, 2, 2, EventKind::UniqueProbe, "k", "t"),
            event(4, 2, 2, EventKind::SaveWrite, "k", "t"),
        ];
        assert!(explain_duplicate(&events, "t", "k").is_none());
    }

    #[test]
    fn other_keys_do_not_confuse_the_analysis() {
        let events = vec![
            event(1, 1, 1, EventKind::UniqueProbe, "k", "t"),
            event(2, 2, 2, EventKind::UniqueProbe, "other", "t"),
            event(3, 2, 2, EventKind::SaveWrite, "other", "t"),
            event(4, 1, 1, EventKind::SaveWrite, "k", "t"),
        ];
        assert!(explain_duplicate(&events, "t", "k").is_none());
    }

    #[test]
    fn orphan_shape_uses_destroy_cascade() {
        // Child-inserter probes the parent, destroyer cascades before
        // the probe's transaction writes — the probe raced the destroy.
        let events = vec![
            event(1, 2, 9, EventKind::UniqueProbe, "42", "users"),
            event(2, 1, 8, EventKind::DestroyCascade, "42", "users"),
            event(3, 2, 9, EventKind::DestroyCascade, "42", "users"),
        ];
        // Need both a probe and a "write" from each side for a pair;
        // the destroyer has no probe, so this tail alone is not enough.
        assert!(explain_orphan(&events, "users", "42").is_none());
        // With both sides complete it is.
        let events = vec![
            event(1, 1, 8, EventKind::UniqueProbe, "42", "users"),
            event(2, 2, 9, EventKind::UniqueProbe, "42", "users"),
            event(3, 1, 8, EventKind::DestroyCascade, "42", "users"),
            event(4, 2, 9, EventKind::DestroyCascade, "42", "users"),
        ];
        assert!(explain_orphan(&events, "users", "42").is_some());
    }
}
