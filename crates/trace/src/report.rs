//! Run-report exporters: the machine-readable artifact every
//! experiment run leaves behind.
//!
//! A [`RunReport`] is a list of experiment cells, each carrying its
//! workload shape, anomaly counts, a windowed engine-stats diff,
//! per-phase latency histogram summaries, and any anomaly provenance
//! records. Two wire formats:
//!
//! - **JSON** ([`RunReport::to_json`]): written as `BENCH_table1.json`
//!   by the table1 bench; [`validate_report`] re-parses and
//!   schema-checks a document (used by the tier-1 smoke gate and the
//!   golden-report test).
//! - **Prometheus text** ([`RunReport::to_prometheus`]): counters and
//!   latency summaries, one labelled series per cell.
//!
//! 64-bit hashes are emitted as hex *strings* — the JSON number path
//! is `f64` and would silently lose precision above 2^53.

use crate::hist::HistogramSnapshot;
use crate::json::{self, Json};
use crate::provenance::ProvenanceRecord;

/// Report schema version (bump on breaking JSON shape changes).
pub const REPORT_VERSION: u64 = 1;

/// One experiment cell: a workload run under one configuration.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Human label, e.g. `read-committed/feral`.
    pub label: String,
    /// Isolation level the cell ran under.
    pub isolation: String,
    /// Integrity enforcement (`feral`, `database`, `none`).
    pub enforcement: String,
    /// Worker threads.
    pub workers: usize,
    /// Rounds of the stress loop.
    pub rounds: usize,
    /// Concurrent same-key attempts per round.
    pub concurrent: usize,
    /// Duplicate keys materialised (anomaly count).
    pub duplicates: u64,
    /// Rows present at the end.
    pub rows: u64,
    /// Requests rejected by validation/constraints.
    pub rejected: u64,
    /// Windowed engine-stats diff, `(counter name, delta)` pairs.
    pub stats: Vec<(String, u64)>,
    /// Per-phase latency histograms, `(phase name, snapshot)` pairs.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Explained anomalies with replayable witnesses.
    pub provenance: Vec<ProvenanceRecord>,
}

/// A full run report: metadata plus one entry per cell.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Report name, e.g. `table1`.
    pub report: String,
    /// Whether this was a `--smoke` run.
    pub smoke: bool,
    /// Workload seed.
    pub seed: u64,
    /// The cells.
    pub cells: Vec<CellReport>,
}

fn push_kv_str(out: &mut String, indent: &str, key: &str, value: &str, comma: bool) {
    out.push_str(&format!(
        "{indent}\"{}\": \"{}\"{}\n",
        json::escape(key),
        json::escape(value),
        if comma { "," } else { "" }
    ));
}

fn push_kv_u64(out: &mut String, indent: &str, key: &str, value: u64, comma: bool) {
    out.push_str(&format!(
        "{indent}\"{}\": {value}{}\n",
        json::escape(key),
        if comma { "," } else { "" }
    ));
}

fn hist_json(s: &HistogramSnapshot, indent: &str) -> String {
    let buckets: Vec<String> = s
        .sparse()
        .iter()
        .map(|(i, c)| format!("[{i}, {c}]"))
        .collect();
    format!(
        "{{\n{indent}  \"count\": {},\n{indent}  \"sum\": {},\n{indent}  \"max\": {},\n{indent}  \"mean\": {:.3},\n{indent}  \"p50\": {},\n{indent}  \"p95\": {},\n{indent}  \"p99\": {},\n{indent}  \"buckets\": [{}]\n{indent}}}",
        s.count,
        s.sum,
        s.max,
        s.mean(),
        s.quantile(0.50),
        s.quantile(0.95),
        s.quantile(0.99),
        buckets.join(", ")
    )
}

fn provenance_json(p: &ProvenanceRecord, indent: &str) -> String {
    let mut out = String::from("{\n");
    let inner = format!("{indent}  ");
    push_kv_str(&mut out, &inner, "anomaly", &p.anomaly, true);
    push_kv_str(&mut out, &inner, "table", &p.table, true);
    push_kv_str(&mut out, &inner, "key", &p.key, true);
    push_kv_str(
        &mut out,
        &inner,
        "key_hash",
        &format!("{:#018x}", p.key_hash),
        true,
    );
    push_kv_u64(&mut out, &inner, "overlap_nanos", p.overlap_nanos, true);
    let racing: Vec<String> = p
        .racing
        .iter()
        .map(|r| {
            format!(
                "{{\"worker\": {}, \"txn\": {}, \"probe_seq\": {}, \"probe_ts\": {}, \"write_seq\": {}, \"write_ts\": {}}}",
                r.worker, r.txn, r.probe_seq, r.probe_ts, r.write_seq, r.write_ts
            )
        })
        .collect();
    out.push_str(&format!("{inner}\"racing\": [{}],\n", racing.join(", ")));
    match &p.witness {
        Some(w) => {
            out.push_str(&format!("{inner}\"witness\": {{\n"));
            let winner = format!("{inner}  ");
            push_kv_str(&mut out, &winner, "scenario", &w.scenario, true);
            push_kv_str(&mut out, &winner, "isolation", &w.isolation, true);
            push_kv_str(&mut out, &winner, "guard", &w.guard, true);
            push_kv_u64(&mut out, &winner, "workers", w.workers as u64, true);
            push_kv_str(&mut out, &winner, "replay", &w.replay, true);
            push_kv_str(&mut out, &winner, "message", &w.message, false);
            out.push_str(&format!("{inner}}},\n"));
        }
        None => out.push_str(&format!("{inner}\"witness\": null,\n")),
    }
    let flight: Vec<String> = p
        .flight
        .iter()
        .map(|line| format!("\"{}\"", json::escape(line)))
        .collect();
    out.push_str(&format!("{inner}\"flight\": [{}]\n", flight.join(", ")));
    out.push_str(&format!("{indent}}}"));
    out
}

impl RunReport {
    /// Serialise to the JSON wire format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        push_kv_str(&mut out, "  ", "report", &self.report, true);
        push_kv_u64(&mut out, "  ", "version", REPORT_VERSION, true);
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        push_kv_u64(&mut out, "  ", "seed", self.seed, true);
        out.push_str("  \"cells\": [\n");
        for (ci, cell) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            push_kv_str(&mut out, "      ", "label", &cell.label, true);
            push_kv_str(&mut out, "      ", "isolation", &cell.isolation, true);
            push_kv_str(&mut out, "      ", "enforcement", &cell.enforcement, true);
            push_kv_u64(&mut out, "      ", "workers", cell.workers as u64, true);
            push_kv_u64(&mut out, "      ", "rounds", cell.rounds as u64, true);
            push_kv_u64(
                &mut out,
                "      ",
                "concurrent",
                cell.concurrent as u64,
                true,
            );
            push_kv_u64(&mut out, "      ", "duplicates", cell.duplicates, true);
            push_kv_u64(&mut out, "      ", "rows", cell.rows, true);
            push_kv_u64(&mut out, "      ", "rejected", cell.rejected, true);
            out.push_str("      \"stats\": {\n");
            for (si, (name, value)) in cell.stats.iter().enumerate() {
                push_kv_u64(
                    &mut out,
                    "        ",
                    name,
                    *value,
                    si + 1 < cell.stats.len(),
                );
            }
            out.push_str("      },\n");
            out.push_str("      \"histograms\": {\n");
            for (hi, (name, snap)) in cell.histograms.iter().enumerate() {
                out.push_str(&format!(
                    "        \"{}\": {}{}\n",
                    json::escape(name),
                    hist_json(snap, "        "),
                    if hi + 1 < cell.histograms.len() {
                        ","
                    } else {
                        ""
                    }
                ));
            }
            out.push_str("      },\n");
            let provenance: Vec<String> = cell
                .provenance
                .iter()
                .map(|p| provenance_json(p, "        "))
                .collect();
            if provenance.is_empty() {
                out.push_str("      \"provenance\": []\n");
            } else {
                out.push_str(&format!(
                    "      \"provenance\": [\n        {}\n      ]\n",
                    provenance.join(",\n        ")
                ));
            }
            out.push_str(&format!(
                "    }}{}\n",
                if ci + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serialise to Prometheus text exposition format: anomaly and
    /// engine counters plus latency summaries, one labelled series per
    /// cell. Every metric carries `# HELP`/`# TYPE` headers and label
    /// values are escaped per the exposition-format rules, so the
    /// output survives a strict scrape parser.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP feral_duplicates_total Duplicate rows admitted past a feral uniqueness check.\n");
        out.push_str("# TYPE feral_duplicates_total counter\n");
        for c in &self.cells {
            out.push_str(&format!(
                "feral_duplicates_total{{cell=\"{}\"}} {}\n",
                escape_label(&c.label),
                c.duplicates
            ));
        }
        out.push_str(
            "# HELP feral_rejected_total Writes rejected by a validation or constraint.\n",
        );
        out.push_str("# TYPE feral_rejected_total counter\n");
        for c in &self.cells {
            out.push_str(&format!(
                "feral_rejected_total{{cell=\"{}\"}} {}\n",
                escape_label(&c.label),
                c.rejected
            ));
        }
        out.push_str("# HELP feral_engine_events_total Engine statistics counters over the cell's measurement window.\n");
        out.push_str("# TYPE feral_engine_events_total counter\n");
        for c in &self.cells {
            for (name, value) in &c.stats {
                out.push_str(&format!(
                    "feral_engine_events_total{{cell=\"{}\",counter=\"{}\"}} {}\n",
                    escape_label(&c.label),
                    escape_label(name),
                    value
                ));
            }
        }
        out.push_str(
            "# HELP feral_phase_latency_nanos Per-phase latency distribution in nanoseconds.\n",
        );
        out.push_str("# TYPE feral_phase_latency_nanos summary\n");
        for c in &self.cells {
            for (phase, snap) in &c.histograms {
                for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "feral_phase_latency_nanos{{cell=\"{}\",phase=\"{}\",quantile=\"{}\"}} {}\n",
                        escape_label(&c.label),
                        escape_label(phase),
                        label,
                        snap.quantile(q)
                    ));
                }
                out.push_str(&format!(
                    "feral_phase_latency_nanos_sum{{cell=\"{}\",phase=\"{}\"}} {}\n",
                    escape_label(&c.label),
                    escape_label(phase),
                    snap.sum
                ));
                out.push_str(&format!(
                    "feral_phase_latency_nanos_count{{cell=\"{}\",phase=\"{}\"}} {}\n",
                    escape_label(&c.label),
                    escape_label(phase),
                    snap.count
                ));
            }
        }
        out
    }
}

/// Escape a Prometheus label value: backslash, double-quote, and
/// line-feed must be backslash-escaped per the text exposition format.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn require<'j>(obj: &'j Json, key: &str, ctx: &str) -> Result<&'j Json, String> {
    obj.get(key).ok_or(format!("{ctx}: missing key '{key}'"))
}

fn require_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    require(obj, key, ctx)?
        .as_u64()
        .ok_or(format!("{ctx}: '{key}' is not a non-negative integer"))
}

fn require_str<'j>(obj: &'j Json, key: &str, ctx: &str) -> Result<&'j str, String> {
    require(obj, key, ctx)?
        .as_str()
        .ok_or(format!("{ctx}: '{key}' is not a string"))
}

fn validate_histogram(h: &Json, ctx: &str) -> Result<(), String> {
    let count = require_u64(h, "count", ctx)?;
    let sum = require_u64(h, "sum", ctx)?;
    let max = require_u64(h, "max", ctx)?;
    let buckets = require(h, "buckets", ctx)?
        .as_arr()
        .ok_or(format!("{ctx}: 'buckets' is not an array"))?;
    let mut pairs = Vec::new();
    for b in buckets {
        let pair = b
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or(format!("{ctx}: bucket entry is not an [index, count] pair"))?;
        let idx = pair[0]
            .as_u64()
            .ok_or(format!("{ctx}: bucket index is not an integer"))?;
        let c = pair[1]
            .as_u64()
            .ok_or(format!("{ctx}: bucket count is not an integer"))?;
        pairs.push((idx as usize, c));
    }
    let snap = HistogramSnapshot::from_sparse(&pairs, count, sum, max)
        .map_err(|e| format!("{ctx}: {e}"))?;
    if !snap.well_formed() {
        return Err(format!(
            "{ctx}: bucket counts do not sum to 'count' ({count})"
        ));
    }
    let (p50, p95, p99) = (
        require_u64(h, "p50", ctx)?,
        require_u64(h, "p95", ctx)?,
        require_u64(h, "p99", ctx)?,
    );
    if !(p50 <= p95 && p95 <= p99 && p99 <= max.max(p99)) {
        return Err(format!(
            "{ctx}: quantiles not monotone (p50 {p50}, p95 {p95}, p99 {p99})"
        ));
    }
    for (q, claimed) in [(0.50, p50), (0.95, p95), (0.99, p99)] {
        let recomputed = snap.quantile(q);
        if recomputed != claimed {
            return Err(format!(
                "{ctx}: q{q} mismatch (claimed {claimed}, recomputed {recomputed})"
            ));
        }
    }
    Ok(())
}

fn validate_provenance(p: &Json, ctx: &str) -> Result<(), String> {
    for key in ["anomaly", "table", "key", "key_hash"] {
        require_str(p, key, ctx)?;
    }
    require_u64(p, "overlap_nanos", ctx)?;
    let racing = require(p, "racing", ctx)?
        .as_arr()
        .ok_or(format!("{ctx}: 'racing' is not an array"))?;
    if racing.len() < 2 {
        return Err(format!(
            "{ctx}: provenance names fewer than two racing txns"
        ));
    }
    for r in racing {
        for key in [
            "worker",
            "txn",
            "probe_seq",
            "probe_ts",
            "write_seq",
            "write_ts",
        ] {
            require_u64(r, key, ctx)?;
        }
    }
    let witness = require(p, "witness", ctx)?;
    if *witness != Json::Null {
        for key in ["scenario", "isolation", "guard", "replay", "message"] {
            require_str(witness, key, &format!("{ctx} witness"))?;
        }
        require_u64(witness, "workers", &format!("{ctx} witness"))?;
        if require_str(witness, "replay", ctx)?.is_empty() {
            return Err(format!("{ctx}: witness replay command is empty"));
        }
    }
    Ok(())
}

/// Parse and schema-check a serialised run report. Beyond structure,
/// this enforces the report's core integrity claims: every histogram
/// is internally consistent (bucket counts sum to `count`, quantiles
/// re-derivable and monotone) and every provenance record names at
/// least two racing transactions. Returns the parsed document.
pub fn validate_report(text: &str) -> Result<Json, String> {
    let doc = json::parse(text)?;
    require_str(&doc, "report", "report")?;
    let version = require_u64(&doc, "version", "report")?;
    if version != REPORT_VERSION {
        return Err(format!(
            "report: unsupported version {version} (expected {REPORT_VERSION})"
        ));
    }
    require(&doc, "smoke", "report")?;
    require_u64(&doc, "seed", "report")?;
    let cells = require(&doc, "cells", "report")?
        .as_arr()
        .ok_or("report: 'cells' is not an array")?;
    if cells.is_empty() {
        return Err("report: no cells".into());
    }
    for cell in cells {
        let label = require_str(cell, "label", "cell")?.to_string();
        let ctx = format!("cell '{label}'");
        for key in ["isolation", "enforcement"] {
            require_str(cell, key, &ctx)?;
        }
        for key in [
            "workers",
            "rounds",
            "concurrent",
            "duplicates",
            "rows",
            "rejected",
        ] {
            require_u64(cell, key, &ctx)?;
        }
        let stats = require(cell, "stats", &ctx)?;
        match stats {
            Json::Obj(pairs) if !pairs.is_empty() => {
                for (name, v) in pairs {
                    v.as_u64()
                        .ok_or(format!("{ctx}: stat '{name}' is not an integer"))?;
                }
            }
            _ => return Err(format!("{ctx}: 'stats' is not a non-empty object")),
        }
        let hists = require(cell, "histograms", &ctx)?;
        match hists {
            Json::Obj(pairs) => {
                for (name, h) in pairs {
                    validate_histogram(h, &format!("{ctx} histogram '{name}'"))?;
                }
            }
            _ => return Err(format!("{ctx}: 'histograms' is not an object")),
        }
        let provenance = require(cell, "provenance", &ctx)?
            .as_arr()
            .ok_or(format!("{ctx}: 'provenance' is not an array"))?;
        for p in provenance {
            validate_provenance(p, &format!("{ctx} provenance"))?;
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::provenance::{RacingTxn, Witness};

    fn sample_report() -> RunReport {
        let h = Histogram::new();
        for v in [120u64, 450, 900, 88_000] {
            h.record(v);
        }
        RunReport {
            report: "table1".into(),
            smoke: true,
            seed: 42,
            cells: vec![CellReport {
                label: "read-committed/feral".into(),
                isolation: "read-committed".into(),
                enforcement: "feral".into(),
                workers: 4,
                rounds: 10,
                concurrent: 8,
                duplicates: 3,
                rows: 13,
                rejected: 0,
                stats: vec![("commits".into(), 40), ("validation_probes".into(), 80)],
                histograms: vec![("request".into(), h.snapshot())],
                provenance: vec![ProvenanceRecord {
                    anomaly: "duplicate-key".into(),
                    table: "key_values".into(),
                    key: "key-1".into(),
                    key_hash: 0xdeadbeefcafef00d,
                    racing: vec![
                        RacingTxn {
                            worker: 1,
                            txn: 7,
                            probe_seq: 10,
                            probe_ts: 1000,
                            write_seq: 14,
                            write_ts: 1400,
                        },
                        RacingTxn {
                            worker: 2,
                            txn: 8,
                            probe_seq: 11,
                            probe_ts: 1100,
                            write_seq: 15,
                            write_ts: 1500,
                        },
                    ],
                    overlap_nanos: 300,
                    witness: Some(Witness {
                        scenario: "uniqueness/read-committed/feral/2w".into(),
                        isolation: "read-committed".into(),
                        guard: "feral".into(),
                        workers: 2,
                        replay: "feral-sim replay --scenario uniqueness --seed 3".into(),
                        message: "duplicate key: key-1".into(),
                    }),
                    flight: vec!["seq=10 t=1000ns w1 txn=7 unique-probe a=0x1 b=0x2".into()],
                }],
            }],
        }
    }

    #[test]
    fn json_roundtrips_and_validates() {
        let report = sample_report();
        let text = report.to_json();
        let doc = validate_report(&text).expect("valid report");
        let cells = doc.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("duplicates").unwrap().as_u64(), Some(3));
        let prov = cells[0].get("provenance").unwrap().as_arr().unwrap();
        assert_eq!(
            prov[0].get("key_hash").unwrap().as_str(),
            Some("0xdeadbeefcafef00d")
        );
    }

    #[test]
    fn validation_catches_corrupted_histograms() {
        let mut report = sample_report();
        report.cells[0].histograms[0].1.count += 1; // no longer sums
        assert!(validate_report(&report.to_json()).is_err());
    }

    #[test]
    fn validation_catches_singleton_racing_set() {
        let mut report = sample_report();
        report.cells[0].provenance[0].racing.truncate(1);
        assert!(validate_report(&report.to_json()).is_err());
    }

    #[test]
    fn prometheus_output_is_labelled_per_cell() {
        let text = sample_report().to_prometheus();
        assert!(text.contains("feral_duplicates_total{cell=\"read-committed/feral\"} 3"));
        assert!(text.contains(
            "feral_engine_events_total{cell=\"read-committed/feral\",counter=\"validation_probes\"} 80"
        ));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("feral_phase_latency_nanos_count"));
    }

    #[test]
    fn prometheus_output_has_help_and_type_headers() {
        let text = sample_report().to_prometheus();
        for metric in [
            "feral_duplicates_total",
            "feral_rejected_total",
            "feral_engine_events_total",
            "feral_phase_latency_nanos",
        ] {
            let help = format!("# HELP {metric} ");
            let typ = format!("# TYPE {metric} ");
            assert!(text.contains(&help), "missing HELP for {metric}");
            assert!(text.contains(&typ), "missing TYPE for {metric}");
            // HELP must precede TYPE which must precede the first sample.
            let h = text.find(&help).unwrap();
            let t = text.find(&typ).unwrap();
            let s = text.find(&format!("{metric}{{")).unwrap();
            assert!(h < t && t < s, "header order wrong for {metric}");
        }
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let mut report = sample_report();
        report.cells[0].label = "quote\" slash\\ line\nend".into();
        let text = report.to_prometheus();
        assert!(text.contains("cell=\"quote\\\" slash\\\\ line\\nend\""));
        // No raw (unescaped) newline may survive inside a sample line.
        for line in text.lines() {
            assert!(!line.contains("line\nend"));
        }
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }
}
