//! Integration tests for feral-trace: histogram merge/quantile
//! properties, ring-buffer wraparound under concurrent writers, and
//! the end-to-end record → flight-recorder → provenance path.
//!
//! These tests share the crate's global tracing state (ENABLED, the
//! sequence counter, thread rings), so everything that needs tracing
//! *on* runs inside one serialized test; the property tests only touch
//! local `Histogram` instances and are safe to run in parallel.

use feral_trace::hist::{bucket_bounds, bucket_index, HIST_BUCKETS, QUANTILE_SENTINEL};
use feral_trace::{fnv64, Event, EventKind, Histogram, HistogramSnapshot, Phase};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

proptest! {
    /// Every value lands in a bucket whose bounds contain it, and the
    /// bucket's relative width is at most 25 % of its lower bound.
    #[test]
    fn bucket_bounds_contain_the_value(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < HIST_BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        if lo >= 16 {
            prop_assert!(hi - lo < lo / 2, "bucket [{lo}, {hi}] too wide");
        }
    }

    /// merge is commutative and count/sum-preserving.
    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(0u64..1_000_000, 0..64),
        ys in proptest::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let (ha, hb) = (Histogram::new(), Histogram::new());
        for &x in &xs { ha.record(x); }
        for &y in &ys { hb.record(y); }
        let (sa, sb) = (ha.snapshot(), hb.snapshot());
        let ab = sa.merge(&sb);
        let ba = sb.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count, (xs.len() + ys.len()) as u64);
        prop_assert_eq!(ab.sum, xs.iter().sum::<u64>() + ys.iter().sum::<u64>());
        prop_assert!(ab.well_formed());
    }

    /// Quantiles are monotone in q, never exceed max, and the reported
    /// value over-estimates the true order statistic by at most one
    /// sub-bucket (25 % relative error).
    #[test]
    fn quantiles_are_monotone_and_bounded(
        mut xs in proptest::collection::vec(0u64..10_000_000, 1..128),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &x in &xs { h.record(x); }
        let s = h.snapshot();
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        // A snapshot collapsed into one multi-value bucket is
        // degenerate: every quantile is the sentinel (still monotone).
        let sparse = s.sparse();
        if sparse.len() == 1 {
            let (lo, hi) = bucket_bounds(sparse[0].0);
            if lo < hi {
                prop_assert_eq!(s.quantile(lo_q), QUANTILE_SENTINEL);
                prop_assert_eq!(s.quantile(hi_q), QUANTILE_SENTINEL);
                return Ok(());
            }
        }
        prop_assert!(s.quantile(lo_q) <= s.quantile(hi_q));
        prop_assert!(s.quantile(1.0) <= s.max);

        xs.sort_unstable();
        let rank = ((hi_q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
        let truth = xs[rank - 1];
        let reported = s.quantile(hi_q);
        prop_assert!(reported >= truth, "reported {reported} < true {truth}");
        prop_assert!(
            reported <= truth + truth / 2 + 1,
            "reported {reported} too far above true {truth}"
        );
    }

    /// diff(merge(a, b), b) restores a exactly (bucket-wise).
    #[test]
    fn diff_undoes_merge(
        xs in proptest::collection::vec(0u64..100_000, 0..64),
        ys in proptest::collection::vec(0u64..100_000, 0..64),
    ) {
        let (ha, hb) = (Histogram::new(), Histogram::new());
        for &x in &xs { ha.record(x); }
        for &y in &ys { hb.record(y); }
        let (sa, sb) = (ha.snapshot(), hb.snapshot());
        let restored = sa.merge(&sb).diff(&sb);
        prop_assert_eq!(restored.buckets, sa.buckets);
        prop_assert_eq!(restored.count, sa.count);
        prop_assert_eq!(restored.sum, sa.sum);
    }

    /// Sparse wire form round-trips exactly.
    #[test]
    fn sparse_form_roundtrips(xs in proptest::collection::vec(any::<u64>(), 0..64)) {
        let h = Histogram::new();
        for &x in &xs { h.record(x); }
        let s = h.snapshot();
        let rebuilt = HistogramSnapshot::from_sparse(&s.sparse(), s.count, s.sum, s.max);
        prop_assert_eq!(rebuilt.unwrap(), s);
    }
}

/// Everything that flips the global ENABLED switch lives in this one
/// test so no parallel test observes tracing half-on.
#[test]
fn live_tracing_end_to_end() {
    assert!(!feral_trace::enabled());
    feral_trace::set_enabled(true);
    feral_trace::reset();

    // --- concurrent writers, each well past wraparound ---
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = (feral_trace::ring::RING_SLOTS as u64) * 2 + 37;
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            // Hammer the flight recorder while writers are mid-stream:
            // merged_tail must never panic or return torn events.
            let mut dumps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let tail = feral_trace::flight_recorder(256);
                for pair in tail.windows(2) {
                    assert!(pair[0].seq < pair[1].seq, "dump not seq-ordered");
                }
                dumps += 1;
            }
            dumps
        })
    };
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    feral_trace::record(
                        EventKind::WorkloadOp,
                        w as u64 + 1,
                        i,
                        fnv64(b"key_values"),
                    );
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let dumps = reader.join().unwrap();
    assert!(dumps > 0);

    // After the dust settles: each writer thread's ring retains exactly
    // RING_SLOTS events, and the merged tail honours the limit.
    let tail = feral_trace::flight_recorder(64);
    assert_eq!(tail.len(), 64);
    let full = feral_trace::flight_recorder(usize::MAX);
    assert!(full.len() >= feral_trace::ring::RING_SLOTS * WRITERS.min(2));
    // txn ids tag which writer produced each event; every writer's tail
    // must survive into the merged view.
    for w in 1..=WRITERS as u64 {
        assert!(
            full.iter().any(|e| e.txn == w),
            "writer {w} missing from merged dump"
        );
    }

    // --- reset() hides history from the flight recorder ---
    feral_trace::reset();
    assert!(feral_trace::flight_recorder(usize::MAX).is_empty());

    // --- phase spans feed the global histograms + emit events ---
    let span = feral_trace::start_phase(Phase::Validate);
    std::hint::black_box(17u64);
    let nanos = span.finish(99);
    assert!(nanos > 0);
    let snap = feral_trace::phase_histogram(Phase::Validate).snapshot();
    assert_eq!(snap.count, 1);
    assert!(snap.well_formed());
    let tail = feral_trace::flight_recorder(8);
    assert!(matches!(
        tail.last(),
        Some(Event {
            kind: EventKind::PhaseEnd,
            txn: 99,
            ..
        })
    ));

    // --- a staged feral race is explained by provenance ---
    feral_trace::reset();
    let key = fnv64(b"dup-key");
    let table = fnv64(b"key_values");
    feral_trace::record(EventKind::UniqueProbe, 7, key, table);
    feral_trace::record(EventKind::UniqueProbe, 8, key, table);
    feral_trace::record(EventKind::SaveWrite, 7, key, table);
    feral_trace::record(EventKind::SaveWrite, 8, key, table);
    let events = feral_trace::flight_recorder(usize::MAX);
    let rec = feral_trace::provenance::explain_duplicate(&events, "key_values", "dup-key")
        .expect("staged race is explained");
    assert_eq!(rec.racing.len(), 2);
    assert_eq!(rec.racing[0].txn, 7);
    assert_eq!(rec.racing[1].txn, 8);

    // --- disabling makes every hook inert again ---
    feral_trace::set_enabled(false);
    feral_trace::reset();
    feral_trace::record(EventKind::Abort, 1, 0, 0);
    assert!(feral_trace::flight_recorder(usize::MAX).is_empty());
    assert_eq!(feral_trace::start_phase(Phase::Commit).finish(1), 0);
}
