//! # feral-orm
//!
//! An ActiveRecord-workalike ORM for Rust, built to reproduce the system
//! under study in *Feral Concurrency Control: An Empirical Investigation
//! of Modern Application Integrity* (Bailis et al., SIGMOD 2015).
//!
//! The crate implements, with Rails-faithful algorithms:
//!
//! * **Models** ([`ModelDef`]) — attributes, a mandatory integer `id`,
//!   optional `lock_version` and timestamp columns; one table per model.
//! * **Validations** ([`Validator`]) — the full built-in vocabulary from
//!   the paper's Table 1 (`presence`, `uniqueness`, `length`, `inclusion`,
//!   `numericality`, `associated`, `email`, attachment checks,
//!   `confirmation`, ...) plus user-defined validators. Validations run
//!   inside the save's database transaction and issue plain `SELECT`
//!   probes — **feral concurrency control**, unsafe below serializable
//!   isolation exactly as the paper quantifies.
//! * **Associations** — `belongs_to` / `has_one` / `has_many`
//!   (+ `:through`), with `dependent: destroy / delete_all / nullify /
//!   restrict` cascades executed at the application level.
//! * **Locking** — optimistic (`lock_version`) and pessimistic
//!   (`SELECT FOR UPDATE`) per-record locks.
//! * **Migrations** — unique indexes and in-database foreign keys are
//!   declared *separately* from models ([`App::add_index`],
//!   [`App::add_foreign_key`]), mirroring how Rails keeps schema
//!   constraints out of the domain model.
//! * **Framework profiles** ([`frameworks`]) — the Section 6 survey of
//!   JPA, Hibernate, CakePHP, Laravel, Django, and Waterline as executable
//!   enforcement configurations.
//!
//! ## Example
//!
//! ```
//! use feral_orm::{App, ModelDef};
//! use feral_db::Datum;
//!
//! let app = App::in_memory();
//! app.define(
//!     ModelDef::build("User")
//!         .string("username")
//!         .validates_presence_of("username")
//!         .validates_uniqueness_of("username")
//!         .finish(),
//! ).unwrap();
//!
//! let mut session = app.session();
//! let user = session.create_strict("User", &[("username", Datum::text("peter"))]).unwrap();
//! assert!(user.is_persisted());
//!
//! // The feral uniqueness validation rejects a sequential duplicate...
//! let dup = session.create("User", &[("username", Datum::text("peter"))]).unwrap();
//! assert!(!dup.is_persisted());
//! assert_eq!(dup.errors.on("username"), vec!["has already been taken"]);
//! // ...but, as the paper shows, concurrent duplicates can still slip in.
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod errors;
pub mod frameworks;
pub mod inflect;
pub mod model;
pub mod pattern;
pub mod record;
pub mod session;
pub mod validations;

pub use app::App;
pub use errors::{Errors, OrmError, OrmResult};
pub use model::{
    AssocKind, Association, CallbackKind, Dependent, ModelDef, Numericality, QueryCtx, Validator,
};
pub use pattern::Pattern;
pub use record::Record;
pub use session::Session;
