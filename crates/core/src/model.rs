//! Model definitions: attributes, validations, associations.
//!
//! A [`ModelDef`] is the runtime equivalent of an ActiveRecord class body:
//! the attribute list plus the `validates_*`, `belongs_to` / `has_many`
//! declarations. Models are defined with the fluent [`ModelBuilder`] and
//! registered with [`crate::App::define`], which creates the backing table
//! (one table per model, Fowler's Active Record pattern).

use crate::errors::{Errors, OrmResult};
use crate::inflect;
use crate::pattern::Pattern;
use crate::record::Record;
use feral_db::{DataType, Datum};
use std::sync::Arc;

/// What happens to associated records when the owner is destroyed —
/// enforced *ferally*, in application code, exactly as Rails does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dependent {
    /// Instantiate each child and call `destroy` on it (runs the child's
    /// own dependent logic).
    Destroy,
    /// Issue a bare `DELETE` for the children (no callbacks).
    DeleteAll,
    /// Set the children's foreign key to NULL.
    Nullify,
    /// Refuse to destroy the owner while children exist.
    Restrict,
}

/// Association cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocKind {
    /// `belongs_to :dept` — this model holds the foreign key.
    BelongsTo,
    /// `has_one :profile` — the target holds the foreign key.
    HasOne,
    /// `has_many :users` — the target holds the foreign key.
    HasMany,
}

/// A declared association ("a connection between two Active Record
/// models"). Declaring one produces the foreign-key field but — as the
/// paper stresses — **no** database constraint.
#[derive(Debug, Clone)]
pub struct Association {
    /// Association name (`:department`).
    pub name: String,
    /// Cardinality.
    pub kind: AssocKind,
    /// Target model class name (`"Department"`).
    pub target: String,
    /// Foreign-key column (`department_id`) — on this model for
    /// `belongs_to`, on the target for `has_one`/`has_many`.
    pub foreign_key: String,
    /// Dependent behaviour on destroy (has_one/has_many only).
    pub dependent: Option<Dependent>,
    /// `:through` intermediate association name, if any.
    pub through: Option<String>,
    /// `counter_cache: true` on a `belongs_to`: the parent maintains a
    /// denormalized `<child_table>_count` column, updated in the child's
    /// save/destroy transaction.
    pub counter_cache: bool,
}

/// Options for `validates_numericality_of`.
#[derive(Debug, Clone, Default)]
pub struct Numericality {
    /// Require an integer value.
    pub only_integer: bool,
    /// `greater_than`.
    pub gt: Option<f64>,
    /// `greater_than_or_equal_to`.
    pub ge: Option<f64>,
    /// `less_than`.
    pub lt: Option<f64>,
    /// `less_than_or_equal_to`.
    pub le: Option<f64>,
    /// Skip the check when the value is NULL.
    pub allow_nil: bool,
}

impl Numericality {
    /// Plain "must be a number".
    pub fn number() -> Self {
        Numericality::default()
    }
    /// Builder: integers only.
    pub fn only_integer(mut self) -> Self {
        self.only_integer = true;
        self
    }
    /// Builder: `greater_than`.
    pub fn greater_than(mut self, v: f64) -> Self {
        self.gt = Some(v);
        self
    }
    /// Builder: `greater_than_or_equal_to`.
    pub fn greater_than_or_equal_to(mut self, v: f64) -> Self {
        self.ge = Some(v);
        self
    }
    /// Builder: `less_than`.
    pub fn less_than(mut self, v: f64) -> Self {
        self.lt = Some(v);
        self
    }
    /// Builder: `less_than_or_equal_to`.
    pub fn less_than_or_equal_to(mut self, v: f64) -> Self {
        self.le = Some(v);
        self
    }
    /// Builder: allow NULL.
    pub fn allow_nil(mut self) -> Self {
        self.allow_nil = true;
        self
    }
}

/// Database access available to user-defined validators (the 1.71% of
/// validations in the corpus that are UDFs — §4.3). Runs inside the same
/// transaction as the save, so UDF reads are exactly as (un)protected as
/// built-in validation probes.
pub trait QueryCtx {
    /// Count rows of `model` matching all `(attribute, value)` equalities.
    fn count_where(&mut self, model: &str, conds: &[(String, Datum)]) -> OrmResult<usize>;
    /// Fetch records of `model` matching all equalities.
    fn fetch_where(&mut self, model: &str, conds: &[(String, Datum)]) -> OrmResult<Vec<Record>>;
    /// Whether any row matches.
    fn exists_where(&mut self, model: &str, conds: &[(String, Datum)]) -> OrmResult<bool> {
        Ok(self.count_where(model, conds)? > 0)
    }
}

/// Signature of a user-defined validator.
pub type CustomFn = Arc<dyn Fn(&Record, &mut dyn QueryCtx, &mut Errors) + Send + Sync>;

/// Lifecycle hook points (a subset of Rails' callback chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallbackKind {
    /// Runs before the validation pass (normalization).
    BeforeValidation,
    /// Runs after validations pass, before the write.
    BeforeSave,
    /// Runs after a successful insert, inside the transaction.
    AfterCreate,
    /// Runs after any successful save, inside the transaction.
    AfterSave,
    /// Runs before the row delete in `destroy`.
    BeforeDestroy,
    /// Runs after the row delete in `destroy`, inside the transaction.
    AfterDestroy,
}

/// Signature of a lifecycle callback.
pub type CallbackFn = Arc<dyn Fn(&mut Record) + Send + Sync>;

/// A declared validation — one entry in Rails' `validates_*` vocabulary.
/// The ten most common built-ins from the paper's Table 1 are all here.
#[derive(Clone)]
pub enum Validator {
    /// `validates_presence_of`: non-blank attribute, or — when the field
    /// names a `belongs_to` association — a `SELECT`-probe that the
    /// associated record exists (paper Appendix B.2).
    Presence {
        /// Attribute or association name.
        field: String,
    },
    /// `validates_uniqueness_of`: the feral `SELECT ... LIMIT 1` probe of
    /// paper Appendix B.1. **Not** I-confluent; the subject of Figure 2/3.
    Uniqueness {
        /// Validated attribute.
        field: String,
        /// `scope:` attributes that refine the uniqueness domain.
        scope: Vec<String>,
        /// Rails defaults to case-sensitive comparison.
        case_sensitive: bool,
    },
    /// `validates_length_of`.
    Length {
        /// Validated attribute.
        field: String,
        /// Minimum length, if any.
        min: Option<usize>,
        /// Maximum length, if any.
        max: Option<usize>,
        /// Skip on NULL.
        allow_nil: bool,
    },
    /// `validates_inclusion_of`.
    Inclusion {
        /// Validated attribute.
        field: String,
        /// Allowed values.
        within: Vec<Datum>,
    },
    /// `validates_exclusion_of`.
    Exclusion {
        /// Validated attribute.
        field: String,
        /// Reserved values.
        from: Vec<Datum>,
    },
    /// `validates_numericality_of`.
    NumericalityOf {
        /// Validated attribute.
        field: String,
        /// Constraints.
        opts: Numericality,
    },
    /// `validates_format_of`.
    Format {
        /// Validated attribute.
        field: String,
        /// Compiled pattern.
        with: Pattern,
        /// Skip on NULL.
        allow_nil: bool,
    },
    /// `validates_email` (gem-provided in the corpus).
    Email {
        /// Validated attribute.
        field: String,
    },
    /// `validates_confirmation_of`: `field_confirmation` virtual attribute
    /// must match `field` when supplied.
    Confirmation {
        /// Validated attribute.
        field: String,
    },
    /// `validates_acceptance_of` (terms-of-service checkboxes).
    Acceptance {
        /// Validated attribute.
        field: String,
    },
    /// `validates_associated`: associated records must themselves be valid
    /// (and, for `belongs_to`, present in the database).
    Associated {
        /// Association name.
        assoc: String,
    },
    /// Paperclip's `validates_attachment_content_type`.
    AttachmentContentType {
        /// Attachment name; checks `<field>_content_type`.
        field: String,
        /// Allowed MIME types.
        allowed: Vec<String>,
    },
    /// Paperclip's `validates_attachment_size`; checks `<field>_file_size`.
    AttachmentSize {
        /// Attachment name.
        field: String,
        /// Maximum size in bytes.
        max_bytes: i64,
    },
    /// A user-defined validator (`validates_each` / custom class).
    Custom {
        /// Diagnostic name.
        name: String,
        /// The validation body.
        f: CustomFn,
    },
}

impl std::fmt::Debug for Validator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind_name())
    }
}

impl Validator {
    /// The `validates_*` identifier this validator corresponds to (matches
    /// the paper's Table 1 naming).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Validator::Presence { .. } => "validates_presence_of",
            Validator::Uniqueness { .. } => "validates_uniqueness_of",
            Validator::Length { .. } => "validates_length_of",
            Validator::Inclusion { .. } => "validates_inclusion_of",
            Validator::Exclusion { .. } => "validates_exclusion_of",
            Validator::NumericalityOf { .. } => "validates_numericality_of",
            Validator::Format { .. } => "validates_format_of",
            Validator::Email { .. } => "validates_email",
            Validator::Confirmation { .. } => "validates_confirmation_of",
            Validator::Acceptance { .. } => "validates_acceptance_of",
            Validator::Associated { .. } => "validates_associated",
            Validator::AttachmentContentType { .. } => "validates_attachment_content_type",
            Validator::AttachmentSize { .. } => "validates_attachment_size",
            Validator::Custom { .. } => "custom",
        }
    }
}

/// A fully built model definition.
#[derive(Clone)]
pub struct ModelDef {
    /// Class name (`"User"`).
    pub name: String,
    /// Backing table name (`"users"`).
    pub table: String,
    /// Declared attributes in order (excluding `id` and bookkeeping
    /// columns).
    pub attributes: Vec<(String, DataType)>,
    /// Declared validations, run in order on save.
    pub validators: Vec<Validator>,
    /// Declared associations.
    pub associations: Vec<Association>,
    /// Whether a `lock_version` column (optimistic locking) is present.
    pub lock_version: bool,
    /// Whether `created_at`/`updated_at` are maintained.
    pub timestamps: bool,
    /// Lifecycle callbacks, run in declaration order per hook point.
    pub callbacks: Vec<(CallbackKind, String, CallbackFn)>,
}

impl ModelDef {
    /// Start building a model.
    pub fn build(name: impl Into<String>) -> ModelBuilder {
        let name = name.into();
        ModelBuilder {
            def: ModelDef {
                table: inflect::table_name(&name),
                name,
                attributes: Vec::new(),
                validators: Vec::new(),
                associations: Vec::new(),
                lock_version: false,
                timestamps: true,
                callbacks: Vec::new(),
            },
        }
    }

    /// Full column order of the backing table: `id`, declared attributes,
    /// then `lock_version` and timestamp columns when enabled.
    pub fn column_order(&self) -> Vec<(String, DataType)> {
        let mut cols = vec![("id".to_string(), DataType::Int)];
        cols.extend(self.attributes.iter().cloned());
        if self.lock_version {
            cols.push(("lock_version".to_string(), DataType::Int));
        }
        if self.timestamps {
            cols.push(("created_at".to_string(), DataType::Timestamp));
            cols.push(("updated_at".to_string(), DataType::Timestamp));
        }
        cols
    }

    /// Position of `column` in [`ModelDef::column_order`].
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.column_order().iter().position(|(n, _)| n == column)
    }

    /// Whether `name` is a declared attribute (or bookkeeping column).
    pub fn has_column(&self, name: &str) -> bool {
        self.column_index(name).is_some()
    }

    /// Find an association by name.
    pub fn association(&self, name: &str) -> Option<&Association> {
        self.associations.iter().find(|a| a.name == name)
    }

    /// The `belongs_to` association whose foreign key is `fk`, if any.
    pub fn belongs_to_with_fk(&self, fk: &str) -> Option<&Association> {
        self.associations
            .iter()
            .find(|a| a.kind == AssocKind::BelongsTo && a.foreign_key == fk)
    }

    /// Count validators of each kind (used by the survey pipeline).
    pub fn validator_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for v in &self.validators {
            let k = v.kind_name();
            match counts.iter_mut().find(|(n, _)| *n == k) {
                Some((_, c)) => *c += 1,
                None => counts.push((k, 1)),
            }
        }
        counts
    }
}

impl std::fmt::Debug for ModelDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelDef")
            .field("name", &self.name)
            .field("table", &self.table)
            .field("attributes", &self.attributes)
            .field("validators", &self.validators)
            .field("associations", &self.associations)
            .field("callbacks", &self.callbacks.len())
            .finish()
    }
}

/// Fluent builder mirroring a Rails class body.
pub struct ModelBuilder {
    def: ModelDef,
}

impl ModelBuilder {
    /// Override the derived table name.
    pub fn table(mut self, table: impl Into<String>) -> Self {
        self.def.table = table.into();
        self
    }

    /// Declare an attribute (a typed column).
    pub fn attribute(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.def.attributes.push((name.into(), ty));
        self
    }

    /// Shorthand for a text attribute.
    pub fn string(self, name: impl Into<String>) -> Self {
        self.attribute(name, DataType::Text)
    }

    /// Shorthand for an integer attribute.
    pub fn integer(self, name: impl Into<String>) -> Self {
        self.attribute(name, DataType::Int)
    }

    /// Shorthand for a float attribute.
    pub fn float(self, name: impl Into<String>) -> Self {
        self.attribute(name, DataType::Float)
    }

    /// Shorthand for a boolean attribute.
    pub fn boolean(self, name: impl Into<String>) -> Self {
        self.attribute(name, DataType::Bool)
    }

    /// Disable `created_at`/`updated_at` maintenance.
    pub fn without_timestamps(mut self) -> Self {
        self.def.timestamps = false;
        self
    }

    /// Enable optimistic locking (`lock_version` column).
    pub fn with_lock_version(mut self) -> Self {
        self.def.lock_version = true;
        self
    }

    // --- validations -------------------------------------------------

    /// `validates_presence_of :field` (or an association name).
    pub fn validates_presence_of(mut self, field: impl Into<String>) -> Self {
        self.def.validators.push(Validator::Presence {
            field: field.into(),
        });
        self
    }

    /// `validates_uniqueness_of :field`.
    pub fn validates_uniqueness_of(mut self, field: impl Into<String>) -> Self {
        self.def.validators.push(Validator::Uniqueness {
            field: field.into(),
            scope: Vec::new(),
            case_sensitive: true,
        });
        self
    }

    /// `validates_uniqueness_of :field, scope: [...]`.
    pub fn validates_uniqueness_of_scoped(
        mut self,
        field: impl Into<String>,
        scope: &[&str],
    ) -> Self {
        self.def.validators.push(Validator::Uniqueness {
            field: field.into(),
            scope: scope.iter().map(|s| s.to_string()).collect(),
            case_sensitive: true,
        });
        self
    }

    /// `validates_uniqueness_of :field, case_sensitive: false`.
    pub fn validates_uniqueness_of_ci(mut self, field: impl Into<String>) -> Self {
        self.def.validators.push(Validator::Uniqueness {
            field: field.into(),
            scope: Vec::new(),
            case_sensitive: false,
        });
        self
    }

    /// `validates_length_of :field, minimum:, maximum:`.
    pub fn validates_length_of(
        mut self,
        field: impl Into<String>,
        min: Option<usize>,
        max: Option<usize>,
    ) -> Self {
        self.def.validators.push(Validator::Length {
            field: field.into(),
            min,
            max,
            allow_nil: false,
        });
        self
    }

    /// `validates_inclusion_of :field, in: [...]`.
    pub fn validates_inclusion_of(mut self, field: impl Into<String>, within: Vec<Datum>) -> Self {
        self.def.validators.push(Validator::Inclusion {
            field: field.into(),
            within,
        });
        self
    }

    /// `validates_exclusion_of :field, in: [...]`.
    pub fn validates_exclusion_of(mut self, field: impl Into<String>, from: Vec<Datum>) -> Self {
        self.def.validators.push(Validator::Exclusion {
            field: field.into(),
            from,
        });
        self
    }

    /// `validates_numericality_of :field, ...`.
    pub fn validates_numericality_of(
        mut self,
        field: impl Into<String>,
        opts: Numericality,
    ) -> Self {
        self.def.validators.push(Validator::NumericalityOf {
            field: field.into(),
            opts,
        });
        self
    }

    /// `validates_format_of :field, with: /pattern/`.
    ///
    /// # Panics
    /// On an invalid pattern — the analogue of Ruby raising at class-load.
    pub fn validates_format_of(mut self, field: impl Into<String>, pattern: &str) -> Self {
        let compiled =
            Pattern::compile(pattern).unwrap_or_else(|e| panic!("validates_format_of: {e}"));
        self.def.validators.push(Validator::Format {
            field: field.into(),
            with: compiled,
            allow_nil: false,
        });
        self
    }

    /// `validates_email :field`.
    pub fn validates_email(mut self, field: impl Into<String>) -> Self {
        self.def.validators.push(Validator::Email {
            field: field.into(),
        });
        self
    }

    /// `validates_confirmation_of :field`.
    pub fn validates_confirmation_of(mut self, field: impl Into<String>) -> Self {
        self.def.validators.push(Validator::Confirmation {
            field: field.into(),
        });
        self
    }

    /// `validates_acceptance_of :field`.
    pub fn validates_acceptance_of(mut self, field: impl Into<String>) -> Self {
        self.def.validators.push(Validator::Acceptance {
            field: field.into(),
        });
        self
    }

    /// `validates_associated :assoc`.
    pub fn validates_associated(mut self, assoc: impl Into<String>) -> Self {
        self.def.validators.push(Validator::Associated {
            assoc: assoc.into(),
        });
        self
    }

    /// Paperclip `validates_attachment_content_type`.
    pub fn validates_attachment_content_type(
        mut self,
        field: impl Into<String>,
        allowed: &[&str],
    ) -> Self {
        self.def.validators.push(Validator::AttachmentContentType {
            field: field.into(),
            allowed: allowed.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Paperclip `validates_attachment_size` (`less_than: max_bytes`).
    pub fn validates_attachment_size(mut self, field: impl Into<String>, max_bytes: i64) -> Self {
        self.def.validators.push(Validator::AttachmentSize {
            field: field.into(),
            max_bytes,
        });
        self
    }

    /// A user-defined validator (`validates_each` / custom class).
    pub fn validates_with(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&Record, &mut dyn QueryCtx, &mut Errors) + Send + Sync + 'static,
    ) -> Self {
        self.def.validators.push(Validator::Custom {
            name: name.into(),
            f: Arc::new(f),
        });
        self
    }

    // --- callbacks -----------------------------------------------------

    /// Register a lifecycle callback.
    pub fn callback(
        mut self,
        kind: CallbackKind,
        name: impl Into<String>,
        f: impl Fn(&mut Record) + Send + Sync + 'static,
    ) -> Self {
        self.def.callbacks.push((kind, name.into(), Arc::new(f)));
        self
    }

    /// `before_validation :name` — normalize attributes before checks.
    pub fn before_validation(
        self,
        name: impl Into<String>,
        f: impl Fn(&mut Record) + Send + Sync + 'static,
    ) -> Self {
        self.callback(CallbackKind::BeforeValidation, name, f)
    }

    /// `before_save :name`.
    pub fn before_save(
        self,
        name: impl Into<String>,
        f: impl Fn(&mut Record) + Send + Sync + 'static,
    ) -> Self {
        self.callback(CallbackKind::BeforeSave, name, f)
    }

    /// `after_create :name`.
    pub fn after_create(
        self,
        name: impl Into<String>,
        f: impl Fn(&mut Record) + Send + Sync + 'static,
    ) -> Self {
        self.callback(CallbackKind::AfterCreate, name, f)
    }

    /// `after_save :name`.
    pub fn after_save(
        self,
        name: impl Into<String>,
        f: impl Fn(&mut Record) + Send + Sync + 'static,
    ) -> Self {
        self.callback(CallbackKind::AfterSave, name, f)
    }

    /// `before_destroy :name`.
    pub fn before_destroy(
        self,
        name: impl Into<String>,
        f: impl Fn(&mut Record) + Send + Sync + 'static,
    ) -> Self {
        self.callback(CallbackKind::BeforeDestroy, name, f)
    }

    /// `after_destroy :name`.
    pub fn after_destroy(
        self,
        name: impl Into<String>,
        f: impl Fn(&mut Record) + Send + Sync + 'static,
    ) -> Self {
        self.callback(CallbackKind::AfterDestroy, name, f)
    }

    // --- associations ------------------------------------------------

    /// `belongs_to :assoc` — adds the `<assoc>_id` foreign-key attribute
    /// if not already declared. The target model is camelized from the
    /// association name.
    pub fn belongs_to(self, assoc: impl Into<String>) -> Self {
        let assoc = assoc.into();
        let target = inflect::camelize(&assoc);
        self.belongs_to_model(assoc, target)
    }

    /// `belongs_to :assoc, class_name: "Target"`.
    pub fn belongs_to_model(mut self, assoc: impl Into<String>, target: impl Into<String>) -> Self {
        let assoc = assoc.into();
        let fk = inflect::foreign_key(&assoc);
        if !self.def.attributes.iter().any(|(n, _)| *n == fk) {
            self.def.attributes.push((fk.clone(), DataType::Int));
        }
        self.def.associations.push(Association {
            name: assoc,
            kind: AssocKind::BelongsTo,
            target: target.into(),
            foreign_key: fk,
            dependent: None,
            through: None,
            counter_cache: false,
        });
        self
    }

    /// `belongs_to :assoc, counter_cache: true` — the parent model must
    /// declare an integer `<this_table>_count` column; it is maintained
    /// atomically inside each child save/destroy transaction (Rails emits
    /// `UPDATE parents SET c = c + 1`). Note the Rails caveat this
    /// reproduction preserves: `delete` (no callbacks) and raw SQL bypass
    /// the counter, so it can drift — a feral denormalization.
    pub fn belongs_to_counted(mut self, assoc: impl Into<String>) -> Self {
        let assoc = assoc.into();
        let target = inflect::camelize(&assoc);
        let fk = inflect::foreign_key(&assoc);
        if !self.def.attributes.iter().any(|(n, _)| *n == fk) {
            self.def.attributes.push((fk.clone(), DataType::Int));
        }
        self.def.associations.push(Association {
            name: assoc,
            kind: AssocKind::BelongsTo,
            target,
            foreign_key: fk,
            dependent: None,
            through: None,
            counter_cache: true,
        });
        self
    }

    /// `has_many :assocs` (target camelized+singularized from the name).
    pub fn has_many(self, assoc: impl Into<String>) -> Self {
        self.has_many_dependent_opt(assoc, None)
    }

    /// `has_many :assocs, dependent: ...`.
    pub fn has_many_dependent(self, assoc: impl Into<String>, dependent: Dependent) -> Self {
        self.has_many_dependent_opt(assoc, Some(dependent))
    }

    fn has_many_dependent_opt(
        mut self,
        assoc: impl Into<String>,
        dependent: Option<Dependent>,
    ) -> Self {
        let assoc = assoc.into();
        let target = inflect::camelize(&inflect::singularize(&assoc));
        let fk = inflect::foreign_key(&inflect::underscore(&self.def.name));
        self.def.associations.push(Association {
            name: assoc,
            kind: AssocKind::HasMany,
            target,
            foreign_key: fk,
            dependent,
            through: None,
            counter_cache: false,
        });
        self
    }

    /// `has_many :assocs, through: :other`.
    pub fn has_many_through(
        mut self,
        assoc: impl Into<String>,
        through: impl Into<String>,
    ) -> Self {
        let assoc = assoc.into();
        let target = inflect::camelize(&inflect::singularize(&assoc));
        self.def.associations.push(Association {
            name: assoc,
            kind: AssocKind::HasMany,
            target,
            foreign_key: String::new(),
            dependent: None,
            through: Some(through.into()),
            counter_cache: false,
        });
        self
    }

    /// `has_one :assoc, dependent: ...`.
    pub fn has_one(mut self, assoc: impl Into<String>, dependent: Option<Dependent>) -> Self {
        let assoc = assoc.into();
        let target = inflect::camelize(&assoc);
        let fk = inflect::foreign_key(&inflect::underscore(&self.def.name));
        self.def.associations.push(Association {
            name: assoc,
            kind: AssocKind::HasOne,
            target,
            foreign_key: fk,
            dependent,
            through: None,
            counter_cache: false,
        });
        self
    }

    /// Finish building.
    pub fn finish(self) -> ModelDef {
        self.def
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_rails_shaped_model() {
        let m = ModelDef::build("User")
            .string("name")
            .integer("age")
            .validates_presence_of("name")
            .validates_uniqueness_of("name")
            .belongs_to("department")
            .finish();
        assert_eq!(m.table, "users");
        // belongs_to added the fk attribute
        assert!(m.attributes.iter().any(|(n, _)| n == "department_id"));
        assert_eq!(m.validators.len(), 2);
        let a = m.association("department").unwrap();
        assert_eq!(a.kind, AssocKind::BelongsTo);
        assert_eq!(a.target, "Department");
        assert_eq!(a.foreign_key, "department_id");
    }

    #[test]
    fn column_order_includes_bookkeeping() {
        let m = ModelDef::build("Item")
            .string("sku")
            .with_lock_version()
            .finish();
        let cols: Vec<String> = m.column_order().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            cols,
            vec!["id", "sku", "lock_version", "created_at", "updated_at"]
        );
        assert_eq!(m.column_index("sku"), Some(1));
        assert!(m.has_column("updated_at"));
    }

    #[test]
    fn without_timestamps() {
        let m = ModelDef::build("Kv")
            .string("k")
            .without_timestamps()
            .finish();
        let cols: Vec<String> = m.column_order().into_iter().map(|(n, _)| n).collect();
        assert_eq!(cols, vec!["id", "k"]);
    }

    #[test]
    fn has_many_derives_target_and_fk() {
        let m = ModelDef::build("Department")
            .string("name")
            .has_many_dependent("users", Dependent::Destroy)
            .finish();
        let a = m.association("users").unwrap();
        assert_eq!(a.kind, AssocKind::HasMany);
        assert_eq!(a.target, "User");
        assert_eq!(a.foreign_key, "department_id");
        assert_eq!(a.dependent, Some(Dependent::Destroy));
    }

    #[test]
    fn validator_counts_group_by_kind() {
        let m = ModelDef::build("M")
            .string("a")
            .string("b")
            .validates_presence_of("a")
            .validates_presence_of("b")
            .validates_uniqueness_of("a")
            .finish();
        let counts = m.validator_counts();
        assert!(counts.contains(&("validates_presence_of", 2)));
        assert!(counts.contains(&("validates_uniqueness_of", 1)));
    }

    #[test]
    fn belongs_to_with_fk_lookup() {
        let m = ModelDef::build("User").belongs_to("department").finish();
        assert!(m.belongs_to_with_fk("department_id").is_some());
        assert!(m.belongs_to_with_fk("other_id").is_none());
    }
}
