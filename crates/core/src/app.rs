//! The application object: a model registry bound to a database.

use crate::errors::{OrmError, OrmResult};
use crate::model::{Association, ModelDef};
use crate::record::Record;
use crate::session::Session;
use feral_db::{ColumnDef, Database, Datum, IsolationLevel, OnDelete, Predicate, TableSchema};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A running application: the set of defined models plus the shared
/// database handle. Cloning is cheap; all clones share state (like Rails
/// worker processes sharing one database).
#[derive(Clone)]
pub struct App {
    pub(crate) inner: Arc<AppInner>,
}

pub(crate) struct AppInner {
    pub(crate) db: Database,
    pub(crate) models: RwLock<HashMap<String, Arc<ModelDef>>>,
    /// Artificial delay injected between a save's validation pass and its
    /// write, modelling controller/VM/network latency between the SQL
    /// statements of a production deployment. Widens the race window the
    /// paper's experiments exercise; zero by default.
    pub(crate) validation_write_delay: RwLock<Duration>,
}

impl App {
    /// Create an application over `db`.
    pub fn new(db: Database) -> App {
        App {
            inner: Arc::new(AppInner {
                db,
                models: RwLock::new(HashMap::new()),
                validation_write_delay: RwLock::new(Duration::ZERO),
            }),
        }
    }

    /// Create an application over a fresh in-memory database (Read
    /// Committed default, like PostgreSQL).
    pub fn in_memory() -> App {
        App::new(Database::in_memory())
    }

    /// The shared database handle.
    pub fn db(&self) -> &Database {
        &self.inner.db
    }

    /// Configure the validate→write delay (see `AppInner` docs).
    pub fn set_validation_write_delay(&self, d: Duration) {
        *self.inner.validation_write_delay.write() = d;
    }

    /// Register a model and create its backing table (the analogue of
    /// running the model's creation migration).
    pub fn define(&self, def: ModelDef) -> OrmResult<Arc<ModelDef>> {
        let def = Arc::new(def);
        {
            let mut models = self.inner.models.write();
            if models.contains_key(&def.name) {
                return Err(OrmError::Config(format!(
                    "model {} already defined",
                    def.name
                )));
            }
            models.insert(def.name.clone(), def.clone());
        }
        let columns: Vec<ColumnDef> = def
            .column_order()
            .into_iter()
            .map(|(name, ty)| ColumnDef::new(name, ty))
            .collect();
        self.inner
            .db
            .create_table(TableSchema::new(def.table.clone(), columns))?;
        Ok(def)
    }

    /// Register a model against an existing (e.g. WAL-recovered) table,
    /// creating the table only when it is missing — the reopen path for
    /// durable applications.
    pub fn define_or_attach(&self, def: ModelDef) -> OrmResult<Arc<ModelDef>> {
        if self.inner.db.table_id(&def.table).is_ok() {
            let def = Arc::new(def);
            let mut models = self.inner.models.write();
            if models.contains_key(&def.name) {
                return Err(OrmError::Config(format!(
                    "model {} already defined",
                    def.name
                )));
            }
            // sanity-check the recovered schema against the definition
            let info = self.inner.db.table_info(&def.table)?;
            for (name, _) in def.column_order() {
                if info.schema.column_index(&name).is_err() {
                    return Err(OrmError::Config(format!(
                        "recovered table {} lacks column {name} declared by model {}",
                        def.table, def.name
                    )));
                }
            }
            models.insert(def.name.clone(), def.clone());
            return Ok(def);
        }
        self.define(def)
    }

    /// Look up a model by class name.
    pub fn model(&self, name: &str) -> OrmResult<Arc<ModelDef>> {
        self.inner
            .models
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| OrmError::Config(format!("unknown model {name}")))
    }

    /// All registered models (registration order not guaranteed).
    pub fn models(&self) -> Vec<Arc<ModelDef>> {
        self.inner.models.read().values().cloned().collect()
    }

    /// Instantiate a new, blank record of `model`.
    pub fn new_record(&self, model: &str) -> OrmResult<Record> {
        Ok(Record::new(self.model(model)?))
    }

    /// Open a session (one worker's connection) at the database's default
    /// isolation level.
    pub fn session(&self) -> Session {
        Session::new(self.clone(), self.inner.db.default_isolation())
    }

    /// Open a session at an explicit isolation level.
    pub fn session_with(&self, isolation: IsolationLevel) -> Session {
        Session::new(self.clone(), isolation)
    }

    // --- migrations ---------------------------------------------------
    //
    // Deliberately separate from model definitions: as the paper observes
    // (§5.2 footnote 10), Rails schema changes like unique indexes live in
    // migrations, apart from the domain model.

    /// Migration: add an index on `model.field`, optionally `unique: true`
    /// — the in-database fix for feral uniqueness validations.
    pub fn add_index(&self, model: &str, fields: &[&str], unique: bool) -> OrmResult<()> {
        let def = self.model(model)?;
        self.inner.db.create_index(&def.table, fields, unique)?;
        Ok(())
    }

    /// Migration: add an in-database foreign key backing a `belongs_to`
    /// association (what the `foreigner`/`schema_plus` gems provide).
    pub fn add_foreign_key(
        &self,
        child_model: &str,
        association: &str,
        on_delete: OnDelete,
    ) -> OrmResult<()> {
        let child = self.model(child_model)?;
        let assoc = child
            .association(association)
            .ok_or_else(|| {
                OrmError::Config(format!("{child_model} has no association {association}"))
            })?
            .clone();
        let parent = self.model(&assoc.target)?;
        self.inner.db.add_foreign_key(
            &child.table,
            &assoc.foreign_key,
            &parent.table,
            on_delete,
        )?;
        Ok(())
    }

    // --- helpers shared by the persistence/validation layers -----------

    /// Build an engine predicate for `(attribute, value)` equalities on
    /// `model` (NULL values become `IS NULL` tests, as Rails generates).
    pub(crate) fn conds_to_pred(
        &self,
        model: &ModelDef,
        conds: &[(String, Datum)],
    ) -> OrmResult<Predicate> {
        let mut pred = Predicate::True;
        for (field, value) in conds {
            let col = model
                .column_index(field)
                .ok_or_else(|| OrmError::Config(format!("{} has no column {field}", model.name)))?;
            let clause = if value.is_null() {
                Predicate::IsNull(col)
            } else {
                Predicate::eq(col, value.clone())
            };
            pred = pred.and(clause);
        }
        Ok(pred)
    }

    /// Resolve an association target model.
    pub(crate) fn target_of(&self, assoc: &Association) -> OrmResult<Arc<ModelDef>> {
        self.model(&assoc.target)
    }
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.inner.models.read().keys().cloned().collect();
        f.debug_struct("App").field("models", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelDef;

    #[test]
    fn define_creates_table_with_bookkeeping_columns() {
        let app = App::in_memory();
        app.define(ModelDef::build("User").string("name").finish())
            .unwrap();
        let info = app.db().table_info("users").unwrap();
        let names: Vec<&str> = info
            .schema
            .columns
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["id", "name", "created_at", "updated_at"]);
    }

    #[test]
    fn duplicate_model_rejected() {
        let app = App::in_memory();
        app.define(ModelDef::build("User").finish()).unwrap();
        assert!(matches!(
            app.define(ModelDef::build("User").finish()),
            Err(OrmError::Config(_))
        ));
    }

    #[test]
    fn unknown_model_is_config_error() {
        let app = App::in_memory();
        assert!(matches!(app.model("Ghost"), Err(OrmError::Config(_))));
        assert!(matches!(app.new_record("Ghost"), Err(OrmError::Config(_))));
    }

    #[test]
    fn add_index_migration() {
        let app = App::in_memory();
        app.define(ModelDef::build("User").string("name").finish())
            .unwrap();
        app.add_index("User", &["name"], true).unwrap();
    }

    #[test]
    fn add_foreign_key_requires_association() {
        let app = App::in_memory();
        app.define(ModelDef::build("Department").string("name").finish())
            .unwrap();
        app.define(ModelDef::build("User").belongs_to("department").finish())
            .unwrap();
        app.add_foreign_key("User", "department", OnDelete::Cascade)
            .unwrap();
        assert_eq!(app.db().foreign_key_count(), 1);
        assert!(matches!(
            app.add_foreign_key("User", "nope", OnDelete::Cascade),
            Err(OrmError::Config(_))
        ));
    }
}
