//! A small English inflector implementing the ActiveSupport conventions the
//! ORM layer relies on: `CamelCase` → `snake_case`, pluralization for table
//! names, and foreign-key derivation (`Department` → `department_id`).

/// Convert `CamelCase` (or `camelCase`) to `snake_case`.
pub fn underscore(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c.is_ascii_uppercase() {
            let prev_lower =
                i > 0 && (chars[i - 1].is_ascii_lowercase() || chars[i - 1].is_ascii_digit());
            let next_lower = chars.get(i + 1).is_some_and(|n| n.is_ascii_lowercase());
            if i > 0 && (prev_lower || (next_lower && chars[i - 1] != '_')) {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else if c == '-' || c == ' ' {
            out.push('_');
        } else {
            out.push(c);
        }
    }
    out
}

/// Convert `snake_case` to `CamelCase`.
pub fn camelize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut upper_next = true;
    for c in name.chars() {
        if c == '_' {
            upper_next = true;
        } else if upper_next {
            out.push(c.to_ascii_uppercase());
            upper_next = false;
        } else {
            out.push(c);
        }
    }
    out
}

/// Irregular plural forms the corpus applications actually use.
const IRREGULAR: &[(&str, &str)] = &[
    ("person", "people"),
    ("man", "men"),
    ("woman", "women"),
    ("child", "children"),
    ("datum", "data"),
    ("medium", "media"),
    ("status", "statuses"),
    ("address", "addresses"),
];

/// Words with identical singular and plural.
const UNCOUNTABLE: &[&str] = &[
    "equipment",
    "information",
    "money",
    "species",
    "series",
    "sheep",
    "stock",
];

/// Pluralize an English word the way Rails names tables.
pub fn pluralize(word: &str) -> String {
    let lower = word.to_ascii_lowercase();
    if UNCOUNTABLE.contains(&lower.as_str()) {
        return word.to_string();
    }
    for (s, p) in IRREGULAR {
        if lower == *s {
            return p.to_string();
        }
        if lower == *p {
            return p.to_string();
        }
    }
    if let Some(stem) = word.strip_suffix('y') {
        let prev = stem.chars().last();
        if prev.is_some_and(|c| !"aeiou".contains(c)) {
            return format!("{stem}ies");
        }
    }
    if word.ends_with('s')
        || word.ends_with('x')
        || word.ends_with('z')
        || word.ends_with("ch")
        || word.ends_with("sh")
    {
        return format!("{word}es");
    }
    if let Some(stem) = word.strip_suffix('f') {
        return format!("{stem}ves");
    }
    if let Some(stem) = word.strip_suffix("fe") {
        return format!("{stem}ves");
    }
    format!("{word}s")
}

/// Singularize an English word (inverse of [`pluralize`] for the forms the
/// ORM produces).
pub fn singularize(word: &str) -> String {
    let lower = word.to_ascii_lowercase();
    for (s, p) in IRREGULAR {
        if lower == *p {
            return s.to_string();
        }
        if lower == *s {
            return s.to_string();
        }
    }
    if UNCOUNTABLE.contains(&lower.as_str()) {
        return word.to_string();
    }
    if let Some(stem) = word.strip_suffix("ies") {
        return format!("{stem}y");
    }
    if let Some(stem) = word.strip_suffix("ves") {
        return format!("{stem}f");
    }
    for suffix in ["ches", "shes", "xes", "ses", "zes"] {
        if let Some(stem) = word.strip_suffix("es") {
            if word.ends_with(suffix) {
                return stem.to_string();
            }
        }
    }
    if let Some(stem) = word.strip_suffix('s') {
        if !word.ends_with("ss") {
            return stem.to_string();
        }
    }
    word.to_string()
}

/// The table name ActiveRecord derives from a model class name:
/// `Department` → `departments`, `LineItem` → `line_items`.
pub fn table_name(model: &str) -> String {
    pluralize(&underscore(model))
}

/// The foreign-key column a `belongs_to :assoc` produces:
/// `department` → `department_id`.
pub fn foreign_key(assoc: &str) -> String {
    format!("{}_id", underscore(assoc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underscore_handles_camel_and_acronyms() {
        assert_eq!(underscore("Department"), "department");
        assert_eq!(underscore("LineItem"), "line_item");
        assert_eq!(underscore("lineItem"), "line_item");
        assert_eq!(underscore("HTTPServer"), "http_server");
        assert_eq!(underscore("already_snake"), "already_snake");
    }

    #[test]
    fn camelize_roundtrip() {
        assert_eq!(camelize("line_item"), "LineItem");
        assert_eq!(camelize(&underscore("StockLocation")), "StockLocation");
    }

    #[test]
    fn pluralize_rules() {
        assert_eq!(pluralize("user"), "users");
        assert_eq!(pluralize("category"), "categories");
        assert_eq!(pluralize("boy"), "boys");
        assert_eq!(pluralize("box"), "boxes");
        assert_eq!(pluralize("branch"), "branches");
        assert_eq!(pluralize("person"), "people");
        assert_eq!(pluralize("status"), "statuses");
        assert_eq!(pluralize("leaf"), "leaves");
        assert_eq!(pluralize("sheep"), "sheep");
    }

    #[test]
    fn singularize_inverts_pluralize() {
        for w in [
            "user",
            "category",
            "box",
            "branch",
            "person",
            "leaf",
            "department",
        ] {
            assert_eq!(singularize(&pluralize(w)), w, "roundtrip failed for {w}");
        }
    }

    #[test]
    fn table_and_fk_names() {
        assert_eq!(table_name("Department"), "departments");
        assert_eq!(table_name("LineItem"), "line_items");
        assert_eq!(table_name("Person"), "people");
        assert_eq!(foreign_key("department"), "department_id");
        assert_eq!(foreign_key("StockLocation"), "stock_location_id");
    }
}
