//! Record instances: an attribute map bound to a model definition.

use crate::errors::Errors;
use crate::model::ModelDef;
use feral_db::{Datum, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

/// One model instance — "an object that wraps a row in a database table,
/// encapsulates the database access, and adds domain logic" (Fowler, quoted
/// in the paper's §2.1).
#[derive(Debug, Clone)]
pub struct Record {
    /// The model this record instantiates.
    pub model: Arc<ModelDef>,
    attrs: HashMap<String, Datum>,
    persisted: bool,
    destroyed: bool,
    /// Validation errors from the last save attempt.
    pub errors: Errors,
}

impl Record {
    /// A new, unpersisted record with all attributes NULL.
    pub fn new(model: Arc<ModelDef>) -> Self {
        let mut attrs = HashMap::new();
        for (name, _) in model.column_order() {
            attrs.insert(name, Datum::Null);
        }
        Record {
            model,
            attrs,
            persisted: false,
            destroyed: false,
            errors: Errors::new(),
        }
    }

    /// Materialize a record from a stored tuple.
    pub fn from_tuple(model: Arc<ModelDef>, tuple: &Tuple) -> Self {
        let mut attrs = HashMap::new();
        for (i, (name, _)) in model.column_order().into_iter().enumerate() {
            attrs.insert(name, tuple.get(i).cloned().unwrap_or(Datum::Null));
        }
        Record {
            model,
            attrs,
            persisted: true,
            destroyed: false,
            errors: Errors::new(),
        }
    }

    /// Serialize to the backing table's column order.
    pub fn to_tuple(&self) -> Tuple {
        self.model
            .column_order()
            .into_iter()
            .map(|(name, _)| self.attrs.get(&name).cloned().unwrap_or(Datum::Null))
            .collect()
    }

    /// Get an attribute (NULL if unset). Virtual attributes (e.g.
    /// `password_confirmation`) are supported: any name can be set.
    pub fn get(&self, name: &str) -> Datum {
        self.attrs.get(name).cloned().unwrap_or(Datum::Null)
    }

    /// Set an attribute.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Datum>) -> &mut Self {
        self.attrs.insert(name.into(), value.into());
        self
    }

    /// Set several attributes at once.
    pub fn assign(&mut self, pairs: &[(&str, Datum)]) -> &mut Self {
        for (k, v) in pairs {
            self.attrs.insert((*k).to_string(), v.clone());
        }
        self
    }

    /// The primary key, if assigned.
    pub fn id(&self) -> Option<i64> {
        self.get("id").as_int()
    }

    /// Whether this record is backed by a database row.
    pub fn is_persisted(&self) -> bool {
        self.persisted
    }

    /// Whether `destroy` succeeded on this record.
    pub fn is_destroyed(&self) -> bool {
        self.destroyed
    }

    /// Whether the last validation pass found no errors.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }

    /// Mark persisted (used by the persistence layer after insert).
    pub(crate) fn mark_persisted(&mut self) {
        self.persisted = true;
    }

    /// Mark destroyed.
    pub(crate) fn mark_destroyed(&mut self) {
        self.destroyed = true;
        self.persisted = false;
    }

    /// Overwrite attributes from a freshly read tuple (reload / lock).
    pub(crate) fn refresh_from(&mut self, tuple: &Tuple) {
        for (i, (name, _)) in self.model.column_order().into_iter().enumerate() {
            self.attrs
                .insert(name, tuple.get(i).cloned().unwrap_or(Datum::Null));
        }
        self.persisted = true;
    }

    /// Text rendering for diagnostics.
    pub fn describe(&self) -> String {
        let mut parts: Vec<String> = self
            .model
            .column_order()
            .iter()
            .map(|(n, _)| format!("{n}: {}", self.get(n)))
            .collect();
        parts.insert(0, format!("#<{}", self.model.name));
        format!("{}>", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelDef;

    fn model() -> Arc<ModelDef> {
        Arc::new(
            ModelDef::build("User")
                .string("name")
                .integer("age")
                .without_timestamps()
                .finish(),
        )
    }

    #[test]
    fn new_record_is_blank_and_unpersisted() {
        let r = Record::new(model());
        assert!(!r.is_persisted());
        assert!(r.get("name").is_null());
        assert_eq!(r.id(), None);
    }

    #[test]
    fn tuple_roundtrip() {
        let m = model();
        let mut r = Record::new(m.clone());
        r.set("name", "peter").set("age", 30i64);
        let t = r.to_tuple();
        assert_eq!(t.len(), 3); // id, name, age
        let r2 = Record::from_tuple(m, &t);
        assert!(r2.is_persisted());
        assert_eq!(r2.get("name"), Datum::text("peter"));
        assert_eq!(r2.get("age"), Datum::Int(30));
    }

    #[test]
    fn virtual_attributes_are_settable() {
        let mut r = Record::new(model());
        r.set("password_confirmation", "secret");
        assert_eq!(r.get("password_confirmation"), Datum::text("secret"));
        // and do not leak into the tuple
        assert_eq!(r.to_tuple().len(), 3);
    }

    #[test]
    fn assign_many() {
        let mut r = Record::new(model());
        r.assign(&[("name", Datum::text("a")), ("age", Datum::Int(1))]);
        assert_eq!(r.get("age"), Datum::Int(1));
    }

    #[test]
    fn describe_contains_fields() {
        let mut r = Record::new(model());
        r.set("name", "x");
        let d = r.describe();
        assert!(d.contains("#<User"));
        assert!(d.contains("name: 'x'"));
    }
}
