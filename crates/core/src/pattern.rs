//! A small regular-expression engine for `validates_format_of`.
//!
//! Rails format validations are regexes; since this reproduction uses no
//! external regex crate, this module implements the subset those
//! validations actually need: literals, `.`, character classes
//! (`[a-z0-9_]`, negated `[^...]`), the escapes `\d \w \s \. \\ \-`,
//! quantifiers `* + ?` and bounded `{m,n}`, alternation `|`, grouping
//! `( )`, and anchors `^ $` (with Ruby's `\A \z` treated identically).
//! Matching is by backtracking over the parsed AST — plenty for
//! validation-sized inputs.

use std::fmt;

/// A parsed pattern, ready to match.
#[derive(Debug, Clone)]
pub struct Pattern {
    source: String,
    root: Node,
    anchored_start: bool,
    anchored_end: bool,
}

/// Errors from pattern parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError(pub String);

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern: {}", self.0)
    }
}
impl std::error::Error for PatternError {}

#[derive(Debug, Clone)]
enum Node {
    /// Sequence of nodes.
    Seq(Vec<Node>),
    /// Alternation.
    Alt(Vec<Node>),
    /// Single-character matcher.
    Class(CharClass),
    /// Quantified node: min, max (None = unbounded).
    Repeat(Box<Node>, usize, Option<usize>),
}

#[derive(Debug, Clone)]
enum CharClass {
    Literal(char),
    Any,
    Digit,
    Word,
    Space,
    Set { negated: bool, items: Vec<SetItem> },
}

#[derive(Debug, Clone)]
enum SetItem {
    Char(char),
    Range(char, char),
    Digit,
    Word,
    Space,
}

impl CharClass {
    fn matches(&self, c: char) -> bool {
        match self {
            CharClass::Literal(l) => *l == c,
            CharClass::Any => c != '\n',
            CharClass::Digit => c.is_ascii_digit(),
            CharClass::Word => c.is_alphanumeric() || c == '_',
            CharClass::Space => c.is_whitespace(),
            CharClass::Set { negated, items } => {
                let hit = items.iter().any(|i| match i {
                    SetItem::Char(x) => *x == c,
                    SetItem::Range(a, b) => *a <= c && c <= *b,
                    SetItem::Digit => c.is_ascii_digit(),
                    SetItem::Word => c.is_alphanumeric() || c == '_',
                    SetItem::Space => c.is_whitespace(),
                });
                hit != *negated
            }
        }
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            chars: src.chars().collect(),
            pos: 0,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn err(&self, msg: &str) -> PatternError {
        PatternError(format!("{msg} at {} in {:?}", self.pos, self.src))
    }

    fn parse_alt(&mut self) -> Result<Node, PatternError> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn parse_seq(&mut self) -> Result<Node, PatternError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            items.push(self.parse_quantifier(atom)?);
        }
        Ok(Node::Seq(items))
    }

    fn parse_quantifier(&mut self, atom: Node) -> Result<Node, PatternError> {
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, None))
            }
            Some('+') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 1, None))
            }
            Some('?') => {
                self.bump();
                Ok(Node::Repeat(Box::new(atom), 0, Some(1)))
            }
            Some('{') => {
                self.bump();
                let mut min = String::new();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    min.push(self.bump().unwrap());
                }
                let min: usize = min.parse().map_err(|_| self.err("bad {m,n}"))?;
                let max = if self.peek() == Some(',') {
                    self.bump();
                    let mut max = String::new();
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        max.push(self.bump().unwrap());
                    }
                    if max.is_empty() {
                        None
                    } else {
                        Some(max.parse().map_err(|_| self.err("bad {m,n}"))?)
                    }
                } else {
                    Some(min)
                };
                if self.bump() != Some('}') {
                    return Err(self.err("unterminated {m,n}"));
                }
                Ok(Node::Repeat(Box::new(atom), min, max))
            }
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Node, PatternError> {
        match self.bump() {
            Some('(') => {
                // ignore non-capturing marker
                if self.peek() == Some('?') {
                    self.bump();
                    if self.peek() == Some(':') {
                        self.bump();
                    } else {
                        return Err(self.err("unsupported group flag"));
                    }
                }
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unterminated group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_set(),
            Some('.') => Ok(Node::Class(CharClass::Any)),
            Some('\\') => {
                let c = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                Ok(Node::Class(match c {
                    'd' => CharClass::Digit,
                    'w' => CharClass::Word,
                    's' => CharClass::Space,
                    'A' | 'z' | 'Z' | 'b' => {
                        return Err(self.err("anchors only supported at pattern ends"))
                    }
                    other => CharClass::Literal(other),
                }))
            }
            Some(c) if c == '*' || c == '+' || c == '?' => Err(self.err("dangling quantifier")),
            Some(c) => Ok(Node::Class(CharClass::Literal(c))),
            None => Err(self.err("unexpected end")),
        }
    }

    fn parse_set(&mut self) -> Result<Node, PatternError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated class")),
                Some(']') if !items.is_empty() || negated => break,
                Some(']') => break,
                Some('\\') => {
                    let c = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                    items.push(match c {
                        'd' => SetItem::Digit,
                        'w' => SetItem::Word,
                        's' => SetItem::Space,
                        other => SetItem::Char(other),
                    });
                }
                Some(c) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.bump(); // '-'
                        let hi = self.bump().unwrap();
                        let hi = if hi == '\\' {
                            self.bump().ok_or_else(|| self.err("dangling escape"))?
                        } else {
                            hi
                        };
                        items.push(SetItem::Range(c, hi));
                    } else {
                        items.push(SetItem::Char(c));
                    }
                }
            }
        }
        Ok(Node::Class(CharClass::Set { negated, items }))
    }
}

impl Pattern {
    /// Compile a pattern. Leading `^`/`\A` and trailing `$`/`\z` anchor the
    /// match; otherwise the pattern may match anywhere in the input (Ruby
    /// `=~` semantics).
    pub fn compile(src: &str) -> Result<Pattern, PatternError> {
        let mut body = src;
        let mut anchored_start = false;
        let mut anchored_end = false;
        for prefix in ["\\A", "^"] {
            if let Some(rest) = body.strip_prefix(prefix) {
                anchored_start = true;
                body = rest;
                break;
            }
        }
        for suffix in ["\\z", "\\Z", "$"] {
            if let Some(rest) = body.strip_suffix(suffix) {
                // don't treat an escaped dollar (`\$`) as an anchor
                if suffix == "$" && rest.ends_with('\\') {
                    continue;
                }
                anchored_end = true;
                body = rest;
                break;
            }
        }
        let mut parser = Parser::new(body);
        let root = parser.parse_alt()?;
        if parser.pos != parser.chars.len() {
            return Err(parser.err("trailing characters"));
        }
        Ok(Pattern {
            source: src.to_string(),
            root,
            anchored_start,
            anchored_end,
        })
    }

    /// The original pattern source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether the pattern matches `input` (respecting anchors).
    pub fn is_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        let starts: Vec<usize> = if self.anchored_start {
            vec![0]
        } else {
            (0..=chars.len()).collect()
        };
        for start in starts {
            let mut matched = false;
            match_node(&self.root, &chars, start, &mut |end| {
                if !self.anchored_end || end == chars.len() {
                    matched = true;
                    true // stop
                } else {
                    false
                }
            });
            if matched {
                return true;
            }
        }
        false
    }
}

/// Backtracking matcher: calls `k(end)` for every end position the node can
/// match to from `pos`; `k` returns `true` to stop the search.
fn match_node(node: &Node, input: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match node {
        Node::Seq(items) => match_seq(items, input, pos, k),
        Node::Alt(branches) => {
            for b in branches {
                if match_node(b, input, pos, k) {
                    return true;
                }
            }
            false
        }
        Node::Class(c) => {
            if pos < input.len() && c.matches(input[pos]) {
                k(pos + 1)
            } else {
                false
            }
        }
        Node::Repeat(inner, min, max) => match_repeat(inner, *min, *max, input, pos, 0, k),
    }
}

fn match_seq(items: &[Node], input: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match items.split_first() {
        None => k(pos),
        Some((first, rest)) => match_node(first, input, pos, &mut |next| {
            match_seq(rest, input, next, k)
        }),
    }
}

fn match_repeat(
    inner: &Node,
    min: usize,
    max: Option<usize>,
    input: &[char],
    pos: usize,
    count: usize,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    // greedy: try one more repetition first
    if max.is_none_or(|m| count < m) {
        let more = match_node(inner, input, pos, &mut |next| {
            // guard against zero-width infinite loops
            if next == pos {
                return false;
            }
            match_repeat(inner, min, max, input, next, count + 1, k)
        });
        if more {
            return true;
        }
    }
    if count >= min {
        k(pos)
    } else {
        false
    }
}

/// The e-mail pattern `validates_email` uses (a simplified RFC pattern, the
/// same one the `validates_email_format_of` gem ships).
pub fn email_pattern() -> Pattern {
    Pattern::compile(r"^[\w.%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}$").expect("static pattern")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(p: &str, s: &str) -> bool {
        Pattern::compile(p).unwrap().is_match(s)
    }

    #[test]
    fn literals_and_anchors() {
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
        assert!(m("abc", "xxabcxx")); // unanchored searches
        assert!(!m("^abc", "xabc"));
        assert!(m(r"\Aabc\z", "abc"));
    }

    #[test]
    fn classes_and_escapes() {
        assert!(m(r"^\d+$", "12345"));
        assert!(!m(r"^\d+$", "12a45"));
        assert!(m(r"^\w+$", "ab_1"));
        assert!(m(r"^a\.b$", "a.b"));
        assert!(!m(r"^a\.b$", "axb"));
        assert!(m("^a.b$", "axb"));
    }

    #[test]
    fn sets_ranges_negation() {
        assert!(m("^[a-z]+$", "abc"));
        assert!(!m("^[a-z]+$", "aBc"));
        assert!(m("^[A-Za-z0-9_]+$", "Mix_3d"));
        assert!(m("^[^0-9]+$", "abc!"));
        assert!(!m("^[^0-9]+$", "ab1"));
        assert!(m(r"^[\d-]+$", "1-2-3"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("^a*$", ""));
        assert!(m("^a*$", "aaaa"));
        assert!(!m("^a+$", ""));
        assert!(m("^ab?c$", "ac"));
        assert!(m("^ab?c$", "abc"));
        assert!(m("^a{2,3}$", "aa"));
        assert!(m("^a{2,3}$", "aaa"));
        assert!(!m("^a{2,3}$", "a"));
        assert!(!m("^a{2,3}$", "aaaa"));
        assert!(m("^a{2}$", "aa"));
        assert!(m("^[a-z]{2,}$", "abcd"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(cat|dog)$", "cat"));
        assert!(m("^(cat|dog)$", "dog"));
        assert!(!m("^(cat|dog)$", "cow"));
        assert!(m("^(ab)+$", "ababab"));
        assert!(m("^(?:ab)+c$", "ababc"));
    }

    #[test]
    fn email_pattern_accepts_and_rejects() {
        let p = email_pattern();
        for good in [
            "a@b.co",
            "first.last+tag@example.org",
            "x_1%y@sub.domain.io",
        ] {
            assert!(p.is_match(good), "{good} should match");
        }
        for bad in ["", "plain", "a@b", "@b.com", "a b@c.com", "a@b.c"] {
            assert!(!p.is_match(bad), "{bad} should not match");
        }
    }

    #[test]
    fn zero_width_repeat_terminates() {
        // (a?)* could loop forever on a naive engine
        assert!(m("^(a?)*$", "aaa"));
        assert!(m("^(a?)*$", ""));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Pattern::compile("a{b}").is_err());
        assert!(Pattern::compile("(abc").is_err());
        assert!(Pattern::compile("[abc").is_err());
        assert!(Pattern::compile("*a").is_err());
    }

    #[test]
    fn credit_card_and_zip_patterns() {
        // the kinds of format validations found in the corpus
        assert!(m(r"^\d{4}-\d{4}-\d{4}-\d{4}$", "1234-5678-9012-3456"));
        assert!(m(r"^\d{5}(-\d{4})?$", "94720"));
        assert!(m(r"^\d{5}(-\d{4})?$", "94720-1234"));
        assert!(!m(r"^\d{5}(-\d{4})?$", "9472"));
    }
}
