//! ORM error and validation-message types.

use feral_db::DbError;
use std::fmt;

/// Per-record validation errors, mirroring `ActiveModel::Errors`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Errors {
    items: Vec<(String, String)>,
}

impl Errors {
    /// No errors.
    pub fn new() -> Self {
        Errors::default()
    }

    /// Record an error on `field` with `message`.
    pub fn add(&mut self, field: impl Into<String>, message: impl Into<String>) {
        self.items.push((field.into(), message.into()));
    }

    /// Whether any error was recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of errors.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Errors recorded on `field`.
    pub fn on(&self, field: &str) -> Vec<&str> {
        self.items
            .iter()
            .filter(|(f, _)| f == field)
            .map(|(_, m)| m.as_str())
            .collect()
    }

    /// Rails-style full messages: `"Name has already been taken"`.
    pub fn full_messages(&self) -> Vec<String> {
        self.items
            .iter()
            .map(|(f, m)| {
                let mut field = f.replace('_', " ");
                if let Some(c) = field.get_mut(0..1) {
                    let upper = c.to_uppercase();
                    field.replace_range(0..1, &upper);
                }
                format!("{field} {m}")
            })
            .collect()
    }

    /// Clear all errors (run before each validation pass).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterate `(field, message)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.items.iter().map(|(f, m)| (f.as_str(), m.as_str()))
    }
}

impl fmt::Display for Errors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.full_messages().join(", "))
    }
}

/// Every way an ORM operation can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum OrmError {
    /// `save!` on an invalid record (`ActiveRecord::RecordInvalid`).
    RecordInvalid(Errors),
    /// `find` missed (`ActiveRecord::RecordNotFound`).
    RecordNotFound(String),
    /// Optimistic locking conflict (`ActiveRecord::StaleObjectError`).
    StaleObject(String),
    /// `destroy` refused by a `dependent: :restrict` association.
    RecordNotDestroyed(String),
    /// Underlying database error (constraint violation, serialization
    /// failure, lock timeout, ...).
    Db(DbError),
    /// Model/definition misuse (unknown model, unknown attribute, ...).
    Config(String),
}

impl fmt::Display for OrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrmError::RecordInvalid(e) => write!(f, "record invalid: {e}"),
            OrmError::RecordNotFound(m) => write!(f, "record not found: {m}"),
            OrmError::StaleObject(m) => write!(f, "stale object error: {m}"),
            OrmError::RecordNotDestroyed(m) => write!(f, "record not destroyed: {m}"),
            OrmError::Db(e) => write!(f, "database error: {e}"),
            OrmError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for OrmError {}

impl From<DbError> for OrmError {
    fn from(e: DbError) -> Self {
        OrmError::Db(e)
    }
}

impl OrmError {
    /// Whether retrying the whole operation may succeed (concurrency
    /// aborts and stale-object conflicts).
    pub fn is_retryable(&self) -> bool {
        match self {
            OrmError::Db(e) => e.is_retryable(),
            OrmError::StaleObject(_) => true,
            _ => false,
        }
    }
}

/// Result alias for ORM operations.
pub type OrmResult<T> = Result<T, OrmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_messages_render_like_rails() {
        let mut e = Errors::new();
        e.add("name", "has already been taken");
        e.add("stock_level", "must be greater than or equal to 0");
        assert_eq!(
            e.full_messages(),
            vec![
                "Name has already been taken",
                "Stock level must be greater than or equal to 0"
            ]
        );
        assert_eq!(e.on("name"), vec!["has already been taken"]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn retryable_classification() {
        assert!(OrmError::StaleObject("x".into()).is_retryable());
        assert!(OrmError::Db(DbError::WriteConflict).is_retryable());
        assert!(!OrmError::RecordInvalid(Errors::new()).is_retryable());
        assert!(!OrmError::Config("x".into()).is_retryable());
    }

    #[test]
    fn clear_resets() {
        let mut e = Errors::new();
        e.add("a", "b");
        assert!(!e.is_empty());
        e.clear();
        assert!(e.is_empty());
    }
}
