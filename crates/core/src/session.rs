//! Sessions: one worker's database connection and the ActiveRecord
//! persistence operations (`save`, `create`, `destroy`, finders, locking,
//! `Model.transaction` blocks).

use crate::app::App;
use crate::errors::{OrmError, OrmResult};
use crate::model::{AssocKind, CallbackKind, Dependent, ModelDef, Validator};
use crate::record::Record;
use crate::validations::{datum_fingerprint, validate_record, TxnQueryCtx};
use feral_db::{Datum, IsolationLevel, Predicate, RowRef, Transaction};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Microseconds since the epoch — what `created_at`/`updated_at` store.
fn now_micros() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as i64)
        .unwrap_or(0)
}

/// One worker's connection to the database.
///
/// Each HTTP request in a Rails deployment is served by exactly one worker
/// holding one connection; concurrency across requests exists *only* at
/// the database (paper §2.2). A `Session` is therefore the unit that
/// [`crate::App`]-level experiments hand to each worker thread.
pub struct Session {
    app: App,
    isolation: IsolationLevel,
    current: Option<Transaction>,
}

impl Session {
    pub(crate) fn new(app: App, isolation: IsolationLevel) -> Self {
        Session {
            app,
            isolation,
            current: None,
        }
    }

    /// The owning application.
    pub fn app(&self) -> &App {
        &self.app
    }

    /// This session's isolation level for new transactions.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Change the isolation level used by subsequent transactions.
    pub fn set_isolation(&mut self, isolation: IsolationLevel) {
        self.isolation = isolation;
    }

    /// Run `f` in the enclosing transaction if one is open, else in a
    /// fresh auto-committed transaction (Rails wraps every save this way).
    fn with_txn<T>(
        &mut self,
        f: impl FnOnce(&App, &mut Transaction) -> OrmResult<T>,
    ) -> OrmResult<T> {
        let app = self.app.clone();
        if let Some(tx) = self.current.as_mut() {
            return f(&app, tx);
        }
        let mut tx = app.db().txn().isolation(self.isolation).begin();
        match f(&app, &mut tx) {
            Ok(v) => {
                tx.commit()?;
                Ok(v)
            }
            Err(e) => {
                tx.rollback();
                Err(e)
            }
        }
    }

    /// `Model.transaction do ... end`: run `f` inside one database
    /// transaction; nested calls join the open transaction (Rails'
    /// default savepoint-less nesting).
    pub fn transaction<T>(&mut self, f: impl FnOnce(&mut Session) -> OrmResult<T>) -> OrmResult<T> {
        if self.current.is_some() {
            return f(self);
        }
        self.current = Some(self.app.db().txn().isolation(self.isolation).begin());
        let result = f(self);
        let tx = self.current.take();
        match (result, tx) {
            (Ok(v), Some(mut tx)) => {
                tx.commit()?;
                Ok(v)
            }
            (Err(e), Some(mut tx)) => {
                tx.rollback();
                Err(e)
            }
            (r, None) => r,
        }
    }

    /// `Model.transaction(requires_new: true)`: when an outer transaction
    /// is open, run `f` under a savepoint so its failure rolls back only
    /// the inner work; otherwise behaves like [`Session::transaction`].
    pub fn transaction_requires_new<T>(
        &mut self,
        f: impl FnOnce(&mut Session) -> OrmResult<T>,
    ) -> OrmResult<T> {
        if self.current.is_none() {
            return self.transaction(f);
        }
        let sp = self.current.as_mut().expect("checked above").savepoint();
        match f(self) {
            Ok(v) => Ok(v),
            Err(e) => {
                if let Some(tx) = self.current.as_mut() {
                    let _ = tx.rollback_to(sp);
                }
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// `record.save`: validate then write, inside one transaction.
    /// Returns `Ok(false)` (with `record.errors` populated) when a
    /// validation fails — Rails' non-bang semantics.
    pub fn save(&mut self, record: &mut Record) -> OrmResult<bool> {
        let delay = *self.app.inner.validation_write_delay.read();
        let was_new = !record.is_persisted();
        run_callbacks(record, CallbackKind::BeforeValidation);
        let save_span = feral_trace::start_phase(feral_trace::Phase::Save);
        let result = self.with_txn(|app, tx| {
            let validate_span = feral_trace::start_phase(feral_trace::Phase::Validate);
            let errors = validate_record(app, tx, record, 0)?;
            validate_span.finish(tx.id());
            if !errors.is_empty() {
                return Ok(Some(errors));
            }
            run_callbacks(record, CallbackKind::BeforeSave);
            feral_trace::record(
                feral_trace::EventKind::Site(feral_hooks::Site::OrmValidateWriteGap),
                tx.id(),
                0,
                0,
            );
            if feral_hooks::active() {
                // under a deterministic scheduler the validate→write race
                // window is a yield point, not a wall-clock sleep: the
                // scheduler decides who runs inside the gap
                feral_hooks::yield_point(feral_hooks::Site::OrmValidateWriteGap);
            } else if !delay.is_zero() {
                // models the controller/VM/network latency between the
                // validation SELECTs and the write in a real deployment
                std::thread::sleep(delay);
            }
            let write_span = feral_trace::start_phase(feral_trace::Phase::Write);
            write_record(app, tx, record)?;
            trace_save_writes(tx, record);
            write_span.finish(tx.id());
            if was_new {
                maintain_counter_caches(app, tx, record, 1)?;
                run_callbacks(record, CallbackKind::AfterCreate);
            }
            run_callbacks(record, CallbackKind::AfterSave);
            Ok(None)
        })?;
        save_span.finish(0);
        match result {
            Some(errors) => {
                record.errors = errors;
                Ok(false)
            }
            None => {
                record.errors.clear();
                Ok(true)
            }
        }
    }

    /// `record.save!`: like [`Session::save`] but an invalid record is an
    /// `ActiveRecord::RecordInvalid` error.
    pub fn save_strict(&mut self, record: &mut Record) -> OrmResult<()> {
        if self.save(record)? {
            Ok(())
        } else {
            Err(OrmError::RecordInvalid(record.errors.clone()))
        }
    }

    /// `Model.create(attrs)`: build, save (non-bang), return the record
    /// (check `is_persisted`/`errors` for the outcome).
    pub fn create(&mut self, model: &str, attrs: &[(&str, Datum)]) -> OrmResult<Record> {
        let mut record = self.app.new_record(model)?;
        record.assign(attrs);
        self.save(&mut record)?;
        Ok(record)
    }

    /// `Model.create!(attrs)`.
    pub fn create_strict(&mut self, model: &str, attrs: &[(&str, Datum)]) -> OrmResult<Record> {
        let mut record = self.app.new_record(model)?;
        record.assign(attrs);
        self.save_strict(&mut record)?;
        Ok(record)
    }

    /// `record.update(attrs)`: assign then save.
    pub fn update_attributes(
        &mut self,
        record: &mut Record,
        attrs: &[(&str, Datum)],
    ) -> OrmResult<bool> {
        record.assign(attrs);
        self.save(record)
    }

    /// `record.destroy`: run dependent-association logic **ferally** (in
    /// application code, per paper §5.3/Appendix C.4), then delete the row,
    /// all inside one transaction.
    pub fn destroy(&mut self, record: &mut Record) -> OrmResult<()> {
        let model = record.model.clone();
        let Some(id) = record.id() else {
            return Err(OrmError::Config("cannot destroy an unsaved record".into()));
        };
        run_callbacks(record, CallbackKind::BeforeDestroy);
        self.with_txn(|app, tx| {
            let mut visited = HashSet::new();
            destroy_in_txn(app, tx, &model, id, &mut visited)?;
            run_callbacks(record, CallbackKind::AfterDestroy);
            Ok(())
        })?;
        record.mark_destroyed();
        Ok(())
    }

    /// `record.delete`: bare row delete, **no** dependent callbacks.
    pub fn delete(&mut self, record: &mut Record) -> OrmResult<()> {
        let model = record.model.clone();
        let Some(id) = record.id() else {
            return Err(OrmError::Config("cannot delete an unsaved record".into()));
        };
        self.with_txn(|_, tx| {
            let rows = tx.scan(&model.table, &Predicate::eq(0, id))?;
            for (rref, _) in rows {
                tx.delete(&model.table, rref)?;
            }
            Ok(())
        })?;
        record.mark_destroyed();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Finders
    // ------------------------------------------------------------------

    /// `Model.find(id)` — `RecordNotFound` on a miss.
    pub fn find(&mut self, model: &str, id: i64) -> OrmResult<Record> {
        self.find_by(model, &[("id", Datum::Int(id))])?
            .ok_or_else(|| OrmError::RecordNotFound(format!("{model} with id={id}")))
    }

    /// `Model.find_by(attrs)` — `None` on a miss.
    pub fn find_by(&mut self, model: &str, conds: &[(&str, Datum)]) -> OrmResult<Option<Record>> {
        Ok(self.where_(model, conds)?.into_iter().next())
    }

    /// `Model.find_or_create_by(attrs)` — the classic racy Rails idiom:
    /// a `SELECT` probe followed by a create when nothing matched. Like
    /// Rails, this is **"prone to race conditions"** (its own docs):
    /// concurrent callers can both miss and both create. Pair with an
    /// in-database unique index and retry on
    /// [`feral_db::DbError::UniqueViolation`] for safety.
    pub fn find_or_create_by(&mut self, model: &str, conds: &[(&str, Datum)]) -> OrmResult<Record> {
        if let Some(existing) = self.find_by(model, conds)? {
            return Ok(existing);
        }
        self.create(model, conds)
    }

    /// `Model.where(attrs)` — all matching records.
    pub fn where_(&mut self, model: &str, conds: &[(&str, Datum)]) -> OrmResult<Vec<Record>> {
        let def = self.app.model(model)?;
        let owned: Vec<(String, Datum)> = conds
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        let app = self.app.clone();
        self.with_txn(move |_, tx| {
            let pred = app.conds_to_pred(&def, &owned)?;
            let rows = tx.scan(&def.table, &pred)?;
            Ok(rows
                .into_iter()
                .map(|(_, t)| Record::from_tuple(def.clone(), &t))
                .collect())
        })
    }

    /// `Model.all`.
    pub fn all(&mut self, model: &str) -> OrmResult<Vec<Record>> {
        self.where_(model, &[])
    }

    /// `Model.where(conds).order(field).limit(n)` — ordered, bounded
    /// queries. Pass `descending: true` for `.order(field: :desc)`.
    pub fn where_order_limit(
        &mut self,
        model: &str,
        conds: &[(&str, Datum)],
        order_field: &str,
        descending: bool,
        limit: Option<usize>,
    ) -> OrmResult<Vec<Record>> {
        let def = self.app.model(model)?;
        let col = def
            .column_index(order_field)
            .ok_or_else(|| OrmError::Config(format!("{model} has no column {order_field}")))?;
        let mut rows = self.where_(model, conds)?;
        rows.sort_by(|a, b| {
            let fa = a.to_tuple()[col].clone();
            let fb = b.to_tuple()[col].clone();
            let ord = fa.cmp(&fb);
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
        if let Some(n) = limit {
            rows.truncate(n);
        }
        Ok(rows)
    }

    /// `Model.where(conds).pluck(field)` — one datum per matching row.
    pub fn pluck(
        &mut self,
        model: &str,
        conds: &[(&str, Datum)],
        field: &str,
    ) -> OrmResult<Vec<Datum>> {
        let rows = self.where_(model, conds)?;
        Ok(rows.iter().map(|r| r.get(field)).collect())
    }

    /// `Model.where(conds).update_all(sets)` — direct bulk UPDATE,
    /// **skipping validations and callbacks** (the Rails footgun: stale
    /// counter caches, unvalidated data). Returns rows affected.
    pub fn update_all(
        &mut self,
        model: &str,
        conds: &[(&str, Datum)],
        sets: &[(&str, Datum)],
    ) -> OrmResult<usize> {
        let def = self.app.model(model)?;
        let owned_conds: Vec<(String, Datum)> = conds
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        let owned_sets: Vec<(usize, Datum)> = sets
            .iter()
            .map(|(k, v)| {
                def.column_index(k)
                    .map(|i| (i, v.clone()))
                    .ok_or_else(|| OrmError::Config(format!("{model} has no column {k}")))
            })
            .collect::<OrmResult<_>>()?;
        let app = self.app.clone();
        self.with_txn(move |_, tx| {
            let pred = app.conds_to_pred(&def, &owned_conds)?;
            let rows = tx.scan(&def.table, &pred)?;
            let n = rows.len();
            for (rref, tuple) in rows {
                let mut new = (*tuple).clone();
                for (i, v) in &owned_sets {
                    new[*i] = v.clone();
                }
                tx.update(&def.table, rref, new)?;
            }
            Ok(n)
        })
    }

    /// `Model.where(conds).delete_all` — direct bulk DELETE, skipping
    /// callbacks and dependent-association logic. Returns rows deleted.
    pub fn delete_all(&mut self, model: &str, conds: &[(&str, Datum)]) -> OrmResult<usize> {
        let def = self.app.model(model)?;
        let owned: Vec<(String, Datum)> = conds
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        let app = self.app.clone();
        self.with_txn(move |_, tx| {
            let pred = app.conds_to_pred(&def, &owned)?;
            Ok(tx.delete_where(&def.table, &pred)?)
        })
    }

    /// `Model.count`.
    pub fn count(&mut self, model: &str) -> OrmResult<usize> {
        let def = self.app.model(model)?;
        self.with_txn(|_, tx| Ok(tx.count(&def.table, &Predicate::True)?))
    }

    /// Load the records on the "many" side of `record.assoc`.
    pub fn associated(&mut self, record: &Record, assoc_name: &str) -> OrmResult<Vec<Record>> {
        let model = record.model.clone();
        let assoc = model
            .association(assoc_name)
            .ok_or_else(|| {
                OrmError::Config(format!("{} has no association {assoc_name}", model.name))
            })?
            .clone();
        match assoc.kind {
            AssocKind::BelongsTo => {
                let fk = record.get(&assoc.foreign_key);
                if fk.is_null() {
                    return Ok(vec![]);
                }
                self.where_(&assoc.target, &[("id", fk)])
            }
            AssocKind::HasOne | AssocKind::HasMany => {
                if let Some(through_name) = &assoc.through {
                    // has_many :through — join via the intermediate
                    let through = model
                        .association(through_name)
                        .ok_or_else(|| {
                            OrmError::Config(format!(
                                "{} has no association {through_name}",
                                model.name
                            ))
                        })?
                        .clone();
                    let intermediates = self.associated(record, &through.name)?;
                    let mut out = Vec::new();
                    for im in intermediates {
                        // the intermediate belongs_to the final target
                        let target_assoc = im
                            .model
                            .associations
                            .iter()
                            .find(|a| a.kind == AssocKind::BelongsTo && a.target == assoc.target)
                            .cloned();
                        if let Some(ta) = target_assoc {
                            out.extend(self.associated(&im, &ta.name)?);
                        }
                    }
                    return Ok(out);
                }
                let Some(id) = record.id() else {
                    return Ok(vec![]);
                };
                self.where_(
                    &assoc.target,
                    &[(assoc.foreign_key.as_str(), Datum::Int(id))],
                )
            }
        }
    }

    /// `record.reload`.
    pub fn reload(&mut self, record: &mut Record) -> OrmResult<()> {
        let model = record.model.clone();
        let Some(id) = record.id() else {
            return Err(OrmError::Config("cannot reload an unsaved record".into()));
        };
        let fresh = self.find(&model.name, id)?;
        record.refresh_from(&fresh.to_tuple());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Locking
    // ------------------------------------------------------------------

    /// `record.lock!`: pessimistic `SELECT ... FOR UPDATE` on the record's
    /// row, refreshing the in-memory attributes. Meaningful inside a
    /// [`Session::transaction`] block, where the lock is held to commit.
    pub fn lock(&mut self, record: &mut Record) -> OrmResult<()> {
        let model = record.model.clone();
        let Some(id) = record.id() else {
            return Err(OrmError::Config("cannot lock an unsaved record".into()));
        };
        let tuple = self.with_txn(|_, tx| {
            let rows = tx.select_for_update(&model.table, &Predicate::eq(0, id))?;
            rows.into_iter()
                .next()
                .map(|(_, t)| (*t).clone())
                .ok_or_else(|| OrmError::RecordNotFound(format!("{} with id={id}", model.name)))
        })?;
        record.refresh_from(&tuple);
        Ok(())
    }

    /// Run a custom read inside this session's transaction context — used
    /// by controller-style code that needs raw queries.
    pub fn query<T>(
        &mut self,
        f: impl FnOnce(&mut dyn crate::model::QueryCtx) -> OrmResult<T>,
    ) -> OrmResult<T> {
        self.with_txn(|app, tx| {
            let mut ctx = TxnQueryCtx { app, tx };
            f(&mut ctx)
        })
    }
}

/// Locate the committed row for `id`, returning its `RowRef` and tuple.
fn locate(
    tx: &mut Transaction,
    model: &ModelDef,
    id: i64,
) -> OrmResult<Option<(RowRef, feral_db::Tuple)>> {
    let rows = tx.scan(&model.table, &Predicate::eq(0, id))?;
    Ok(rows.into_iter().next().map(|(r, t)| (r, (*t).clone())))
}

/// Insert or update `record` (validations already passed).
fn write_record(app: &App, tx: &mut Transaction, record: &mut Record) -> OrmResult<()> {
    let model = record.model.clone();
    let now = now_micros();
    if !record.is_persisted() {
        if model.timestamps {
            record.set("created_at", Datum::Timestamp(now));
            record.set("updated_at", Datum::Timestamp(now));
        }
        if model.lock_version && record.get("lock_version").is_null() {
            record.set("lock_version", 0i64);
        }
        let rref = tx.insert(&model.table, record.to_tuple())?;
        let table_id = app.db().table_id(&model.table)?;
        if let Some(tuple) = tx.read_ref(table_id, rref) {
            record.set("id", tuple[0].clone());
        }
        record.mark_persisted();
        return Ok(());
    }
    let id = record
        .id()
        .ok_or_else(|| OrmError::Config("persisted record without id".into()))?;
    if model.lock_version {
        // Rails issues `UPDATE ... WHERE id = ? AND lock_version = ?` and
        // raises StaleObjectError when no row matches. The atomic
        // conditional update is modelled as a locked re-read + compare.
        let rows = tx.select_for_update(&model.table, &Predicate::eq(0, id))?;
        let Some((rref, current)) = rows.into_iter().next() else {
            return Err(OrmError::StaleObject(format!(
                "attempted to update a stale (deleted) {}",
                model.name
            )));
        };
        let lv_col = model
            .column_index("lock_version")
            .ok_or_else(|| OrmError::Config("lock_version column missing".into()))?;
        let mine = record.get("lock_version").as_int().unwrap_or(0);
        let theirs = current[lv_col].as_int().unwrap_or(0);
        if mine != theirs {
            return Err(OrmError::StaleObject(format!(
                "attempted to update a stale {} (lock_version {mine} != {theirs})",
                model.name
            )));
        }
        record.set("lock_version", mine + 1);
        if model.timestamps {
            record.set("updated_at", Datum::Timestamp(now));
        }
        tx.update(&model.table, rref, record.to_tuple())?;
        return Ok(());
    }
    let Some((rref, _)) = locate(tx, &model, id)? else {
        return Err(OrmError::RecordNotFound(format!(
            "{} with id={id} (row vanished before update)",
            model.name
        )));
    };
    if model.timestamps {
        record.set("updated_at", Datum::Timestamp(now));
    }
    tx.update(&model.table, rref, record.to_tuple())?;
    Ok(())
}

/// Emit one [`feral_trace::EventKind::SaveWrite`] per uniqueness-validated
/// field: the provenance analyzer pairs these with the corresponding
/// validation probes to name racing saves of the same key.
fn trace_save_writes(tx: &Transaction, record: &Record) {
    if !feral_trace::enabled() {
        return;
    }
    let model = &record.model;
    let table_hash = feral_trace::fnv64(model.table.as_bytes());
    for v in &model.validators {
        if let Validator::Uniqueness { field, .. } = v {
            feral_trace::record(
                feral_trace::EventKind::SaveWrite,
                tx.id(),
                datum_fingerprint(&record.get(field)),
                table_hash,
            );
        }
    }
}

/// Run the callbacks of `kind` declared on the record's model.
fn run_callbacks(record: &mut Record, kind: CallbackKind) {
    let callbacks = record.model.callbacks.clone();
    for (k, _, f) in &callbacks {
        if *k == kind {
            f(record);
        }
    }
}

/// Maintain `counter_cache` columns on the parents of `record`'s
/// `belongs_to` associations: the Rails-faithful atomic
/// `UPDATE parents SET <children>_count = <children>_count + delta`.
fn maintain_counter_caches(
    app: &App,
    tx: &mut Transaction,
    record: &Record,
    delta: i64,
) -> OrmResult<()> {
    let model = record.model.clone();
    for assoc in &model.associations {
        if assoc.kind != AssocKind::BelongsTo || !assoc.counter_cache {
            continue;
        }
        let fk = record.get(&assoc.foreign_key);
        if fk.is_null() {
            continue;
        }
        let parent = app.model(&assoc.target)?;
        let counter_col_name = format!("{}_count", model.table);
        let col = parent.column_index(&counter_col_name).ok_or_else(|| {
            OrmError::Config(format!(
                "{} must declare an integer {counter_col_name} column for counter_cache",
                parent.name
            ))
        })?;
        let rows = tx.scan(&parent.table, &Predicate::eq(0, fk))?;
        for (rref, _) in rows {
            tx.update_with(&parent.table, rref, |current| {
                let mut new = current.clone();
                let v = new[col].as_int().unwrap_or(0);
                new[col] = Datum::Int(v + delta);
                new
            })?;
        }
    }
    Ok(())
}

/// The feral cascading destroy (paper §5.3): find children with a plain
/// snapshot `SELECT`, destroy them at the application level, then delete
/// the owner. Children inserted concurrently after the `SELECT` are
/// silently missed — the source of Figure 4/5's orphans.
fn destroy_in_txn(
    app: &App,
    tx: &mut Transaction,
    model: &Arc<ModelDef>,
    id: i64,
    visited: &mut HashSet<(String, i64)>,
) -> OrmResult<()> {
    if !visited.insert((model.table.clone(), id)) {
        return Ok(()); // association cycle
    }
    feral_trace::record(
        feral_trace::EventKind::DestroyCascade,
        tx.id(),
        feral_trace::fnv64(id.to_string().as_bytes()),
        feral_trace::fnv64(model.table.as_bytes()),
    );
    for assoc in &model.associations {
        if assoc.through.is_some() {
            continue;
        }
        let Some(dependent) = assoc.dependent else {
            continue;
        };
        if assoc.kind == AssocKind::BelongsTo {
            continue;
        }
        let target = app.target_of(assoc)?;
        let col = target.column_index(&assoc.foreign_key).ok_or_else(|| {
            OrmError::Config(format!(
                "{} has no column {}",
                target.name, assoc.foreign_key
            ))
        })?;
        let children = tx.scan(&target.table, &Predicate::eq(col, id))?;
        match dependent {
            Dependent::Restrict => {
                if !children.is_empty() {
                    return Err(OrmError::RecordNotDestroyed(format!(
                        "cannot delete {} {id}: {} dependent {}",
                        model.name,
                        children.len(),
                        assoc.name
                    )));
                }
            }
            Dependent::DeleteAll => {
                for (rref, _) in children {
                    tx.delete(&target.table, rref)?;
                }
            }
            Dependent::Nullify => {
                for (rref, tuple) in children {
                    let mut new = (*tuple).clone();
                    new[col] = Datum::Null;
                    tx.update(&target.table, rref, new)?;
                }
            }
            Dependent::Destroy => {
                for (_, tuple) in children {
                    let child_id = tuple[0]
                        .as_int()
                        .ok_or_else(|| OrmError::Config("child row without integer id".into()))?;
                    destroy_in_txn(app, tx, &target, child_id, visited)?;
                }
            }
        }
    }
    let rows = tx.scan(&model.table, &Predicate::eq(0, id))?;
    for (rref, tuple) in rows {
        tx.delete(&model.table, rref)?;
        // destroy runs each record's counter-cache bookkeeping (delete,
        // by contrast, skips it — which is how Rails counters drift)
        let rec = Record::from_tuple(model.clone(), &tuple);
        maintain_counter_caches(app, tx, &rec, -1)?;
    }
    Ok(())
}
