//! Validator execution — the feral concurrency control under study.
//!
//! Every validator runs inside the save's database transaction, exactly as
//! Rails has done since its first public commit (paper §3.1). The DB-touching
//! validators (`uniqueness`, association `presence`, `associated`, and
//! UDFs that query) issue plain `SELECT` probes with **no predicate
//! locks**, which is why they are unsafe below Serializable isolation.

use crate::app::App;
use crate::errors::{Errors, OrmError, OrmResult};
use crate::model::{AssocKind, ModelDef, Numericality, QueryCtx, Validator};
use crate::pattern;
use crate::record::Record;
use feral_db::{Datum, Predicate, Transaction};
use std::sync::Arc;

/// Maximum `validates_associated` recursion depth (cycles in association
/// graphs are common; Rails breaks them via an in-memory visited set, we
/// bound depth).
const MAX_ASSOCIATED_DEPTH: usize = 4;

/// `QueryCtx` implementation handing user-defined validators the same
/// transaction the save runs in.
pub(crate) struct TxnQueryCtx<'a> {
    pub(crate) app: &'a App,
    pub(crate) tx: &'a mut Transaction,
}

impl QueryCtx for TxnQueryCtx<'_> {
    fn count_where(&mut self, model: &str, conds: &[(String, Datum)]) -> OrmResult<usize> {
        let def = self.app.model(model)?;
        let pred = self.app.conds_to_pred(&def, conds)?;
        Ok(self.tx.count(&def.table, &pred)?)
    }

    fn fetch_where(&mut self, model: &str, conds: &[(String, Datum)]) -> OrmResult<Vec<Record>> {
        let def = self.app.model(model)?;
        let pred = self.app.conds_to_pred(&def, conds)?;
        let rows = self.tx.scan(&def.table, &pred)?;
        Ok(rows
            .into_iter()
            .map(|(_, t)| Record::from_tuple(def.clone(), &t))
            .collect())
    }
}

/// Stable trace fingerprint of a datum: text hashes its raw bytes, any
/// other type hashes its display form. Must agree between the probe
/// (here), the save-write event, and the provenance lookup in the
/// bench layer, which hashes the key *string* it inserted.
pub(crate) fn datum_fingerprint(d: &Datum) -> u64 {
    match d {
        Datum::Text(s) => feral_trace::fnv64(s.as_bytes()),
        other => feral_trace::fnv64(other.to_string().as_bytes()),
    }
}

/// Whether a datum counts as "blank" for `validates_presence_of`.
pub(crate) fn blank(d: &Datum) -> bool {
    match d {
        Datum::Null => true,
        Datum::Text(s) => s.trim().is_empty(),
        _ => false,
    }
}

fn numeric_of(d: &Datum) -> Option<f64> {
    match d {
        Datum::Int(i) => Some(*i as f64),
        Datum::Float(f) => Some(*f),
        Datum::Text(s) => s.trim().parse::<f64>().ok(),
        _ => None,
    }
}

fn is_integer(d: &Datum) -> bool {
    match d {
        Datum::Int(_) => true,
        Datum::Float(f) => f.fract() == 0.0,
        Datum::Text(s) => s.trim().parse::<i64>().is_ok(),
        _ => false,
    }
}

/// Run every validator declared on `record`'s model, inside `tx`.
/// Returns the accumulated errors (empty ⇒ valid).
pub(crate) fn validate_record(
    app: &App,
    tx: &mut Transaction,
    record: &Record,
    depth: usize,
) -> OrmResult<Errors> {
    let mut errors = Errors::new();
    let model = record.model.clone();
    for v in &model.validators {
        run_validator(app, tx, record, &model, v, depth, &mut errors)?;
    }
    Ok(errors)
}

fn run_validator(
    app: &App,
    tx: &mut Transaction,
    record: &Record,
    model: &Arc<ModelDef>,
    v: &Validator,
    depth: usize,
    errors: &mut Errors,
) -> OrmResult<()> {
    match v {
        Validator::Presence { field } => {
            // presence of an association probes the database (App. B.2)
            if let Some(assoc) = model.association(field) {
                if assoc.kind == AssocKind::BelongsTo {
                    let fk_value = record.get(&assoc.foreign_key);
                    // a NULL fk is blank without probing; otherwise the
                    // feral SELECT decides
                    if fk_value.is_null()
                        || !associated_row_exists(app, tx, &assoc.target, &fk_value)?
                    {
                        errors.add(field.clone(), "can't be blank");
                    }
                    return Ok(());
                }
            }
            if blank(&record.get(field)) {
                errors.add(field.clone(), "can't be blank");
            }
        }
        Validator::Uniqueness {
            field,
            scope,
            case_sensitive,
        } => {
            run_uniqueness(
                app,
                tx,
                record,
                model,
                field,
                scope,
                *case_sensitive,
                errors,
            )?;
        }
        Validator::Length {
            field,
            min,
            max,
            allow_nil,
        } => {
            let value = record.get(field);
            if value.is_null() {
                if !*allow_nil {
                    if let Some(m) = min {
                        errors.add(
                            field.clone(),
                            format!("is too short (minimum is {m} characters)"),
                        );
                    }
                }
                return Ok(());
            }
            let len = match &value {
                Datum::Text(s) => s.chars().count(),
                other => other.to_string().len(),
            };
            if let Some(m) = min {
                if len < *m {
                    errors.add(
                        field.clone(),
                        format!("is too short (minimum is {m} characters)"),
                    );
                }
            }
            if let Some(m) = max {
                if len > *m {
                    errors.add(
                        field.clone(),
                        format!("is too long (maximum is {m} characters)"),
                    );
                }
            }
        }
        Validator::Inclusion { field, within } => {
            let value = record.get(field);
            if !within.iter().any(|w| w.sql_eq(&value) == Some(true)) {
                errors.add(field.clone(), "is not included in the list");
            }
        }
        Validator::Exclusion { field, from } => {
            let value = record.get(field);
            if from.iter().any(|w| w.sql_eq(&value) == Some(true)) {
                errors.add(field.clone(), "is reserved");
            }
        }
        Validator::NumericalityOf { field, opts } => {
            run_numericality(record, field, opts, errors);
        }
        Validator::Format {
            field,
            with,
            allow_nil,
        } => {
            let value = record.get(field);
            if value.is_null() && *allow_nil {
                return Ok(());
            }
            let matches = value.as_text().map(|s| with.is_match(s)).unwrap_or(false);
            if !matches {
                errors.add(field.clone(), "is invalid");
            }
        }
        Validator::Email { field } => {
            let value = record.get(field);
            let ok = value
                .as_text()
                .map(|s| pattern::email_pattern().is_match(s))
                .unwrap_or(false);
            if !ok {
                errors.add(
                    field.clone(),
                    "does not appear to be a valid e-mail address",
                );
            }
        }
        Validator::Confirmation { field } => {
            let confirmation = record.get(&format!("{field}_confirmation"));
            if !confirmation.is_null() && confirmation.sql_eq(&record.get(field)) != Some(true) {
                errors.add(
                    format!("{field}_confirmation"),
                    format!("doesn't match {field}"),
                );
            }
        }
        Validator::Acceptance { field } => {
            let value = record.get(field);
            let accepted = matches!(&value, Datum::Bool(true))
                || value.as_text().is_some_and(|s| s == "1" || s == "true")
                || value.as_int().is_some_and(|i| i == 1);
            if !accepted {
                errors.add(field.clone(), "must be accepted");
            }
        }
        Validator::Associated { assoc } => {
            run_associated(app, tx, record, model, assoc, depth, errors)?;
        }
        Validator::AttachmentContentType { field, allowed } => {
            let value = record.get(&format!("{field}_content_type"));
            let ok = value
                .as_text()
                .map(|s| allowed.iter().any(|a| a == s))
                .unwrap_or(false);
            if !ok {
                errors.add(field.clone(), "is invalid (content type)");
            }
        }
        Validator::AttachmentSize { field, max_bytes } => {
            let value = record.get(&format!("{field}_file_size"));
            match value.as_int() {
                Some(sz) if sz <= *max_bytes => {}
                _ => errors.add(
                    field.clone(),
                    format!("must be less than {max_bytes} bytes"),
                ),
            }
        }
        Validator::Custom { f, .. } => {
            let mut ctx = TxnQueryCtx { app, tx };
            f(record, &mut ctx, errors);
        }
    }
    Ok(())
}

/// The feral uniqueness probe (paper Appendix B.1): a plain `SELECT ...
/// LIMIT 1` on the validated column (plus scope), excluding the record's
/// own row when persisted. Runs at whatever isolation the enclosing
/// transaction has — no predicate lock is taken, which is the defect the
/// paper quantifies.
#[allow(clippy::too_many_arguments)]
fn run_uniqueness(
    app: &App,
    tx: &mut Transaction,
    record: &Record,
    model: &Arc<ModelDef>,
    field: &str,
    scope: &[String],
    case_sensitive: bool,
    errors: &mut Errors,
) -> OrmResult<()> {
    let value = record.get(field);
    let col = model
        .column_index(field)
        .ok_or_else(|| OrmError::Config(format!("{} has no column {field}", model.name)))?;
    tx.note_validation_probe(
        datum_fingerprint(&value),
        feral_trace::fnv64(model.table.as_bytes()),
    );

    let taken = if case_sensitive || !matches!(value, Datum::Text(_)) {
        let mut conds: Vec<(String, Datum)> = vec![(field.to_string(), value.clone())];
        for s in scope {
            conds.push((s.clone(), record.get(s)));
        }
        let pred = app.conds_to_pred(model, &conds)?;
        let rows = tx.scan(&model.table, &pred)?;
        rows.iter()
            .any(|(_, t)| record.id().is_none() || t[0].as_int() != record.id())
    } else {
        // case-insensitive: Rails generates LOWER(col) = LOWER(?), which is
        // a sequential scan unless a functional index exists — model it as
        // a full scan with client-side comparison
        let needle = value.as_text().unwrap_or("").to_lowercase();
        let rows = tx.scan(&model.table, &Predicate::True)?;
        rows.iter().any(|(_, t)| {
            let same_scope = scope.iter().all(|s| {
                let sc = model.column_index(s).unwrap_or(usize::MAX);
                t.get(sc)
                    .map(|d| {
                        d.sql_eq(&record.get(s)) == Some(true)
                            || (d.is_null() && record.get(s).is_null())
                    })
                    .unwrap_or(false)
            });
            same_scope
                && t.get(col)
                    .and_then(|d| d.as_text())
                    .is_some_and(|s| s.to_lowercase() == needle)
                && (record.id().is_none() || t[0].as_int() != record.id())
        })
    };
    if taken {
        errors.add(field.to_string(), "has already been taken");
    }
    Ok(())
}

fn run_numericality(record: &Record, field: &str, opts: &Numericality, errors: &mut Errors) {
    let value = record.get(field);
    if value.is_null() {
        if !opts.allow_nil {
            errors.add(field.to_string(), "is not a number");
        }
        return;
    }
    let Some(n) = numeric_of(&value) else {
        errors.add(field.to_string(), "is not a number");
        return;
    };
    if opts.only_integer && !is_integer(&value) {
        errors.add(field.to_string(), "must be an integer");
        return;
    }
    if let Some(g) = opts.gt {
        if n <= g {
            errors.add(field.to_string(), format!("must be greater than {g}"));
        }
    }
    if let Some(g) = opts.ge {
        if n < g {
            errors.add(
                field.to_string(),
                format!("must be greater than or equal to {g}"),
            );
        }
    }
    if let Some(l) = opts.lt {
        if n >= l {
            errors.add(field.to_string(), format!("must be less than {l}"));
        }
    }
    if let Some(l) = opts.le {
        if n > l {
            errors.add(
                field.to_string(),
                format!("must be less than or equal to {l}"),
            );
        }
    }
}

/// `SELECT 1 FROM target WHERE id = fk LIMIT 1` — the association probe.
fn associated_row_exists(
    app: &App,
    tx: &mut Transaction,
    target_model: &str,
    fk_value: &Datum,
) -> OrmResult<bool> {
    let target = app.model(target_model)?;
    tx.note_validation_probe(
        datum_fingerprint(fk_value),
        feral_trace::fnv64(target.table.as_bytes()),
    );
    let pred = Predicate::eq(0, fk_value.clone());
    Ok(!tx.scan(&target.table, &pred)?.is_empty())
}

/// `validates_associated`: load associated records and run their own
/// validation passes (bounded recursion).
fn run_associated(
    app: &App,
    tx: &mut Transaction,
    record: &Record,
    model: &Arc<ModelDef>,
    assoc_name: &str,
    depth: usize,
    errors: &mut Errors,
) -> OrmResult<()> {
    if depth >= MAX_ASSOCIATED_DEPTH {
        return Ok(());
    }
    let Some(assoc) = model.association(assoc_name) else {
        return Err(OrmError::Config(format!(
            "{} has no association {assoc_name}",
            model.name
        )));
    };
    let target = app.target_of(assoc)?;
    let associated: Vec<Record> = match assoc.kind {
        AssocKind::BelongsTo => {
            let fk_value = record.get(&assoc.foreign_key);
            if fk_value.is_null() {
                return Ok(());
            }
            let rows = tx.scan(&target.table, &Predicate::eq(0, fk_value.clone()))?;
            if rows.is_empty() {
                errors.add(assoc_name.to_string(), "is invalid");
                return Ok(());
            }
            rows.into_iter()
                .map(|(_, t)| Record::from_tuple(target.clone(), &t))
                .collect()
        }
        AssocKind::HasOne | AssocKind::HasMany => {
            let Some(id) = record.id() else {
                return Ok(()); // unsaved owner has no persisted children
            };
            let col = target.column_index(&assoc.foreign_key).ok_or_else(|| {
                OrmError::Config(format!(
                    "{} has no column {}",
                    target.name, assoc.foreign_key
                ))
            })?;
            tx.scan(&target.table, &Predicate::eq(col, id))?
                .into_iter()
                .map(|(_, t)| Record::from_tuple(target.clone(), &t))
                .collect()
        }
    };
    for child in associated {
        let child_errors = validate_record(app, tx, &child, depth + 1)?;
        if !child_errors.is_empty() {
            errors.add(assoc_name.to_string(), "is invalid");
            return Ok(());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blankness() {
        assert!(blank(&Datum::Null));
        assert!(blank(&Datum::text("")));
        assert!(blank(&Datum::text("   ")));
        assert!(!blank(&Datum::text("x")));
        assert!(!blank(&Datum::Int(0)));
        assert!(!blank(&Datum::Bool(false)));
    }

    #[test]
    fn numeric_extraction() {
        assert_eq!(numeric_of(&Datum::Int(3)), Some(3.0));
        assert_eq!(numeric_of(&Datum::Float(2.5)), Some(2.5));
        assert_eq!(numeric_of(&Datum::text("42")), Some(42.0));
        assert_eq!(numeric_of(&Datum::text("4.5 ")), Some(4.5));
        assert_eq!(numeric_of(&Datum::text("abc")), None);
        assert!(is_integer(&Datum::Int(1)));
        assert!(is_integer(&Datum::Float(2.0)));
        assert!(!is_integer(&Datum::Float(2.5)));
        assert!(is_integer(&Datum::text("7")));
        assert!(!is_integer(&Datum::text("7.5")));
    }
}
