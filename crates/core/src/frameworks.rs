//! Cross-framework validation-semantics profiles (paper Section 6).
//!
//! The paper surveys six additional ORM frameworks and finds "widespread
//! support for feral validation/invariants, with inconsistent use of
//! mechanisms for enforcing them." This module encodes each framework's
//! enforcement profile so the Section 6 comparison can be *executed*
//! rather than merely tabulated: a profile says where uniqueness and
//! foreign keys are enforced and whether validations run in a transaction,
//! and [`FrameworkProfile::apply_uniqueness`] configures an [`crate::App`]
//! accordingly.

use crate::app::App;
use crate::errors::OrmResult;
use feral_db::OnDelete;

/// Where an invariant is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enforcement {
    /// Backed by an in-database constraint — race-free.
    Database,
    /// Checked ferally at the application level — subject to races.
    Application,
    /// Declared but not enforced anywhere unless the user also writes the
    /// schema constraint by hand.
    ManualSchema,
}

/// One framework's validation/constraint semantics.
#[derive(Debug, Clone)]
pub struct FrameworkProfile {
    /// Framework name and surveyed version.
    pub name: &'static str,
    /// Surveyed version string.
    pub version: &'static str,
    /// How declared uniqueness constraints are enforced.
    pub uniqueness: Enforcement,
    /// How declared foreign keys / associations are enforced.
    pub foreign_keys: Enforcement,
    /// Whether validations run wrapped in a database transaction.
    pub validations_in_transaction: bool,
    /// Whether user-defined validations are supported.
    pub supports_udf_validations: bool,
    /// Whether UDF validations (if any) run in a transaction.
    pub udf_in_transaction: bool,
    /// One-line summary of susceptibility, per the paper's findings.
    pub finding: &'static str,
}

impl FrameworkProfile {
    /// Whether the profile's uniqueness validations can admit duplicates
    /// under concurrent execution at weak isolation.
    pub fn uniqueness_unsafe(&self) -> bool {
        self.uniqueness != Enforcement::Database
    }

    /// Whether association/foreign-key integrity can be violated under
    /// concurrent execution at weak isolation.
    pub fn foreign_keys_unsafe(&self) -> bool {
        self.foreign_keys != Enforcement::Database
    }

    /// Configure `app` with this framework's enforcement for a model whose
    /// `field` is declared unique: add the in-database unique index only
    /// when the framework would.
    pub fn apply_uniqueness(&self, app: &App, model: &str, field: &str) -> OrmResult<()> {
        if self.uniqueness == Enforcement::Database {
            app.add_index(model, &[field], true)?;
        }
        Ok(())
    }

    /// Configure `app` with this framework's FK enforcement for
    /// `child.assoc`: add the in-database constraint only when the
    /// framework would.
    pub fn apply_foreign_key(
        &self,
        app: &App,
        child_model: &str,
        association: &str,
    ) -> OrmResult<()> {
        if self.foreign_keys == Enforcement::Database {
            app.add_foreign_key(child_model, association, OnDelete::Cascade)?;
        }
        Ok(())
    }
}

/// Ruby on Rails / ActiveRecord 4.1 — the paper's primary subject.
pub fn rails() -> FrameworkProfile {
    FrameworkProfile {
        name: "Ruby on Rails (ActiveRecord)",
        version: "4.1",
        uniqueness: Enforcement::Application,
        foreign_keys: Enforcement::Application,
        validations_in_transaction: true,
        supports_udf_validations: true,
        udf_in_transaction: true,
        finding: "feral uniqueness and association validations; unsafe below serializable",
    }
}

/// Java Persistence API (EE 7).
pub fn jpa() -> FrameworkProfile {
    FrameworkProfile {
        name: "Java Persistence API",
        version: "EE 7",
        uniqueness: Enforcement::Database,
        foreign_keys: Enforcement::Database,
        validations_in_transaction: true,
        supports_udf_validations: true,
        udf_in_transaction: true,
        finding: "schema annotations create real constraints; Bean Validation UDFs remain unsafe",
    }
}

/// Hibernate 4.3.7.
pub fn hibernate() -> FrameworkProfile {
    FrameworkProfile {
        name: "Hibernate",
        version: "4.3.7",
        uniqueness: Enforcement::ManualSchema,
        foreign_keys: Enforcement::ManualSchema,
        validations_in_transaction: true,
        supports_udf_validations: true,
        udf_in_transaction: true,
        finding: "declared FKs add a column but no constraint; relies on JPA schema annotations",
    }
}

/// CakePHP 2.5.5.
pub fn cakephp() -> FrameworkProfile {
    FrameworkProfile {
        name: "CakePHP",
        version: "2.5.5",
        uniqueness: Enforcement::Application,
        foreign_keys: Enforcement::Application,
        validations_in_transaction: false,
        supports_udf_validations: true,
        udf_in_transaction: false,
        finding: "validations not backed by any transaction; schema constraints left to the user",
    }
}

/// Laravel 4.2.
pub fn laravel() -> FrameworkProfile {
    FrameworkProfile {
        name: "Laravel",
        version: "4.2",
        uniqueness: Enforcement::Application,
        foreign_keys: Enforcement::Application,
        validations_in_transaction: false,
        supports_udf_validations: true,
        udf_in_transaction: false,
        finding: "model-level validation recommended as 'database agnostic'; same feral exposure",
    }
}

/// Django 1.7.
pub fn django() -> FrameworkProfile {
    FrameworkProfile {
        name: "Django",
        version: "1.7",
        uniqueness: Enforcement::Database,
        foreign_keys: Enforcement::Database,
        validations_in_transaction: true,
        supports_udf_validations: true,
        udf_in_transaction: false,
        finding:
            "unique/FK backed by real constraints; custom validations not wrapped in a transaction",
    }
}

/// Waterline 0.10 (Sails.js).
pub fn waterline() -> FrameworkProfile {
    FrameworkProfile {
        name: "Waterline (Sails.js)",
        version: "0.10",
        uniqueness: Enforcement::Database,
        foreign_keys: Enforcement::Database,
        validations_in_transaction: false,
        supports_udf_validations: true,
        udf_in_transaction: false,
        finding: "in-DB constraints when the adapter supports them; UDFs non-transactional ('just hope we don't get in a nasty state')",
    }
}

/// All seven surveyed profiles (Rails + the six from Section 6).
pub fn all_profiles() -> Vec<FrameworkProfile> {
    vec![
        rails(),
        jpa(),
        hibernate(),
        cakephp(),
        laravel(),
        django(),
        waterline(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rails_is_feral_jpa_is_not() {
        assert!(rails().uniqueness_unsafe());
        assert!(rails().foreign_keys_unsafe());
        assert!(!jpa().uniqueness_unsafe());
        assert!(!jpa().foreign_keys_unsafe());
    }

    #[test]
    fn django_udfs_are_the_weak_spot() {
        let d = django();
        assert!(!d.uniqueness_unsafe());
        assert!(d.supports_udf_validations);
        assert!(!d.udf_in_transaction);
    }

    #[test]
    fn survey_has_seven_frameworks() {
        let all = all_profiles();
        assert_eq!(all.len(), 7);
        // at least half the surveyed frameworks expose unsafe uniqueness
        let unsafe_count = all.iter().filter(|p| p.uniqueness_unsafe()).count();
        assert!(unsafe_count >= 3, "paper found widespread feral validation");
    }

    #[test]
    fn apply_uniqueness_configures_db_only_for_database_enforcement() {
        use crate::model::ModelDef;
        let app = crate::app::App::in_memory();
        app.define(ModelDef::build("User").string("name").finish())
            .unwrap();
        // Rails: no index created
        rails().apply_uniqueness(&app, "User", "name").unwrap();
        // Django: index created
        django().apply_uniqueness(&app, "User", "name").unwrap();
        // second (Rails) call did nothing, so Django's create_index succeeded
    }
}
