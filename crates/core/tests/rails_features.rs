//! Tests for the Rails features beyond the paper's core experiments:
//! lifecycle callbacks, counter caches, `find_or_create_by`, and
//! savepoint-backed `requires_new` transactions.

use feral_db::Datum;
use feral_orm::{App, CallbackKind, Dependent, ModelDef, OrmError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Callbacks
// ---------------------------------------------------------------------

#[test]
fn before_validation_normalizes_attributes() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Account")
            .string("email")
            .validates_email("email")
            .before_validation("downcase_email", |rec| {
                if let Some(e) = rec.get("email").as_text() {
                    let lower = e.trim().to_lowercase();
                    rec.set("email", lower);
                }
            })
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let rec = s
        .create_strict("Account", &[("email", Datum::text("  Alice@Example.COM "))])
        .unwrap();
    assert_eq!(rec.get("email"), Datum::text("alice@example.com"));
}

#[test]
fn callback_ordering_and_counts() {
    let order: Arc<parking_lot::Mutex<Vec<&'static str>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let app = App::in_memory();
    let mk = |tag: &'static str, order: &Arc<parking_lot::Mutex<Vec<&'static str>>>| {
        let order = order.clone();
        move |_: &mut feral_orm::Record| order.lock().push(tag)
    };
    app.define(
        ModelDef::build("Thing")
            .string("name")
            .callback(
                CallbackKind::BeforeValidation,
                "bv",
                mk("before_validation", &order),
            )
            .callback(CallbackKind::BeforeSave, "bs", mk("before_save", &order))
            .callback(CallbackKind::AfterCreate, "ac", mk("after_create", &order))
            .callback(CallbackKind::AfterSave, "as", mk("after_save", &order))
            .callback(
                CallbackKind::BeforeDestroy,
                "bd",
                mk("before_destroy", &order),
            )
            .callback(
                CallbackKind::AfterDestroy,
                "ad",
                mk("after_destroy", &order),
            )
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let mut rec = s
        .create_strict("Thing", &[("name", Datum::text("x"))])
        .unwrap();
    assert_eq!(
        *order.lock(),
        vec![
            "before_validation",
            "before_save",
            "after_create",
            "after_save"
        ]
    );
    order.lock().clear();
    // update: no after_create
    s.update_attributes(&mut rec, &[("name", Datum::text("y"))])
        .unwrap();
    assert_eq!(
        *order.lock(),
        vec!["before_validation", "before_save", "after_save"]
    );
    order.lock().clear();
    s.destroy(&mut rec).unwrap();
    assert_eq!(*order.lock(), vec!["before_destroy", "after_destroy"]);
}

#[test]
fn callbacks_do_not_run_when_validation_fails() {
    let saves = Arc::new(AtomicUsize::new(0));
    let app = App::in_memory();
    let saves2 = saves.clone();
    app.define(
        ModelDef::build("Strict")
            .string("name")
            .validates_presence_of("name")
            .before_save("count", move |_| {
                saves2.fetch_add(1, Ordering::SeqCst);
            })
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let rec = s.create("Strict", &[]).unwrap();
    assert!(!rec.is_persisted());
    assert_eq!(saves.load(Ordering::SeqCst), 0);
}

// ---------------------------------------------------------------------
// Counter caches
// ---------------------------------------------------------------------

fn blog() -> App {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Post")
            .string("title")
            .integer("comments_count")
            .has_many_dependent("comments", Dependent::Destroy)
            .finish(),
    )
    .unwrap();
    app.define(
        ModelDef::build("Comment")
            .string("body")
            .belongs_to_counted("post")
            .finish(),
    )
    .unwrap();
    app
}

#[test]
fn counter_cache_tracks_creates_and_destroys() {
    let app = blog();
    let mut s = app.session();
    let post = s
        .create_strict(
            "Post",
            &[
                ("title", Datum::text("t")),
                ("comments_count", Datum::Int(0)),
            ],
        )
        .unwrap();
    let pid = post.id().unwrap();
    let mut comments = Vec::new();
    for i in 0..3 {
        comments.push(
            s.create_strict(
                "Comment",
                &[
                    ("body", Datum::text(format!("c{i}"))),
                    ("post_id", Datum::Int(pid)),
                ],
            )
            .unwrap(),
        );
    }
    assert_eq!(
        s.find("Post", pid).unwrap().get("comments_count"),
        Datum::Int(3)
    );
    let mut c = comments.pop().unwrap();
    s.destroy(&mut c).unwrap();
    assert_eq!(
        s.find("Post", pid).unwrap().get("comments_count"),
        Datum::Int(2)
    );
}

#[test]
fn counter_cache_is_atomic_under_concurrency() {
    // Rails emits UPDATE posts SET comments_count = comments_count + 1 —
    // atomic, so concurrent comment creation must not lose increments.
    let app = blog();
    let mut s = app.session();
    let post = s
        .create_strict(
            "Post",
            &[
                ("title", Datum::text("t")),
                ("comments_count", Datum::Int(0)),
            ],
        )
        .unwrap();
    let pid = post.id().unwrap();
    let threads = 8;
    let per_thread = 10;
    let barrier = Arc::new(std::sync::Barrier::new(threads));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let app = app.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut s = app.session();
            for i in 0..per_thread {
                loop {
                    match s.create(
                        "Comment",
                        &[
                            ("body", Datum::text(format!("c{i}"))),
                            ("post_id", Datum::Int(pid)),
                        ],
                    ) {
                        Ok(_) => break,
                        Err(e) if e.is_retryable() => continue,
                        Err(e) => panic!("unexpected {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        s.find("Post", pid).unwrap().get("comments_count"),
        Datum::Int((threads * per_thread) as i64)
    );
}

#[test]
fn counter_cache_drifts_when_delete_bypasses_callbacks() {
    // the feral caveat: `delete` (no callbacks) leaves the counter stale
    let app = blog();
    let mut s = app.session();
    let post = s
        .create_strict(
            "Post",
            &[
                ("title", Datum::text("t")),
                ("comments_count", Datum::Int(0)),
            ],
        )
        .unwrap();
    let pid = post.id().unwrap();
    let mut c = s
        .create_strict(
            "Comment",
            &[("body", Datum::text("c")), ("post_id", Datum::Int(pid))],
        )
        .unwrap();
    assert_eq!(
        s.find("Post", pid).unwrap().get("comments_count"),
        Datum::Int(1)
    );
    s.delete(&mut c).unwrap(); // bare DELETE: counter not maintained
    assert_eq!(s.count("Comment").unwrap(), 0);
    assert_eq!(
        s.find("Post", pid).unwrap().get("comments_count"),
        Datum::Int(1),
        "the denormalized counter has drifted — the documented feral hazard"
    );
}

#[test]
fn counter_cache_missing_column_is_a_config_error() {
    let app = App::in_memory();
    app.define(ModelDef::build("Album").string("name").finish())
        .unwrap();
    app.define(
        ModelDef::build("Photo")
            .belongs_to_counted("album")
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let album = s
        .create_strict("Album", &[("name", Datum::text("a"))])
        .unwrap();
    let err = s
        .create("Photo", &[("album_id", Datum::Int(album.id().unwrap()))])
        .unwrap_err();
    assert!(matches!(err, OrmError::Config(m) if m.contains("photos_count")));
}

// ---------------------------------------------------------------------
// find_or_create_by
// ---------------------------------------------------------------------

#[test]
fn find_or_create_by_sequential_semantics() {
    let app = App::in_memory();
    app.define(ModelDef::build("Tag").string("name").finish())
        .unwrap();
    let mut s = app.session();
    let a = s
        .find_or_create_by("Tag", &[("name", Datum::text("rust"))])
        .unwrap();
    assert!(a.is_persisted());
    let b = s
        .find_or_create_by("Tag", &[("name", Datum::text("rust"))])
        .unwrap();
    assert_eq!(a.id(), b.id());
    assert_eq!(s.count("Tag").unwrap(), 1);
}

#[test]
fn find_or_create_by_races_without_a_unique_index() {
    // "this method is prone to race conditions" — the Rails docs
    let app = App::in_memory();
    app.define(ModelDef::build("Tag").string("name").finish())
        .unwrap();
    app.set_validation_write_delay(std::time::Duration::from_micros(500));
    let threads = 8;
    let barrier = Arc::new(std::sync::Barrier::new(threads));
    let mut handles = Vec::new();
    let mut raced = false;
    for round in 0..30 {
        let mut hs = Vec::new();
        for _ in 0..threads {
            let app = app.clone();
            let barrier = barrier.clone();
            let name = format!("tag-{round}");
            hs.push(std::thread::spawn(move || {
                barrier.wait();
                let mut s = app.session();
                s.find_or_create_by("Tag", &[("name", Datum::text(&name))])
                    .unwrap();
            }));
        }
        handles.extend(hs);
        for h in handles.drain(..) {
            h.join().unwrap();
        }
        let mut s = app.session();
        let copies = s
            .where_("Tag", &[("name", Datum::text(format!("tag-{round}")))])
            .unwrap()
            .len();
        if copies > 1 {
            raced = true;
            break;
        }
    }
    assert!(raced, "expected at least one duplicated find_or_create_by");
}

// ---------------------------------------------------------------------
// requires_new transactions (savepoints)
// ---------------------------------------------------------------------

#[test]
fn requires_new_rolls_back_only_the_inner_work() {
    let app = App::in_memory();
    app.define(ModelDef::build("Entry").string("name").finish())
        .unwrap();
    let mut s = app.session();
    s.transaction(|s| {
        s.create_strict("Entry", &[("name", Datum::text("outer"))])?;
        let inner: Result<(), OrmError> = s.transaction_requires_new(|s| {
            s.create_strict("Entry", &[("name", Datum::text("inner"))])?;
            Err(OrmError::Config("abort inner".into()))
        });
        assert!(inner.is_err());
        // inner insert rolled back, outer still present
        assert_eq!(s.count("Entry")?, 1);
        s.create_strict("Entry", &[("name", Datum::text("outer2"))])?;
        Ok(())
    })
    .unwrap();
    let mut check = app.session();
    let names: Vec<String> = check
        .all("Entry")
        .unwrap()
        .iter()
        .map(|r| r.get("name").as_text().unwrap().to_string())
        .collect();
    assert_eq!(names.len(), 2);
    assert!(names.contains(&"outer".to_string()));
    assert!(names.contains(&"outer2".to_string()));
}

#[test]
fn requires_new_without_outer_transaction_is_plain() {
    let app = App::in_memory();
    app.define(ModelDef::build("Entry").string("name").finish())
        .unwrap();
    let mut s = app.session();
    let r: Result<(), OrmError> = s.transaction_requires_new(|s| {
        s.create_strict("Entry", &[("name", Datum::text("x"))])?;
        Err(OrmError::Config("abort".into()))
    });
    assert!(r.is_err());
    assert_eq!(s.count("Entry").unwrap(), 0);
}
