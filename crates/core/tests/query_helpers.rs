//! Tests for the query/batch helpers: ordered+bounded finders, pluck,
//! and the callback-skipping `update_all`/`delete_all` footguns.

use feral_db::Datum;
use feral_orm::{App, Dependent, ModelDef};

fn app() -> App {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Song")
            .string("title")
            .integer("plays")
            .string("genre")
            .finish(),
    )
    .unwrap();
    app
}

fn seed(app: &App) {
    let mut s = app.session();
    for (t, p, g) in [
        ("alpha", 30i64, "rock"),
        ("beta", 10, "jazz"),
        ("gamma", 50, "rock"),
        ("delta", 20, "jazz"),
        ("epsilon", 40, "rock"),
    ] {
        s.create_strict(
            "Song",
            &[
                ("title", Datum::text(t)),
                ("plays", Datum::Int(p)),
                ("genre", Datum::text(g)),
            ],
        )
        .unwrap();
    }
}

#[test]
fn where_order_limit_sorts_and_bounds() {
    let app = app();
    seed(&app);
    let mut s = app.session();
    let top2 = s
        .where_order_limit(
            "Song",
            &[("genre", Datum::text("rock"))],
            "plays",
            true,
            Some(2),
        )
        .unwrap();
    assert_eq!(top2.len(), 2);
    assert_eq!(top2[0].get("title"), Datum::text("gamma")); // 50 plays
    assert_eq!(top2[1].get("title"), Datum::text("epsilon")); // 40 plays
                                                              // ascending, unbounded
    let asc = s
        .where_order_limit("Song", &[], "plays", false, None)
        .unwrap();
    let plays: Vec<i64> = asc
        .iter()
        .map(|r| r.get("plays").as_int().unwrap())
        .collect();
    assert_eq!(plays, vec![10, 20, 30, 40, 50]);
}

#[test]
fn pluck_extracts_one_column() {
    let app = app();
    seed(&app);
    let mut s = app.session();
    let mut titles: Vec<String> = s
        .pluck("Song", &[("genre", Datum::text("jazz"))], "title")
        .unwrap()
        .into_iter()
        .map(|d| d.as_text().unwrap().to_string())
        .collect();
    titles.sort();
    assert_eq!(titles, vec!["beta", "delta"]);
}

#[test]
fn update_all_bulk_writes_without_validations() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Account")
            .string("name")
            .integer("balance")
            .validates_presence_of("name")
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    for i in 0..3 {
        s.create_strict(
            "Account",
            &[
                ("name", Datum::text(format!("a{i}"))),
                ("balance", Datum::Int(0)),
            ],
        )
        .unwrap();
    }
    // bulk update bypasses the presence validation entirely — setting
    // name to NULL succeeds (the Rails footgun, faithfully)
    let n = s
        .update_all(
            "Account",
            &[],
            &[("name", Datum::Null), ("balance", Datum::Int(100))],
        )
        .unwrap();
    assert_eq!(n, 3);
    let rows = s.all("Account").unwrap();
    assert!(rows.iter().all(|r| r.get("name").is_null()));
    assert!(rows.iter().all(|r| r.get("balance") == Datum::Int(100)));
}

#[test]
fn delete_all_skips_dependent_logic() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Board")
            .string("name")
            .has_many_dependent("cards", Dependent::Destroy)
            .finish(),
    )
    .unwrap();
    app.define(ModelDef::build("Card").belongs_to("board").finish())
        .unwrap();
    let mut s = app.session();
    let b = s
        .create_strict("Board", &[("name", Datum::text("b"))])
        .unwrap();
    s.create_strict("Card", &[("board_id", Datum::Int(b.id().unwrap()))])
        .unwrap();
    // delete_all on boards does NOT cascade — cards are orphaned
    let n = s.delete_all("Board", &[]).unwrap();
    assert_eq!(n, 1);
    assert_eq!(s.count("Card").unwrap(), 1, "delete_all must skip cascades");
}

#[test]
fn update_all_with_conditions() {
    let app = app();
    seed(&app);
    let mut s = app.session();
    let n = s
        .update_all(
            "Song",
            &[("genre", Datum::text("jazz"))],
            &[("plays", Datum::Int(0))],
        )
        .unwrap();
    assert_eq!(n, 2);
    let zeroed = s
        .pluck("Song", &[("plays", Datum::Int(0))], "genre")
        .unwrap();
    assert_eq!(zeroed.len(), 2);
    assert!(zeroed.iter().all(|g| g == &Datum::text("jazz")));
}
