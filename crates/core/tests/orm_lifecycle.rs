//! End-to-end ORM lifecycle tests: save/create/update/destroy, finders,
//! associations, and locking.

use feral_db::{DataType, Datum};
use feral_orm::{App, Dependent, ModelDef, Numericality, OrmError};

fn blog_app() -> App {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Author")
            .string("name")
            .validates_presence_of("name")
            .has_many_dependent("posts", Dependent::Destroy)
            .finish(),
    )
    .unwrap();
    app.define(
        ModelDef::build("Post")
            .string("title")
            .integer("view_count")
            .belongs_to("author")
            .validates_presence_of("title")
            .validates_presence_of("author")
            .has_many_dependent("comments", Dependent::DeleteAll)
            .finish(),
    )
    .unwrap();
    app.define(
        ModelDef::build("Comment")
            .string("body")
            .belongs_to("post")
            .finish(),
    )
    .unwrap();
    app
}

#[test]
fn create_assigns_id_and_timestamps() {
    let app = blog_app();
    let mut s = app.session();
    let a = s
        .create_strict("Author", &[("name", Datum::text("peter"))])
        .unwrap();
    assert!(a.is_persisted());
    assert!(a.id().unwrap() >= 1);
    assert!(matches!(a.get("created_at"), Datum::Timestamp(_)));
    assert!(matches!(a.get("updated_at"), Datum::Timestamp(_)));
}

#[test]
fn save_false_on_invalid_and_errors_populated() {
    let app = blog_app();
    let mut s = app.session();
    let mut a = app.new_record("Author").unwrap();
    assert!(!s.save(&mut a).unwrap());
    assert!(!a.is_persisted());
    assert_eq!(a.errors.on("name"), vec!["can't be blank"]);
    // save! raises
    let err = s.save_strict(&mut a).unwrap_err();
    assert!(matches!(err, OrmError::RecordInvalid(_)));
}

#[test]
fn update_changes_row_and_bumps_updated_at() {
    let app = blog_app();
    let mut s = app.session();
    let mut a = s
        .create_strict("Author", &[("name", Datum::text("old"))])
        .unwrap();
    let created = a.get("created_at");
    std::thread::sleep(std::time::Duration::from_millis(2));
    s.update_attributes(&mut a, &[("name", Datum::text("new"))])
        .unwrap();
    let found = s.find("Author", a.id().unwrap()).unwrap();
    assert_eq!(found.get("name"), Datum::text("new"));
    assert_eq!(found.get("created_at"), created);
    assert_ne!(found.get("updated_at"), created);
}

#[test]
fn find_miss_is_record_not_found() {
    let app = blog_app();
    let mut s = app.session();
    assert!(matches!(
        s.find("Author", 999),
        Err(OrmError::RecordNotFound(_))
    ));
    assert!(s
        .find_by("Author", &[("name", Datum::text("x"))])
        .unwrap()
        .is_none());
}

#[test]
fn belongs_to_presence_validation_probes_database() {
    let app = blog_app();
    let mut s = app.session();
    // no author yet: validation fails ferally
    let p = s
        .create(
            "Post",
            &[("title", Datum::text("t")), ("author_id", Datum::Int(42))],
        )
        .unwrap();
    assert!(!p.is_persisted());
    assert_eq!(p.errors.on("author"), vec!["can't be blank"]);
    // with the author present it succeeds
    let a = s
        .create_strict("Author", &[("name", Datum::text("peter"))])
        .unwrap();
    let p = s
        .create_strict(
            "Post",
            &[
                ("title", Datum::text("t")),
                ("author_id", Datum::Int(a.id().unwrap())),
            ],
        )
        .unwrap();
    assert!(p.is_persisted());
}

#[test]
fn associated_loads_children_and_parent() {
    let app = blog_app();
    let mut s = app.session();
    let a = s
        .create_strict("Author", &[("name", Datum::text("peter"))])
        .unwrap();
    for i in 0..3 {
        s.create_strict(
            "Post",
            &[
                ("title", Datum::text(format!("p{i}"))),
                ("author_id", Datum::Int(a.id().unwrap())),
            ],
        )
        .unwrap();
    }
    let posts = s.associated(&a, "posts").unwrap();
    assert_eq!(posts.len(), 3);
    let parent = s.associated(&posts[0], "author").unwrap();
    assert_eq!(parent.len(), 1);
    assert_eq!(parent[0].get("name"), Datum::text("peter"));
}

#[test]
fn destroy_cascades_dependent_destroy_transitively() {
    let app = blog_app();
    let mut s = app.session();
    let mut a = s
        .create_strict("Author", &[("name", Datum::text("peter"))])
        .unwrap();
    let p = s
        .create_strict(
            "Post",
            &[
                ("title", Datum::text("t")),
                ("author_id", Datum::Int(a.id().unwrap())),
            ],
        )
        .unwrap();
    s.create_strict(
        "Comment",
        &[
            ("body", Datum::text("hi")),
            ("post_id", Datum::Int(p.id().unwrap())),
        ],
    )
    .unwrap();
    // author -> posts (destroy) -> comments (delete_all)
    s.destroy(&mut a).unwrap();
    assert!(a.is_destroyed());
    assert_eq!(s.count("Author").unwrap(), 0);
    assert_eq!(s.count("Post").unwrap(), 0);
    assert_eq!(s.count("Comment").unwrap(), 0);
}

#[test]
fn destroy_restrict_refuses_with_children() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Team")
            .string("name")
            .has_many_dependent("players", Dependent::Restrict)
            .finish(),
    )
    .unwrap();
    app.define(ModelDef::build("Player").belongs_to("team").finish())
        .unwrap();
    let mut s = app.session();
    let mut t = s
        .create_strict("Team", &[("name", Datum::text("a"))])
        .unwrap();
    s.create_strict("Player", &[("team_id", Datum::Int(t.id().unwrap()))])
        .unwrap();
    let err = s.destroy(&mut t).unwrap_err();
    assert!(matches!(err, OrmError::RecordNotDestroyed(_)));
    assert_eq!(s.count("Team").unwrap(), 1);
}

#[test]
fn destroy_nullify_keeps_children_with_null_fk() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Team")
            .string("name")
            .has_many_dependent("players", Dependent::Nullify)
            .finish(),
    )
    .unwrap();
    app.define(ModelDef::build("Player").belongs_to("team").finish())
        .unwrap();
    let mut s = app.session();
    let mut t = s
        .create_strict("Team", &[("name", Datum::text("a"))])
        .unwrap();
    s.create_strict("Player", &[("team_id", Datum::Int(t.id().unwrap()))])
        .unwrap();
    s.destroy(&mut t).unwrap();
    let players = s.all("Player").unwrap();
    assert_eq!(players.len(), 1);
    assert!(players[0].get("team_id").is_null());
}

#[test]
fn has_many_through_traverses_join_model() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Physician")
            .string("name")
            .has_many("appointments")
            .has_many_through("patients", "appointments")
            .finish(),
    )
    .unwrap();
    app.define(
        ModelDef::build("Appointment")
            .belongs_to("physician")
            .belongs_to("patient")
            .finish(),
    )
    .unwrap();
    app.define(ModelDef::build("Patient").string("name").finish())
        .unwrap();
    let mut s = app.session();
    let doc = s
        .create_strict("Physician", &[("name", Datum::text("dr"))])
        .unwrap();
    for n in ["alice", "bob"] {
        let pat = s
            .create_strict("Patient", &[("name", Datum::text(n))])
            .unwrap();
        s.create_strict(
            "Appointment",
            &[
                ("physician_id", Datum::Int(doc.id().unwrap())),
                ("patient_id", Datum::Int(pat.id().unwrap())),
            ],
        )
        .unwrap();
    }
    let patients = s.associated(&doc, "patients").unwrap();
    let mut names: Vec<String> = patients
        .iter()
        .map(|p| p.get("name").as_text().unwrap().to_string())
        .collect();
    names.sort();
    assert_eq!(names, vec!["alice", "bob"]);
}

#[test]
fn optimistic_locking_raises_stale_object() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Order")
            .string("state")
            .with_lock_version()
            .finish(),
    )
    .unwrap();
    let mut s1 = app.session();
    let mut s2 = app.session();
    let o = s1
        .create_strict("Order", &[("state", Datum::text("cart"))])
        .unwrap();
    let id = o.id().unwrap();
    // two controllers load the same order
    let mut copy1 = s1.find("Order", id).unwrap();
    let mut copy2 = s2.find("Order", id).unwrap();
    assert_eq!(copy1.get("lock_version"), Datum::Int(0));
    // first save wins, bumping lock_version
    s1.update_attributes(&mut copy1, &[("state", Datum::text("paid"))])
        .unwrap();
    // second save is stale
    let err = s2
        .update_attributes(&mut copy2, &[("state", Datum::text("cancelled"))])
        .unwrap_err();
    assert!(matches!(err, OrmError::StaleObject(_)));
    // state is the first writer's
    let fresh = s1.find("Order", id).unwrap();
    assert_eq!(fresh.get("state"), Datum::text("paid"));
    assert_eq!(fresh.get("lock_version"), Datum::Int(1));
}

#[test]
fn pessimistic_lock_serializes_read_modify_write() {
    let app = App::in_memory();
    app.define(ModelDef::build("Stock").integer("count_on_hand").finish())
        .unwrap();
    let mut s = app.session();
    let item = s
        .create_strict("Stock", &[("count_on_hand", Datum::Int(10))])
        .unwrap();
    let id = item.id().unwrap();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let app = app.clone();
        handles.push(std::thread::spawn(move || {
            let mut s = app.session();
            s.transaction(|s| {
                // Spree's adjust_count_on_hand: lock, read, write
                let mut rec = s.find("Stock", id)?;
                s.lock(&mut rec)?;
                let v = rec.get("count_on_hand").as_int().unwrap();
                rec.set("count_on_hand", v - 1);
                s.save_strict(&mut rec)?;
                Ok(())
            })
            .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let fresh = s.find("Stock", id).unwrap();
    assert_eq!(fresh.get("count_on_hand"), Datum::Int(6));
}

#[test]
fn transaction_block_rolls_back_on_error() {
    let app = blog_app();
    let mut s = app.session();
    let result: Result<(), OrmError> = s.transaction(|s| {
        s.create_strict("Author", &[("name", Datum::text("peter"))])?;
        Err(OrmError::Config("boom".into()))
    });
    assert!(result.is_err());
    assert_eq!(s.count("Author").unwrap(), 0);
}

#[test]
fn nested_transactions_join_the_outer_one() {
    let app = blog_app();
    let mut s = app.session();
    let result: Result<(), OrmError> = s.transaction(|s| {
        s.create_strict("Author", &[("name", Datum::text("a"))])?;
        s.transaction(|s| {
            s.create_strict("Author", &[("name", Datum::text("b"))])?;
            Ok(())
        })?;
        Err(OrmError::Config("rollback everything".into()))
    });
    assert!(result.is_err());
    // Rails default: nested block joined the outer txn, so both roll back
    assert_eq!(s.count("Author").unwrap(), 0);
}

#[test]
fn reload_refreshes_attributes() {
    let app = blog_app();
    let mut s1 = app.session();
    let mut s2 = app.session();
    let mut a = s1
        .create_strict("Author", &[("name", Datum::text("old"))])
        .unwrap();
    let mut other = s2.find("Author", a.id().unwrap()).unwrap();
    s2.update_attributes(&mut other, &[("name", Datum::text("new"))])
        .unwrap();
    assert_eq!(a.get("name"), Datum::text("old"));
    s1.reload(&mut a).unwrap();
    assert_eq!(a.get("name"), Datum::text("new"));
}

#[test]
fn delete_skips_dependent_callbacks() {
    let app = blog_app();
    let mut s = app.session();
    let mut a = s
        .create_strict("Author", &[("name", Datum::text("p"))])
        .unwrap();
    s.create_strict(
        "Post",
        &[
            ("title", Datum::text("t")),
            ("author_id", Datum::Int(a.id().unwrap())),
        ],
    )
    .unwrap();
    s.delete(&mut a).unwrap();
    // bare delete orphaned the post — exactly why Rails distinguishes
    // destroy from delete
    assert_eq!(s.count("Author").unwrap(), 0);
    assert_eq!(s.count("Post").unwrap(), 1);
}

#[test]
fn numericality_and_inclusion_validators() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Product")
            .integer("stock")
            .string("status")
            .validates_numericality_of(
                "stock",
                Numericality::number().greater_than_or_equal_to(0.0),
            )
            .validates_inclusion_of(
                "status",
                vec![Datum::text("active"), Datum::text("retired")],
            )
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let bad = s
        .create(
            "Product",
            &[("stock", Datum::Int(-1)), ("status", Datum::text("weird"))],
        )
        .unwrap();
    assert!(!bad.is_persisted());
    assert_eq!(bad.errors.len(), 2);
    let good = s
        .create(
            "Product",
            &[("stock", Datum::Int(0)), ("status", Datum::text("active"))],
        )
        .unwrap();
    assert!(good.is_persisted());
}

#[test]
fn format_email_length_confirmation_validators() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Account")
            .string("username")
            .string("email")
            .string("password")
            .attribute("zip", DataType::Text)
            .validates_length_of("username", Some(3), Some(12))
            .validates_email("email")
            .validates_confirmation_of("password")
            .validates_format_of("zip", r"^\d{5}$")
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let mut r = app.new_record("Account").unwrap();
    r.set("username", "ab")
        .set("email", "nope")
        .set("password", "s3cret")
        .set("password_confirmation", "different")
        .set("zip", "9472");
    assert!(!s.save(&mut r).unwrap());
    assert_eq!(r.errors.len(), 4);
    r.set("username", "alice")
        .set("email", "alice@example.com")
        .set("password_confirmation", "s3cret")
        .set("zip", "94720");
    assert!(s.save(&mut r).unwrap());
}

#[test]
fn uniqueness_scope_and_case_insensitivity() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Tag")
            .string("name")
            .integer("site_id")
            .validates_uniqueness_of_scoped("name", &["site_id"])
            .finish(),
    )
    .unwrap();
    app.define(
        ModelDef::build("Handle")
            .string("nick")
            .validates_uniqueness_of_ci("nick")
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    s.create_strict(
        "Tag",
        &[("name", Datum::text("x")), ("site_id", Datum::Int(1))],
    )
    .unwrap();
    // same name, other site: allowed
    let ok = s
        .create(
            "Tag",
            &[("name", Datum::text("x")), ("site_id", Datum::Int(2))],
        )
        .unwrap();
    assert!(ok.is_persisted());
    // same name, same site: rejected
    let dup = s
        .create(
            "Tag",
            &[("name", Datum::text("x")), ("site_id", Datum::Int(1))],
        )
        .unwrap();
    assert!(!dup.is_persisted());
    // case-insensitive handle
    s.create_strict("Handle", &[("nick", Datum::text("Peter"))])
        .unwrap();
    let dup = s
        .create("Handle", &[("nick", Datum::text("pEtEr"))])
        .unwrap();
    assert!(!dup.is_persisted());
}

#[test]
fn uniqueness_excludes_own_row_on_update() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Slug")
            .string("value")
            .validates_uniqueness_of("value")
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let mut r = s
        .create_strict("Slug", &[("value", Datum::text("home"))])
        .unwrap();
    // re-saving the same record must not collide with itself
    assert!(s.save(&mut r).unwrap());
    assert!(s
        .update_attributes(&mut r, &[("value", Datum::text("home"))])
        .unwrap());
}

#[test]
fn custom_validator_with_db_access() {
    // Spree's AvailabilityValidator shape: an order line is valid only if
    // inventory covers it (a DB-reading UDF — not I-confluent, §4.3).
    let app = App::in_memory();
    app.define(ModelDef::build("Inventory").integer("on_hand").finish())
        .unwrap();
    app.define(
        ModelDef::build("OrderLine")
            .integer("inventory_id")
            .integer("quantity")
            .validates_with("AvailabilityValidator", |rec, ctx, errors| {
                let inv_id = rec.get("inventory_id");
                let qty = rec.get("quantity").as_int().unwrap_or(0);
                match ctx.fetch_where("Inventory", &[("id".into(), inv_id)]) {
                    Ok(rows) if !rows.is_empty() => {
                        let on_hand = rows[0].get("on_hand").as_int().unwrap_or(0);
                        if on_hand < qty {
                            errors.add("quantity", "exceeds available inventory");
                        }
                    }
                    _ => errors.add("inventory_id", "does not exist"),
                }
            })
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let inv = s
        .create_strict("Inventory", &[("on_hand", Datum::Int(5))])
        .unwrap();
    let ok = s
        .create(
            "OrderLine",
            &[
                ("inventory_id", Datum::Int(inv.id().unwrap())),
                ("quantity", Datum::Int(3)),
            ],
        )
        .unwrap();
    assert!(ok.is_persisted());
    let too_many = s
        .create(
            "OrderLine",
            &[
                ("inventory_id", Datum::Int(inv.id().unwrap())),
                ("quantity", Datum::Int(9)),
            ],
        )
        .unwrap();
    assert!(!too_many.is_persisted());
    assert_eq!(
        too_many.errors.on("quantity"),
        vec!["exceeds available inventory"]
    );
}

#[test]
fn validates_associated_checks_children_validity() {
    let app = App::in_memory();
    app.define(
        ModelDef::build("Invoice")
            .string("number")
            .has_many("line_items")
            .validates_associated("line_items")
            .finish(),
    )
    .unwrap();
    app.define(
        ModelDef::build("LineItem")
            .integer("amount")
            .belongs_to("invoice")
            .validates_numericality_of("amount", Numericality::number().greater_than(0.0))
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let mut inv = s
        .create_strict("Invoice", &[("number", Datum::text("i-1"))])
        .unwrap();
    // insert an invalid child directly (bypassing its validations, as a
    // bulk import might)
    let item_model = app.model("LineItem").unwrap();
    let mut bad_item = feral_orm::Record::new(item_model);
    bad_item
        .set("amount", 0i64)
        .set("invoice_id", inv.id().unwrap());
    {
        // bare write through a raw engine transaction
        let mut tx = app.db().txn().begin();
        tx.insert("line_items", bad_item.to_tuple()).unwrap();
        tx.commit().unwrap();
    }
    // now re-saving the invoice fails validates_associated
    assert!(!s.save(&mut inv).unwrap());
    assert_eq!(inv.errors.on("line_items"), vec!["is invalid"]);
}
