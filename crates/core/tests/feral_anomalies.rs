//! The paper's central claim, as tests: feral validations admit integrity
//! violations under concurrent execution at weak isolation, while their
//! in-database counterparts (and serializable isolation) do not.

use feral_db::{Config, Database, Datum, IsolationLevel, OnDelete};
use feral_orm::{App, Dependent, ModelDef};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

fn uniqueness_app(iso: IsolationLevel, pg_ssi_bug: bool) -> App {
    let db = Database::new(Config {
        default_isolation: iso,
        pg_ssi_bug,
        ..Config::default()
    });
    let app = App::new(db);
    app.define(
        ModelDef::build("ValidatedKeyValue")
            .string("key")
            .string("value")
            .validates_presence_of("key")
            .validates_uniqueness_of("key")
            .finish(),
    )
    .unwrap();
    // widen the validate→write race window, standing in for network/VM
    // latency in the paper's EC2 deployment
    app.set_validation_write_delay(Duration::from_micros(300));
    app
}

/// Fire `workers` concurrent saves of the same key and count how many
/// persisted.
fn race_same_key(app: &App, key: &str, workers: usize) -> usize {
    let barrier = Arc::new(Barrier::new(workers));
    let mut handles = Vec::new();
    for _ in 0..workers {
        let app = app.clone();
        let key = key.to_string();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut s = app.session();
            match s.create(
                "ValidatedKeyValue",
                &[("key", Datum::text(&key)), ("value", Datum::text("v"))],
            ) {
                Ok(r) => r.is_persisted(),
                Err(e) if e.is_retryable() => false,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }));
    }
    handles
        .into_iter()
        .filter(|_| true)
        .map(|h| h.join().unwrap())
        .filter(|&b| b)
        .count()
}

#[test]
fn feral_uniqueness_admits_duplicates_under_read_committed() {
    // The paper's stress test in miniature: with enough rounds, at least
    // one round must race (P=8 workers on the same key).
    let app = uniqueness_app(IsolationLevel::ReadCommitted, false);
    let mut total_persisted = 0;
    let rounds = 40;
    for round in 0..rounds {
        total_persisted += race_same_key(&app, &format!("key-{round}"), 8);
    }
    let duplicates = total_persisted - rounds;
    assert!(
        duplicates > 0,
        "expected at least one duplicate across {rounds} racing rounds"
    );
    // but the validation still bounds duplication: each key at most P rows
    let mut s = app.session();
    for round in 0..rounds {
        let rows = s
            .where_(
                "ValidatedKeyValue",
                &[("key", Datum::text(format!("key-{round}")))],
            )
            .unwrap();
        assert!(rows.len() <= 8, "key-{round} exceeded the P bound");
        assert!(!rows.is_empty());
    }
}

#[test]
fn duplicate_count_is_bounded_by_worker_count() {
    // §5.1: "each value ... can be inserted no more than P times."
    let app = uniqueness_app(IsolationLevel::ReadCommitted, false);
    for p in [2usize, 4, 6] {
        let key = format!("bound-{p}");
        let persisted = race_same_key(&app, &key, p);
        assert!(persisted >= 1);
        assert!(persisted <= p, "persisted {persisted} > P={p}");
    }
}

#[test]
fn serializable_isolation_eliminates_duplicates() {
    let app = uniqueness_app(IsolationLevel::Serializable, false);
    for round in 0..25 {
        let persisted = race_same_key(&app, &format!("key-{round}"), 8);
        assert!(
            persisted <= 1,
            "serializable admitted {persisted} copies of key-{round}"
        );
    }
}

#[test]
fn pg_ssi_bug_readmits_duplicates_under_nominal_serializable() {
    // Footnote 8: PostgreSQL's "serializable" admitted duplicates for the
    // Rails-derived transaction mix.
    let app = uniqueness_app(IsolationLevel::Serializable, true);
    let mut dup_rounds = 0;
    for round in 0..40 {
        if race_same_key(&app, &format!("key-{round}"), 8) > 1 {
            dup_rounds += 1;
        }
    }
    assert!(
        dup_rounds > 0,
        "the SSI-bug compatibility mode should leak at least one duplicate"
    );
}

#[test]
fn in_database_unique_index_eliminates_duplicates() {
    let app = uniqueness_app(IsolationLevel::ReadCommitted, false);
    // the migration the paper applied: an in-database unique index
    app.add_index("ValidatedKeyValue", &["key"], true).unwrap();
    for round in 0..25 {
        let persisted = race_same_key_tolerant(&app, &format!("key-{round}"), 8);
        assert_eq!(persisted, 1, "unique index must admit exactly one row");
    }
}

/// Like `race_same_key` but treats in-database unique violations as a
/// normal rejected save.
fn race_same_key_tolerant(app: &App, key: &str, workers: usize) -> usize {
    let barrier = Arc::new(Barrier::new(workers));
    let mut handles = Vec::new();
    for _ in 0..workers {
        let app = app.clone();
        let key = key.to_string();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut s = app.session();
            match s.create(
                "ValidatedKeyValue",
                &[("key", Datum::text(&key)), ("value", Datum::text("v"))],
            ) {
                Ok(r) => r.is_persisted(),
                Err(feral_orm::OrmError::Db(e)) if e.is_constraint_violation() => false,
                Err(e) if e.is_retryable() => false,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|&b| b)
        .count()
}

// ---------------------------------------------------------------------
// Association anomalies (paper §5.4)
// ---------------------------------------------------------------------

fn association_app(declare_fk: bool) -> App {
    let app = App::in_memory();
    app.define(
        ModelDef::build("ValidatedDepartment")
            .string("name")
            .has_many_dependent("validated_users", Dependent::Destroy)
            .finish(),
    )
    .unwrap();
    app.define(
        ModelDef::build("ValidatedUser")
            .belongs_to("validated_department")
            .validates_presence_of("validated_department")
            .finish(),
    )
    .unwrap();
    if declare_fk {
        app.add_foreign_key("ValidatedUser", "validated_department", OnDelete::Cascade)
            .unwrap();
    }
    app.set_validation_write_delay(Duration::from_micros(300));
    app
}

/// One stress round: delete a department while `inserters` concurrently
/// create users in it. Returns the number of orphaned users left behind.
fn orphan_round(app: &App, dept_id: i64, inserters: usize) -> usize {
    let barrier = Arc::new(Barrier::new(inserters + 1));
    let mut handles = Vec::new();
    for _ in 0..inserters {
        let app = app.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut s = app.session();
            let _ = s.create(
                "ValidatedUser",
                &[("validated_department_id", Datum::Int(dept_id))],
            );
        }));
    }
    {
        let app = app.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            // land the destroy while inserters sit between their
            // validation SELECT and their write (the injected
            // validation_write_delay is 300us)
            thread::sleep(Duration::from_micros(150));
            let mut s = app.session();
            while let Ok(mut dept) = s.find("ValidatedDepartment", dept_id) {
                match s.destroy(&mut dept) {
                    Ok(()) => break,
                    Err(e) if e.is_retryable() => continue,
                    Err(e) => panic!("destroy failed: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // count users whose department no longer exists
    let mut s = app.session();
    let users = s
        .where_(
            "ValidatedUser",
            &[("validated_department_id", Datum::Int(dept_id))],
        )
        .unwrap();
    users.len()
}

#[test]
fn feral_cascading_destroy_leaks_orphans() {
    let app = association_app(false);
    let mut s = app.session();
    let mut orphans = 0;
    for round in 0..60 {
        let dept = s
            .create_strict(
                "ValidatedDepartment",
                &[("name", Datum::text(format!("d{round}")))],
            )
            .unwrap();
        orphans += orphan_round(&app, dept.id().unwrap(), 8);
    }
    assert!(
        orphans > 0,
        "expected the feral cascade to miss at least one concurrent insert"
    );
}

#[test]
fn in_database_fk_prevents_all_orphans() {
    let app = association_app(true);
    let mut s = app.session();
    for round in 0..20 {
        let dept = s
            .create_strict(
                "ValidatedDepartment",
                &[("name", Datum::text(format!("d{round}")))],
            )
            .unwrap();
        let orphans = orphan_round(&app, dept.id().unwrap(), 8);
        assert_eq!(orphans, 0, "round {round} leaked orphans despite the FK");
    }
    // every surviving user points at a surviving department
    let users = s.all("ValidatedUser").unwrap();
    for u in users {
        let d = u.get("validated_department_id");
        assert!(
            s.find_by("ValidatedDepartment", &[("id", d)])
                .unwrap()
                .is_some(),
            "orphan slipped past the in-database constraint"
        );
    }
}

#[test]
fn spree_lost_update_from_unlocked_setter() {
    // §3.2: Spree protects adjust_count_on_hand with a pessimistic lock
    // but set_count_on_hand takes none. Two concurrent unlocked setters
    // race read-modify-write and lose one update.
    let app = App::in_memory();
    app.define(
        ModelDef::build("StockItem")
            .integer("count_on_hand")
            .finish(),
    )
    .unwrap();
    let mut s = app.session();
    let item = s
        .create_strict("StockItem", &[("count_on_hand", Datum::Int(0))])
        .unwrap();
    let id = item.id().unwrap();
    let barrier = Arc::new(Barrier::new(2));
    let mut handles = Vec::new();
    for delta in [5i64, 7] {
        let app = app.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut s = app.session();
            // unlocked read-modify-write (set_count_on_hand)
            let mut rec = s.find("StockItem", id).unwrap();
            let v = rec.get("count_on_hand").as_int().unwrap();
            std::thread::sleep(Duration::from_millis(5));
            rec.set("count_on_hand", v + delta);
            s.save_strict(&mut rec).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let fresh = s.find("StockItem", id).unwrap();
    let v = fresh.get("count_on_hand").as_int().unwrap();
    assert!(
        v == 5 || v == 7,
        "expected a lost update (got {v}, not 12) — both writers raced"
    );
}
