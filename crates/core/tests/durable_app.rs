//! A durable application: the ORM over a WAL-backed database, surviving
//! restart with data and constraints intact.

use feral_db::{Config, Database, Datum};
use feral_orm::{App, ModelDef};
use std::path::PathBuf;

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("feral-orm-durable-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{name}.wal"));
    let _ = std::fs::remove_file(&p);
    p
}

fn member_model() -> ModelDef {
    ModelDef::build("Member")
        .string("username")
        .validates_presence_of("username")
        .validates_uniqueness_of("username")
        .finish()
}

fn open_app(path: &std::path::Path) -> App {
    let db = Database::open(Config {
        wal_path: Some(path.to_path_buf()),
        ..Config::default()
    })
    .unwrap();
    let app = App::new(db);
    app.define_or_attach(member_model()).unwrap();
    app
}

#[test]
fn records_survive_app_restart() {
    let path = wal_path("restart");
    let peter_id;
    {
        let app = open_app(&path);
        let mut s = app.session();
        let peter = s
            .create_strict("Member", &[("username", Datum::text("peter"))])
            .unwrap();
        peter_id = peter.id().unwrap();
        s.create_strict("Member", &[("username", Datum::text("alan"))])
            .unwrap();
    }
    // "restart" the app
    let app = open_app(&path);
    let mut s = app.session();
    assert_eq!(s.count("Member").unwrap(), 2);
    let peter = s.find("Member", peter_id).unwrap();
    assert_eq!(peter.get("username"), Datum::text("peter"));
    // the feral uniqueness validation still sees recovered rows
    let dup = s
        .create("Member", &[("username", Datum::text("peter"))])
        .unwrap();
    assert!(!dup.is_persisted());
    // new ids don't collide with recovered ones
    let new = s
        .create_strict("Member", &[("username", Datum::text("joe"))])
        .unwrap();
    assert!(new.id().unwrap() > peter_id);
}

#[test]
fn unique_index_migration_survives_restart() {
    let path = wal_path("index");
    {
        let app = open_app(&path);
        app.add_index("Member", &["username"], true).unwrap();
        let mut s = app.session();
        s.create_strict("Member", &[("username", Datum::text("peter"))])
            .unwrap();
    }
    let app = open_app(&path);
    let mut s = app.session();
    // the in-database constraint is still there after restart
    let result = s.create("Member", &[("username", Datum::text("peter"))]);
    match result {
        Ok(r) => assert!(!r.is_persisted()),
        Err(e) => assert!(matches!(e, feral_orm::OrmError::Db(d) if d.is_constraint_violation())),
    }
    assert_eq!(s.count("Member").unwrap(), 1);
}

#[test]
fn updates_and_destroys_replay_correctly() {
    let path = wal_path("mutations");
    {
        let app = open_app(&path);
        let mut s = app.session();
        let mut a = s
            .create_strict("Member", &[("username", Datum::text("before"))])
            .unwrap();
        s.update_attributes(&mut a, &[("username", Datum::text("after"))])
            .unwrap();
        let mut b = s
            .create_strict("Member", &[("username", Datum::text("doomed"))])
            .unwrap();
        s.destroy(&mut b).unwrap();
    }
    let app = open_app(&path);
    let mut s = app.session();
    let all = s.all("Member").unwrap();
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].get("username"), Datum::text("after"));
}

#[test]
fn attach_rejects_schema_drift() {
    let path = wal_path("drift");
    {
        let app = open_app(&path);
        let mut s = app.session();
        s.create_strict("Member", &[("username", Datum::text("x"))])
            .unwrap();
    }
    // reopen with a model that declares a column the table never had
    let db = Database::open(Config {
        wal_path: Some(path.to_path_buf()),
        ..Config::default()
    })
    .unwrap();
    let app = App::new(db);
    let drifted = ModelDef::build("Member")
        .string("username")
        .string("brand_new_column")
        .finish();
    let err = app.define_or_attach(drifted).unwrap_err();
    assert!(matches!(err, feral_orm::OrmError::Config(m) if m.contains("brand_new_column")));
}
