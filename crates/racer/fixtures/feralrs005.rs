//! Seeded fault for FERALRS005 (broken-seqlock-pairing): the writer
//! bumps the version word once before the payload stores but never
//! after, so a reader can validate a torn read as consistent; the
//! reader checks the version only before the payload loads.

// racer:seqlock fixture::Slot::version guards fixture::Slot::words

struct Slot {
    version: AtomicU64,
    words: [AtomicU64; 7],
}

impl Slot {
    fn write(&self, payload: [u64; 7]) {
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v | 1, Ordering::Release);
        for (w, word) in self.words.iter().zip(payload) {
            w.store(word, Ordering::Release);
        }
        // missing: trailing version store publishing the even count
    }

    fn read(&self) -> [u64; 7] {
        let _v1 = self.version.load(Ordering::Acquire);
        let mut out = [0u64; 7];
        for (dst, w) in out.iter_mut().zip(&self.words) {
            *dst = w.load(Ordering::Acquire);
        }
        // missing: re-validation load of the version word
        out
    }
}
