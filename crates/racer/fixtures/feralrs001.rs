//! Seeded fault for FERALRS001 (lock-order-cycle): `a` then `b` in one
//! function, `b` then `a` in another — a deadlock-capable cycle in the
//! acquisition graph. Not compiled; analyzed standalone by `--validate`.

struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    fn forward(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let out = *ga + *gb;
        drop(gb);
        drop(ga);
        out
    }

    fn backward(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        let out = *gb - *ga;
        drop(ga);
        drop(gb);
        out
    }
}
