//! Seeded fault for FERALRS003 (declared-order-violation): the declared
//! discipline says shard latches come before the group buffer and that
//! the group buffer is terminal — this code takes the group lock first
//! and then a shard latch under it, violating both declarations.

// racer:order fixture::Pipeline::shards < fixture::Pipeline::group
// racer:terminal fixture::Pipeline::group

struct Pipeline {
    shards: Vec<Mutex<u64>>,
    group: Mutex<u64>,
}

impl Pipeline {
    fn inverted(&self) -> u64 {
        let g = self.group.lock();
        let s = self.shards[0].lock();
        let out = *g + *s;
        drop(s);
        drop(g);
        out
    }
}
