//! Seeded fault for FERALRS004 (relaxed-publication): the declared
//! publication field is stored with `Relaxed` ordering (readers may see
//! the index move before the payload it publishes) and loaded with
//! `Relaxed` on a non-owner thread without a vet.

// racer:publication fixture::Ring::head

struct Ring {
    head: AtomicU64,
}

impl Ring {
    fn publish(&self) {
        self.head.store(1, Ordering::Relaxed);
    }

    fn observe(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }
}
