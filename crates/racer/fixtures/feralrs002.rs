//! Seeded fault for FERALRS002 (unordered-latch-iteration): shard
//! latches taken under `.rev()` and under hash-ordered iteration — the
//! canonical ascending acquisition order is violated both ways.

struct Pipeline {
    shards: Vec<Mutex<u64>>,
    by_name: HashMap<String, Mutex<u64>>,
}

impl Pipeline {
    fn drain_backwards(&self) {
        for s in self.shards.iter().rev() {
            let g = s.lock();
            drop(g);
        }
    }

    fn drain_hashed(&self) {
        for s in self.by_name.values() {
            let g = s.lock();
            drop(g);
        }
    }

    fn descending_pair(&self) {
        let hi = self.shards[1].lock();
        let lo = self.shards[0].lock();
        drop(lo);
        drop(hi);
    }
}
