//! Seeded fault for FERALRS006 (unvetted-unsafe): an `unsafe` block
//! with no `SAFETY:` comment in the three lines above it and no
//! `racer:allow` vet.

fn sneak_read(x: &u64) -> u64 {
    let p = x as *const u64;

    unsafe { *p }
}
