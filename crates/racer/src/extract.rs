//! Per-function fact extraction: a scope-aware walk over a function
//! body that recovers lock acquisitions (with the classes they resolve
//! to and the set of classes already held), atomic operations with
//! their `Ordering` arguments, `unsafe` sites, and call sites.
//!
//! The walker is an abstract interpreter over the token stream: it
//! tracks local bindings (name → type + originating lock class), a
//! held-guard stack with block-scoped lifetimes (plus `drop()` and
//! guard reassignment), and the iteration context of `for` loops and
//! iterator chains — enough to tell `for &i in ids` over a `BTreeSet`
//! apart from a `.rev()` or `HashMap` walk, which is exactly the
//! distinction the shard-latch discipline hangs on.
//!
//! Extraction runs twice: pass one with an empty guard table, then a
//! second pass where calls to guard-returning helpers (`lock_shards`,
//! the scheduler's `lock()`) make the caller hold the classes the
//! callee acquires and returns.

use crate::lexer::{Token, TokenKind};
use crate::resolve::{
    atomic_ty, class_of_field, element, generic_arg, head, lock_ty, map_value, ordered_container,
    peel, LockTy, Symbols,
};
use crate::syntax::{matching, FnDef};
use std::collections::{BTreeMap, BTreeSet};

/// Atomic orderings recognized in argument lists.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic RMW/store/load method names.
const ATOMIC_OPS: [&str; 13] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Tokens that can never start an expression chain.
const KEYWORDS: [&str; 26] = [
    "let", "fn", "if", "else", "match", "for", "while", "loop", "return", "break", "continue",
    "in", "as", "where", "pub", "use", "mod", "impl", "struct", "enum", "trait", "type", "static",
    "const", "ref", "dyn",
];

/// How a lock was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqKind {
    /// `Mutex::lock` / `try_lock`.
    Lock,
    /// `RwLock::read` / `try_read`.
    Read,
    /// `RwLock::write` / `try_write`.
    Write,
}

impl AcqKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AcqKind::Lock => "lock",
            AcqKind::Read => "read",
            AcqKind::Write => "write",
        }
    }
}

/// Iteration context an acquisition happened under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterCtx {
    /// Inside a loop / iterator chain at all.
    pub iterated: bool,
    /// A `.rev()` was applied somewhere on the way.
    pub rev: bool,
    /// The iteration source is a `Hash*` container (no stable order).
    pub unordered: bool,
}

impl IterCtx {
    fn union(self, other: IterCtx) -> IterCtx {
        IterCtx {
            iterated: self.iterated || other.iterated,
            rev: self.rev || other.rev,
            unordered: self.unordered || other.unordered,
        }
    }
}

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Resolved lock class, or `?` when resolution failed.
    pub class: String,
    /// Mutex lock / rw read / rw write.
    pub kind: AcqKind,
    /// Non-blocking (`try_*`) acquisition.
    pub try_only: bool,
    /// Iteration context at the site.
    pub iter: IterCtx,
    /// Constant index into a lock container (`shards[0]`), if literal.
    pub const_index: Option<u64>,
    /// 1-based source line.
    pub line: u32,
}

/// One atomic operation site.
#[derive(Debug, Clone)]
pub struct AtomicOp {
    /// Resolved class of the atomic cell, or `?`.
    pub class: String,
    /// Method name (`load`, `store`, `fetch_add`, ...).
    pub op: String,
    /// `Ordering` arguments in positional order.
    pub orderings: Vec<String>,
    /// 1-based source line.
    pub line: u32,
}

impl AtomicOp {
    /// Whether this op writes the cell (stores and RMWs).
    pub fn is_store(&self) -> bool {
        self.op != "load"
    }
}

/// One `unsafe` site.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based source line of the `unsafe` keyword.
    pub line: u32,
}

/// One resolved call site with the lock classes held across it.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee key (`Struct::method` or free-fn name).
    pub callee: String,
    /// Classes held when the call is made.
    pub held: Vec<String>,
    /// 1-based source line.
    pub line: u32,
}

/// One intraprocedural nesting edge: `to` acquired while `from` held.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Class already held.
    pub from: String,
    /// Constant index the held acquisition used, if any.
    pub from_index: Option<u64>,
    /// Class being acquired.
    pub to: String,
    /// Constant index of the new acquisition, if any.
    pub to_index: Option<u64>,
    /// New acquisition is non-blocking.
    pub to_try: bool,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// Everything extracted from one function.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Qualified key (`Struct::method` / free name).
    pub key: String,
    /// Repo-relative file.
    pub file: String,
    /// Crate directory name.
    pub krate: String,
    /// 1-based line of the `fn`.
    pub line: u32,
    /// Lock acquisition sites.
    pub acquisitions: Vec<Acquisition>,
    /// Intraprocedural nesting edges.
    pub edges: Vec<Edge>,
    /// Resolved call sites.
    pub calls: Vec<CallSite>,
    /// Atomic operation sites.
    pub atomics: Vec<AtomicOp>,
    /// `unsafe` sites.
    pub unsafes: Vec<UnsafeSite>,
}

#[derive(Debug, Clone, Default)]
struct Binding {
    ty: String,
    class: Option<String>,
}

#[derive(Debug, Clone)]
struct Held {
    class: String,
    name: Option<String>,
    depth: usize,
    const_index: Option<u64>,
}

/// Chain evaluation result.
#[derive(Debug, Clone, Default)]
struct Val {
    ty: String,
    class: Option<String>,
    guard: bool,
    guard_classes: Vec<String>,
    iter: IterCtx,
    const_index: Option<u64>,
}

struct Walk<'a> {
    sy: &'a Symbols,
    guard_table: &'a BTreeMap<String, Vec<String>>,
    krate: &'a str,
    self_ty: Option<&'a str>,
    tokens: &'a [Token],
    facts: FnFacts,
    scopes: Vec<Vec<(String, Binding)>>,
    held: Vec<Held>,
    loops: Vec<(usize, IterCtx)>,
    /// One entry per open brace: the held set at entry, and whether a
    /// `return` was seen at this block's own level (the block diverges,
    /// so its held-set effects don't reach the fall-through path).
    blocks: Vec<(Vec<Held>, bool)>,
    depth: usize,
}

/// Extract facts for every function, resolving guard-returning helper
/// calls via a two-pass fixpoint.
pub fn extract_all(sy: &Symbols, lexed: &BTreeMap<String, crate::lexer::Lexed>) -> Vec<FnFacts> {
    let empty = BTreeMap::new();
    let pass1: Vec<FnFacts> = sy
        .fns
        .iter()
        .map(|f| extract_fn(sy, f, &lexed[&f.file].tokens, &empty))
        .collect();
    // Guard table: fns whose return type mentions a guard hand their
    // blocking acquisition classes to the caller.
    let mut table: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (f, facts) in sy.fns.iter().zip(&pass1) {
        if f.ret.contains("Guard") {
            let classes: BTreeSet<String> = facts
                .acquisitions
                .iter()
                .filter(|a| a.class != "?")
                .map(|a| a.class.clone())
                .collect();
            if !classes.is_empty() {
                table.insert(f.key(), classes.into_iter().collect());
            }
        }
    }
    sy.fns
        .iter()
        .map(|f| extract_fn(sy, f, &lexed[&f.file].tokens, &table))
        .collect()
}

fn extract_fn(
    sy: &Symbols,
    f: &FnDef,
    tokens: &[Token],
    guard_table: &BTreeMap<String, Vec<String>>,
) -> FnFacts {
    let mut scope0 = Vec::new();
    for p in &f.params {
        let class = sy.unique_class_of_ty(peel(&p.ty)).filter(|_| {
            lock_ty(&p.ty).is_some() || atomic_ty(&p.ty).is_some() || element(peel(&p.ty)).is_some()
        });
        scope0.push((
            p.name.clone(),
            Binding {
                ty: p.ty.clone(),
                class,
            },
        ));
    }
    let mut w = Walk {
        sy,
        guard_table,
        krate: &f.krate,
        self_ty: f.self_ty.as_deref(),
        tokens,
        facts: FnFacts {
            key: f.key(),
            file: f.file.clone(),
            krate: f.krate.clone(),
            line: f.line,
            ..FnFacts::default()
        },
        scopes: vec![scope0],
        held: Vec::new(),
        loops: Vec::new(),
        blocks: Vec::new(),
        depth: 0,
    };
    w.walk(f.body.0, f.body.1);
    let edges: BTreeSet<Edge> = w.facts.edges.drain(..).collect();
    w.facts.edges = edges.into_iter().collect();
    w.facts
}

impl<'a> Walk<'a> {
    fn walk(&mut self, start: usize, end: usize) {
        let mut i = start;
        while i < end {
            match &self.tokens[i].kind {
                TokenKind::Punct('{') => {
                    self.depth += 1;
                    self.scopes.push(Vec::new());
                    self.blocks.push((self.held.clone(), false));
                    i += 1;
                }
                TokenKind::Punct('}') => {
                    self.close_scope();
                    i += 1;
                }
                TokenKind::Punct(';') => {
                    let d = self.depth;
                    self.held.retain(|h| !(h.name.is_none() && h.depth == d));
                    i += 1;
                }
                TokenKind::Punct('#') if self.peek_punct(i + 1, '[') => {
                    i = matching(self.tokens, i + 1, '[', ']') + 1;
                }
                TokenKind::Ident(w) => match w.as_str() {
                    "let" => i = self.stmt_let(i + 1, end),
                    "for" => i = self.stmt_for(i + 1, end),
                    "if" | "while" if self.peek_ident(i + 1, "let") => {
                        i = self.stmt_if_let(i + 2, end)
                    }
                    "unsafe" => {
                        self.facts.unsafes.push(UnsafeSite {
                            line: self.tokens[i].line,
                        });
                        i += 1;
                    }
                    "drop" if self.peek_punct(i + 1, '(') => {
                        let close = matching(self.tokens, i + 1, '(', ')');
                        if close == i + 3 {
                            if let Some(name) = self.tokens[i + 2].ident() {
                                self.held.retain(|h| h.name.as_deref() != Some(name));
                            }
                        } else {
                            let (_, _) = self.eval_expr(i + 2, close);
                        }
                        i = close + 1;
                    }
                    "return" => {
                        // This branch leaves the function: whatever it
                        // dropped (or acquired) has no effect on the
                        // fall-through path, so the enclosing block
                        // restores its held set on close.
                        if let Some(top) = self.blocks.last_mut() {
                            top.1 = true;
                        }
                        i += 1;
                    }
                    "match" | "if" | "while" => {
                        // condition / scrutinee is an ordinary chain
                        i += 1;
                    }
                    kw if KEYWORDS.contains(&kw) => i += 1,
                    _ => {
                        let (v, ni) = self.eval_expr(i, end);
                        // simple-ident reassignment: `g = chain.lock()`
                        if ni == i + 1
                            && ni < end
                            && self.tokens[ni].is_punct('=')
                            && !self.peek_punct(ni + 1, '=')
                        {
                            let name = self.tokens[i].ident().unwrap_or("_").to_string();
                            let (rv, k) = self.eval_expr(ni + 1, end);
                            self.held.retain(|h| h.name.as_deref() != Some(&name));
                            if rv.guard {
                                self.name_temp_guards(&rv, &name);
                            } else {
                                self.bind(
                                    &name,
                                    Binding {
                                        ty: rv.ty,
                                        class: rv.class,
                                    },
                                );
                            }
                            i = k;
                        } else {
                            let _ = v;
                            i = ni.max(i + 1);
                        }
                    }
                },
                _ => i += 1,
            }
        }
    }

    fn close_scope(&mut self) {
        self.depth = self.depth.saturating_sub(1);
        self.scopes.pop();
        if let Some((snapshot, diverges)) = self.blocks.pop() {
            if diverges {
                self.held = snapshot;
            }
        }
        let d = self.depth;
        self.held.retain(|h| h.depth <= d);
        self.loops.retain(|(ld, _)| *ld <= d);
    }

    fn peek_punct(&self, i: usize, c: char) -> bool {
        self.tokens.get(i).is_some_and(|t| t.is_punct(c))
    }

    fn peek_ident(&self, i: usize, s: &str) -> bool {
        self.tokens.get(i).is_some_and(|t| t.is_ident(s))
    }

    fn bind(&mut self, name: &str, b: Binding) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.push((name.to_string(), b));
        }
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(n, _)| n == name).map(|(_, b)| b))
    }

    /// Give names to the anonymous held entries a guard expression just
    /// pushed, so `drop(name)` and scope exit release them.
    fn name_temp_guards(&mut self, v: &Val, name: &str) {
        let classes: BTreeSet<&String> = v.guard_classes.iter().collect();
        for h in self.held.iter_mut().rev() {
            if h.name.is_none() && classes.contains(&h.class) {
                h.name = Some(name.to_string());
            }
        }
    }

    fn cur_iter(&self, chain: IterCtx) -> IterCtx {
        self.loops
            .iter()
            .fold(chain, |acc, (_, ctx)| acc.union(*ctx))
    }

    fn held_classes(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        self.held
            .iter()
            .filter(|h| h.class != "?")
            .filter(|h| seen.insert(h.class.clone()))
            .map(|h| h.class.clone())
            .collect()
    }

    fn emit_acquisition(
        &mut self,
        class: String,
        kind: AcqKind,
        try_only: bool,
        iter: IterCtx,
        const_index: Option<u64>,
        line: u32,
    ) {
        if class != "?" {
            let mut seen = BTreeSet::new();
            for h in &self.held {
                if h.class != "?" && seen.insert((h.class.clone(), h.const_index)) {
                    self.facts.edges.push(Edge {
                        from: h.class.clone(),
                        from_index: h.const_index,
                        to: class.clone(),
                        to_index: const_index,
                        to_try: try_only,
                        line,
                    });
                }
            }
        }
        self.facts.acquisitions.push(Acquisition {
            class: class.clone(),
            kind,
            try_only,
            iter,
            const_index,
            line,
        });
        self.held.push(Held {
            class,
            name: None,
            depth: self.depth,
            const_index,
        });
    }

    // -- statements ------------------------------------------------------

    /// `let PATTERN (: TY)? (= EXPR)? ;` — returns the index after the
    /// initializer (the trailing `;` is handled by the main loop).
    fn stmt_let(&mut self, start: usize, end: usize) -> usize {
        let mut ids: Vec<String> = Vec::new();
        let mut wrapper = false;
        let mut ann_start = None;
        let mut depth = 0i32;
        let mut j = start;
        while j < end {
            match &self.tokens[j].kind {
                TokenKind::Punct('<') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct('>') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('=') if depth <= 0 => break,
                TokenKind::Punct(';') if depth <= 0 => break,
                TokenKind::Punct(':') if depth <= 0 && ann_start.is_none() => {
                    ann_start = Some(j + 1)
                }
                TokenKind::Ident(id) if ann_start.is_none() => match id.as_str() {
                    "Some" | "Ok" => wrapper = true,
                    "mut" | "ref" | "Err" | "None" => {}
                    _ => ids.push(id.clone()),
                },
                _ => {}
            }
            j += 1;
        }
        let ann_ty = ann_start.map(|s| crate::syntax::normalize_ty(&self.tokens[s..j]));
        if j >= end || self.tokens[j].is_punct(';') {
            for id in &ids {
                self.bind(
                    id,
                    Binding {
                        ty: ann_ty.clone().unwrap_or_default(),
                        class: None,
                    },
                );
            }
            return j;
        }
        let (v, k) = self.eval_expr(j + 1, end);
        if v.guard {
            if let Some(name) = ids.first() {
                self.held
                    .retain(|h| h.name.as_deref() != Some(name.as_str()));
                self.name_temp_guards(&v, name);
                self.bind(
                    name,
                    Binding {
                        ty: guard_inner(&v.ty),
                        class: v.class.clone(),
                    },
                );
            }
        } else {
            let ty = if wrapper {
                element(peel(&v.ty)).unwrap_or("").to_string()
            } else if v.ty.is_empty() {
                ann_ty.unwrap_or_default()
            } else {
                v.ty.clone()
            };
            for id in &ids {
                self.bind(
                    id,
                    Binding {
                        ty: ty.clone(),
                        class: v.class.clone(),
                    },
                );
            }
        }
        k
    }

    /// `for PATTERN in EXPR { ... }` — binds the pattern to the element
    /// of the source and pushes the loop's iteration context.
    fn stmt_for(&mut self, start: usize, end: usize) -> usize {
        let mut ids: Vec<String> = Vec::new();
        let mut j = start;
        while j < end && !self.tokens[j].is_ident("in") {
            if let Some(id) = self.tokens[j].ident() {
                if id != "mut" && id != "ref" {
                    ids.push(id.to_string());
                }
            }
            j += 1;
        }
        let (v, k) = self.eval_expr(j + 1, end);
        let mut ctx = v.iter;
        ctx.iterated = true;
        if !v.iter.iterated {
            // plain container in a `for`: orderedness from its type
            ctx.unordered |= !ordered_container(peel(&v.ty));
        }
        let elem = if v.iter.iterated {
            v.ty.clone()
        } else {
            element(peel(&v.ty)).unwrap_or("").to_string()
        };
        for id in &ids {
            self.bind(
                id,
                Binding {
                    ty: elem.clone(),
                    class: v.class.clone(),
                },
            );
        }
        self.loops.push((self.depth + 1, ctx));
        k
    }

    /// `if let PAT = EXPR { ... }` / `while let ...` — binds the pattern
    /// idents to the unwrapped element of the scrutinee.
    fn stmt_if_let(&mut self, start: usize, end: usize) -> usize {
        let mut ids: Vec<String> = Vec::new();
        let mut j = start;
        let mut depth = 0i32;
        while j < end {
            match &self.tokens[j].kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => depth -= 1,
                TokenKind::Punct('=') if depth <= 0 => break,
                TokenKind::Ident(id) => match id.as_str() {
                    "Some" | "Ok" | "Err" | "mut" | "ref" | "None" => {}
                    _ => ids.push(id.clone()),
                },
                _ => {}
            }
            j += 1;
        }
        let (v, k) = self.eval_expr(j + 1, end);
        if v.guard {
            // `if let Some(g) = x.try_lock()` — name the guard
            if let Some(name) = ids.first() {
                self.name_temp_guards(&v, name);
                self.bind(
                    name,
                    Binding {
                        ty: guard_inner(&v.ty),
                        class: v.class.clone(),
                    },
                );
            }
        } else {
            let elem = element(peel(&v.ty)).unwrap_or("").to_string();
            for id in &ids {
                self.bind(
                    id,
                    Binding {
                        ty: elem.clone(),
                        class: v.class.clone(),
                    },
                );
            }
        }
        k
    }

    // -- expressions -----------------------------------------------------

    /// Expression head: `match`/`unsafe` blocks get special treatment,
    /// everything else is a chain.
    fn eval_expr(&mut self, i: usize, end: usize) -> (Val, usize) {
        if i >= end {
            return (Val::default(), i);
        }
        if self.tokens[i].is_ident("match") {
            let (sv, j) = self.eval_chain(i + 1, end);
            if j < end && self.tokens[j].is_punct('{') {
                let close = matching(self.tokens, j, '{', '}');
                let before = self.facts.acquisitions.len();
                self.walk(j, close + 1);
                let new_block: Vec<&Acquisition> = self.facts.acquisitions[before..]
                    .iter()
                    .filter(|a| !a.try_only)
                    .collect();
                if let Some(last) = new_block.last() {
                    let v = Val {
                        ty: String::new(),
                        class: Some(last.class.clone()),
                        guard: true,
                        guard_classes: new_block.iter().map(|a| a.class.clone()).collect(),
                        ..Val::default()
                    };
                    return (v, close + 1);
                }
                if sv.guard {
                    return (sv, close + 1);
                }
                return (Val::default(), close + 1);
            }
            return (sv, j);
        }
        if self.tokens[i].is_ident("unsafe") {
            self.facts.unsafes.push(UnsafeSite {
                line: self.tokens[i].line,
            });
            if self.peek_punct(i + 1, '{') {
                let close = matching(self.tokens, i + 1, '{', '}');
                self.walk(i + 1, close + 1);
                return (Val::default(), close + 1);
            }
            return (Val::default(), i + 1);
        }
        if self.tokens[i].is_ident("if") {
            // `let x = if c { a } else { b }` — walk the whole ladder
            let mut j = i + 1;
            let before = self.facts.acquisitions.len();
            loop {
                let (_, cj) = self.eval_chain(j, end);
                let mut bj = cj;
                while bj < end && !self.tokens[bj].is_punct('{') {
                    bj += 1;
                }
                if bj >= end {
                    return (Val::default(), bj);
                }
                let close = matching(self.tokens, bj, '{', '}');
                self.walk(bj, close + 1);
                j = close + 1;
                if j < end && self.tokens[j].is_ident("else") {
                    j += 1;
                    if j < end && self.tokens[j].is_punct('{') {
                        let close = matching(self.tokens, j, '{', '}');
                        self.walk(j, close + 1);
                        j = close + 1;
                        break;
                    }
                    if j < end && self.tokens[j].is_ident("if") {
                        j += 1;
                        continue;
                    }
                    break;
                }
                break;
            }
            let new_block: Vec<String> = self.facts.acquisitions[before..]
                .iter()
                .filter(|a| !a.try_only)
                .map(|a| a.class.clone())
                .collect();
            if let Some(last) = new_block.last() {
                return (
                    Val {
                        class: Some(last.clone()),
                        guard: true,
                        guard_classes: new_block,
                        ..Val::default()
                    },
                    j,
                );
            }
            return (Val::default(), j);
        }
        self.eval_chain(i, end)
    }

    /// Evaluate one expression chain starting at `i`; returns the value
    /// and the index of the first token past the chain.
    fn eval_chain(&mut self, mut i: usize, end: usize) -> (Val, usize) {
        // prefixes
        while i < end {
            match &self.tokens[i].kind {
                TokenKind::Punct('&') | TokenKind::Punct('*') | TokenKind::Punct('!') => i += 1,
                TokenKind::Ident(w) if w == "mut" || w == "move" => i += 1,
                _ => break,
            }
        }
        if i >= end {
            return (Val::default(), i);
        }
        let mut v = Val::default();
        match &self.tokens[i].kind {
            TokenKind::Punct('(') => {
                let close = matching(self.tokens, i, '(', ')');
                let (inner, _) = self.eval_expr(i + 1, close);
                v = inner;
                i = close + 1;
            }
            TokenKind::Num(n) => {
                v.const_index = n.parse().ok();
                i += 1;
            }
            TokenKind::Str | TokenKind::Char => i += 1,
            TokenKind::Ident(name) => {
                if KEYWORDS.contains(&name.as_str()) {
                    return (Val::default(), i + 1);
                }
                let sname = if name == "Self" {
                    self.self_ty.unwrap_or("").to_string()
                } else {
                    name.clone()
                };
                if self.peek_punct(i + 1, ':') && self.peek_punct(i + 2, ':') {
                    return self.eval_path(i, end);
                }
                if self.peek_punct(i + 1, '!') {
                    // macro: walk the delimited contents as statements
                    let open = i + 2;
                    if open < end {
                        let (oc, cc) = match &self.tokens[open].kind {
                            TokenKind::Punct('(') => ('(', ')'),
                            TokenKind::Punct('[') => ('[', ']'),
                            TokenKind::Punct('{') => ('{', '}'),
                            _ => return (Val::default(), open),
                        };
                        let close = matching(self.tokens, open, oc, cc);
                        if oc == '{' {
                            self.walk(open, close + 1);
                        } else {
                            self.walk(open + 1, close);
                        }
                        return (Val::default(), close + 1);
                    }
                    return (Val::default(), open);
                }
                if name == "self" {
                    v.ty = self.self_ty.unwrap_or("").to_string();
                    i += 1;
                } else if let Some(b) = self.lookup(name) {
                    v.ty = b.ty.clone();
                    v.class = b.class.clone();
                    i += 1;
                } else if let Some(st) = self.sy.statics.get(name) {
                    v.ty = st.ty.clone();
                    v.class = Some(format!("{}::{}", st.krate, st.name));
                    i += 1;
                } else if self.peek_punct(i + 1, '(') {
                    // free fn (or enum-variant constructor) call
                    let close = matching(self.tokens, i + 1, '(', ')');
                    let held = self.held_classes();
                    if let Some(fd) = self.free_fn(&sname) {
                        let (key, ret) = (fd.key(), fd.ret.clone());
                        self.facts.calls.push(CallSite {
                            callee: key.clone(),
                            held,
                            line: self.tokens[i].line,
                        });
                        self.eval_args(i + 1, &Val::default(), &sname);
                        v = self.call_result(&key, &ret, &Val::default());
                    } else {
                        self.eval_args(i + 1, &Val::default(), &sname);
                    }
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            _ => return (Val::default(), i + 1),
        }
        self.eval_suffixes(v, i, end)
    }

    /// `A::b(...)` / `A::B::c(...)` paths: associated calls on structs,
    /// free fns behind module paths, or plain path constants.
    fn eval_path(&mut self, i: usize, end: usize) -> (Val, usize) {
        let mut segs: Vec<String> = Vec::new();
        let mut j = i;
        while j < end {
            if let Some(id) = self.tokens[j].ident() {
                segs.push(if id == "Self" {
                    self.self_ty.unwrap_or("").to_string()
                } else {
                    id.to_string()
                });
                if self.peek_punct(j + 1, ':') && self.peek_punct(j + 2, ':') {
                    j += 3;
                    continue;
                }
                j += 1;
                break;
            }
            break;
        }
        let last = segs.last().cloned().unwrap_or_default();
        if j < end && self.tokens[j].is_punct('(') {
            let close = matching(self.tokens, j, '(', ')');
            let owner = segs.iter().rev().nth(1).cloned().unwrap_or_default();
            let held = self.held_classes();
            let resolved = if self.sy.struct_def(&owner, self.krate).is_some() {
                self.sy
                    .method(&owner, &last)
                    .map(|f| (f.key(), f.ret.clone()))
            } else {
                self.free_fn(&last).map(|f| (f.key(), f.ret.clone()))
            };
            if let Some((key, ret)) = resolved {
                self.facts.calls.push(CallSite {
                    callee: key.clone(),
                    held,
                    line: self.tokens[i].line,
                });
                self.eval_args(j, &Val::default(), &last);
                let v = self.call_result(&key, &ret, &Val::default());
                return self.eval_suffixes(v, close + 1, end);
            }
            self.eval_args(j, &Val::default(), &last);
            return self.eval_suffixes(Val::default(), close + 1, end);
        }
        // plain path (constant / enum variant): if the owner is a known
        // struct with a matching field-less static nothing to do.
        self.eval_suffixes(Val::default(), j, end)
    }

    /// A free function with a unique definition, preferring ones
    /// actually defined free over same-named methods.
    fn free_fn(&self, name: &str) -> Option<&FnDef> {
        let idxs = self.sy.by_name.get(name)?;
        let free: Vec<&FnDef> = idxs
            .iter()
            .map(|&x| &self.sy.fns[x])
            .filter(|f| f.self_ty.is_none())
            .collect();
        match free.as_slice() {
            [only] => Some(only),
            [first, rest @ ..] => {
                // prefer the same-crate definition when names collide
                rest.iter()
                    .chain(std::iter::once(first))
                    .find(|f| f.krate == self.krate)
                    .copied()
            }
            [] => None,
        }
    }

    fn eval_suffixes(&mut self, mut v: Val, mut i: usize, end: usize) -> (Val, usize) {
        while i < end {
            if self.tokens[i].is_punct('.') {
                let Some(next) = self.tokens.get(i + 1) else {
                    return (v, i + 1);
                };
                match &next.kind {
                    TokenKind::Ident(name) if name == "await" => {
                        i += 2;
                    }
                    TokenKind::Ident(name) => {
                        if self.peek_punct(i + 2, '(') {
                            let close = matching(self.tokens, i + 2, '(', ')');
                            let line = next.line;
                            v = self.method_call(v, name.clone(), i + 2, line);
                            i = close + 1;
                        } else {
                            v = self.field_step(&v, name);
                            i += 2;
                        }
                    }
                    TokenKind::Num(n) => {
                        // tuple field: `pair.1`
                        v.const_index = n.parse().ok();
                        v.ty = String::new();
                        i += 2;
                    }
                    _ => return (v, i + 1),
                }
            } else if self.tokens[i].is_punct('[') {
                let close = matching(self.tokens, i, '[', ']');
                let mut idx = None;
                if close == i + 2 {
                    if let TokenKind::Num(n) = &self.tokens[i + 1].kind {
                        idx = n.parse().ok();
                    }
                }
                let (_, _) = self.eval_expr(i + 1, close);
                if let Some(inner) = element(peel(&v.ty)) {
                    v.ty = inner.to_string();
                }
                v.const_index = idx;
                i = close + 1;
            } else if self.tokens[i].is_punct('?') {
                if let Some(inner) = element(peel(&v.ty)) {
                    if head(&v.ty) == "Result" || head(&v.ty) == "Option" {
                        v.ty = inner.to_string();
                    }
                }
                i += 1;
            } else {
                break;
            }
        }
        (v, i)
    }

    fn field_step(&mut self, v: &Val, field: &str) -> Val {
        let core = peel(&v.ty);
        let sname = head(core);
        if let Some((def, f)) = self.sy.field_of(sname, self.krate, field) {
            let lockable = lock_ty(peel(&f.ty)).is_some()
                || atomic_ty(&f.ty).is_some()
                || element(peel(&f.ty))
                    .or_else(|| map_value(&f.ty))
                    .is_some_and(|e| lock_ty(peel(e)).is_some() || atomic_ty(e).is_some());
            let class = lockable.then(|| class_of_field(def, field));
            Val {
                ty: f.ty.clone(),
                class,
                ..Val::default()
            }
        } else {
            Val::default()
        }
    }

    fn method_call(&mut self, v: Val, name: String, open: usize, line: u32) -> Val {
        let recv_core = peel(&v.ty).to_string();
        // 1. lock acquisition
        if let Some(lt) = lock_ty(&recv_core) {
            let acq = match (name.as_str(), lt) {
                ("lock", LockTy::Mutex) => Some((AcqKind::Lock, false)),
                ("try_lock", LockTy::Mutex) => Some((AcqKind::Lock, true)),
                ("read", LockTy::RwLock) => Some((AcqKind::Read, false)),
                ("write", LockTy::RwLock) => Some((AcqKind::Write, false)),
                ("try_read", LockTy::RwLock) => Some((AcqKind::Read, true)),
                ("try_write", LockTy::RwLock) => Some((AcqKind::Write, true)),
                _ => None,
            };
            if let Some((kind, try_only)) = acq {
                let class = v
                    .class
                    .clone()
                    .or_else(|| self.sy.unique_class_of_ty(&recv_core))
                    .unwrap_or_else(|| "?".to_string());
                let iter = self.cur_iter(v.iter);
                self.emit_acquisition(class.clone(), kind, try_only, iter, v.const_index, line);
                self.eval_args(open, &Val::default(), &name);
                return Val {
                    ty: guard_inner(&recv_core),
                    class: Some(class.clone()),
                    guard: true,
                    guard_classes: vec![class],
                    iter,
                    const_index: v.const_index,
                };
            }
        }
        // 2. atomic op
        if atomic_ty(&recv_core).is_some() && ATOMIC_OPS.contains(&name.as_str()) {
            let close = matching(self.tokens, open, '(', ')');
            let orderings: Vec<String> = self.tokens[open + 1..close]
                .iter()
                .filter_map(Token::ident)
                .filter(|id| ORDERINGS.contains(id))
                .map(str::to_string)
                .collect();
            self.facts.atomics.push(AtomicOp {
                class: v.class.clone().unwrap_or_else(|| "?".to_string()),
                op: name.clone(),
                orderings,
                line,
            });
            self.eval_args(open, &Val::default(), &name);
            return Val::default();
        }
        // 3. iterator adapters
        match name.as_str() {
            "iter" | "iter_mut" | "into_iter" | "values" | "values_mut" | "keys" | "drain"
            | "chunks" | "windows" => {
                let mut iter = v.iter;
                iter.iterated = true;
                iter.unordered |= !ordered_container(&recv_core);
                self.eval_args(open, &Val::default(), &name);
                let elem = if matches!(name.as_str(), "values" | "values_mut") {
                    map_value(&recv_core).or_else(|| element(&recv_core))
                } else {
                    element(&recv_core)
                };
                return Val {
                    ty: elem.unwrap_or("").to_string(),
                    class: v.class,
                    iter,
                    ..Val::default()
                };
            }
            "rev" => {
                let mut iter = v.iter;
                iter.iterated = true;
                iter.rev = true;
                self.eval_args(open, &Val::default(), &name);
                return Val { iter, ..v };
            }
            "enumerate" | "take" | "skip" | "cloned" | "copied" | "flatten" | "by_ref"
            | "peekable" => {
                self.eval_args(open, &Val::default(), &name);
                return v;
            }
            "zip" | "chain" => {
                let close = matching(self.tokens, open, '(', ')');
                let (av, _) = self.eval_expr(open + 1, close);
                let mut out = v.clone();
                if out.class.is_none() && av.class.is_some() {
                    out.class = av.class;
                    out.ty = av.ty;
                    out.iter = out.iter.union(av.iter);
                }
                return out;
            }
            "map" | "filter" | "filter_map" | "flat_map" | "for_each" | "retain" | "find"
            | "find_map" | "any" | "all" | "position" | "fold" => {
                let before = self.facts.acquisitions.len();
                self.eval_args(open, &v, &name);
                let produced: Vec<String> = self.facts.acquisitions[before..]
                    .iter()
                    .filter(|a| !a.try_only)
                    .map(|a| a.class.clone())
                    .collect();
                if !produced.is_empty() && matches!(name.as_str(), "map" | "filter_map") {
                    return Val {
                        class: produced.last().cloned(),
                        guard: true,
                        guard_classes: produced,
                        iter: v.iter,
                        ..Val::default()
                    };
                }
                return Val {
                    iter: v.iter,
                    ..Val::default()
                };
            }
            "collect" | "min" | "max" | "sum" | "count" | "last" | "next" => {
                self.eval_args(open, &Val::default(), &name);
                if v.guard {
                    return v;
                }
                return Val {
                    iter: v.iter,
                    ..Val::default()
                };
            }
            "unwrap" | "expect" | "unwrap_or" | "unwrap_or_else" | "unwrap_or_default" | "ok"
            | "err" | "map_err" => {
                self.eval_args(open, &Val::default(), &name);
                if v.guard {
                    return v;
                }
                let mut out = v.clone();
                if matches!(head(&recv_core), "Option" | "Result") {
                    if let Some(inner) = element(&recv_core) {
                        out.ty = inner.to_string();
                    }
                }
                return out;
            }
            "clone" | "as_ref" | "as_mut" | "as_deref" | "borrow" | "borrow_mut" => {
                self.eval_args(open, &Val::default(), &name);
                return v;
            }
            _ => {}
        }
        // 4. user method on a known workspace struct
        let sname = head(&recv_core).to_string();
        if self.sy.struct_def(&sname, self.krate).is_some() {
            if let Some(fd) = self.sy.method(&sname, &name) {
                let (key, ret, self_ty) = (fd.key(), fd.ret.clone(), fd.self_ty.clone());
                // only accept unique-name fallbacks that look plausible
                if self_ty.as_deref() == Some(sname.as_str()) || self_ty.is_none() {
                    self.facts.calls.push(CallSite {
                        callee: key.clone(),
                        held: self.held_classes(),
                        line,
                    });
                    self.eval_args(open, &Val::default(), &name);
                    let recv = Val {
                        ty: recv_core,
                        ..Val::default()
                    };
                    return self.call_result(&key, &ret, &recv);
                }
            }
        }
        // unknown receiver or unknown method: evaluate args, lose track
        self.eval_args(open, &Val::default(), &name);
        Val::default()
    }

    /// Shape the value produced by a resolved call: guard-returning
    /// helpers hand their classes to the caller; lock/atomic-returning
    /// accessors resolve to the field they expose.
    fn call_result(&mut self, key: &str, ret: &str, recv: &Val) -> Val {
        if ret.contains("Guard") {
            if let Some(classes) = self.guard_table.get(key) {
                for c in classes {
                    self.held.push(Held {
                        class: c.clone(),
                        name: None,
                        depth: self.depth,
                        const_index: None,
                    });
                }
                return Val {
                    ty: ret.to_string(),
                    class: classes.first().cloned(),
                    guard: true,
                    guard_classes: classes.clone(),
                    ..Val::default()
                };
            }
            return Val {
                ty: ret.to_string(),
                ..Val::default()
            };
        }
        let ret_core = peel(ret);
        if lock_ty(ret_core).is_some() || atomic_ty(ret_core).is_some() {
            // prefer a matching field on the receiver struct
            let class = self
                .receiver_field_matching(recv, ret_core)
                .or_else(|| self.sy.unique_class_of_ty(ret_core));
            return Val {
                ty: ret.to_string(),
                class,
                ..Val::default()
            };
        }
        Val {
            ty: ret.to_string(),
            ..Val::default()
        }
    }

    fn receiver_field_matching(&self, recv: &Val, core: &str) -> Option<String> {
        let def = self.sy.struct_def(head(peel(&recv.ty)), self.krate)?;
        let mut found = None;
        for f in &def.fields {
            let fp = peel(&f.ty);
            if fp == core || element(fp).map(peel) == Some(core) {
                match found {
                    None => found = Some(class_of_field(def, &f.name)),
                    Some(_) => return None,
                }
            }
        }
        found
    }

    /// Evaluate a call's arguments. Closures bind their parameters to
    /// the receiver's element (for iterator adapters) and their bodies
    /// are walked in place; `spawn`/`scope` closures run on another
    /// thread, so the held set is emptied around them.
    fn eval_args(&mut self, open: usize, recv: &Val, callee: &str) {
        let close = matching(self.tokens, open, '(', ')');
        let detach = callee == "spawn" || callee == "scope";
        let saved = if detach {
            std::mem::take(&mut self.held)
        } else {
            Vec::new()
        };
        let mut i = open + 1;
        while i < close {
            if self.tokens[i].is_ident("move") && self.peek_punct(i + 1, '|') {
                i += 1;
                continue;
            }
            if self.tokens[i].is_punct('|') {
                // closure: params to matching '|', body to the end of
                // this argument (',' at relative depth 0) or `close`
                let mut p = i + 1;
                let mut params: Vec<String> = Vec::new();
                while p < close && !self.tokens[p].is_punct('|') {
                    if let Some(id) = self.tokens[p].ident() {
                        if id != "mut" && id != "ref" {
                            params.push(id.to_string());
                        }
                    }
                    p += 1;
                }
                let body_start = p + 1;
                let mut depth = 0i32;
                let mut body_end = body_start;
                while body_end < close {
                    match &self.tokens[body_end].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                            depth += 1
                        }
                        TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                            depth -= 1
                        }
                        TokenKind::Punct(',') if depth == 0 => break,
                        _ => {}
                    }
                    body_end += 1;
                }
                self.scopes.push(Vec::new());
                let elem_ty = if recv.iter.iterated {
                    recv.ty.clone()
                } else {
                    element(peel(&recv.ty)).unwrap_or("").to_string()
                };
                for prm in &params {
                    let b = Binding {
                        ty: elem_ty.clone(),
                        class: recv.class.clone(),
                    };
                    if let Some(scope) = self.scopes.last_mut() {
                        scope.push((prm.clone(), b));
                    }
                }
                // the closure runs once per element: its body inherits
                // the receiver's iteration context
                if recv.iter.iterated {
                    self.loops.push((self.depth, recv.iter));
                }
                if self.tokens.get(body_start).is_some_and(|t| t.is_punct('{')) {
                    self.walk(body_start, body_end);
                } else {
                    let (bv, _) = self.eval_expr(body_start, body_end);
                    let _ = bv;
                }
                if recv.iter.iterated {
                    self.loops.pop();
                }
                self.scopes.pop();
                i = body_end;
                continue;
            }
            if self.tokens[i].is_punct(',') {
                i += 1;
                continue;
            }
            let (_, ni) = self.eval_expr(i, close);
            i = ni.max(i + 1);
        }
        if detach {
            self.held = saved;
        }
    }
}

/// Payload type inside a lock type (`Mutex<GroupState>` → `GroupState`).
fn guard_inner(ty: &str) -> String {
    let t = peel(ty);
    generic_arg(t, "Mutex")
        .or_else(|| generic_arg(t, "RwLock"))
        .unwrap_or(t)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::parse_items;

    fn facts_of(src: &str, key: &str) -> FnFacts {
        let mut sy = Symbols::default();
        let lexed = lex(src);
        sy.absorb(parse_items(&lexed, "tc", "t.rs"));
        let mut map = BTreeMap::new();
        map.insert("t.rs".to_string(), lexed);
        extract_all(&sy, &map)
            .into_iter()
            .find(|f| f.key == key)
            .unwrap_or_else(|| panic!("no facts for {key}"))
    }

    const PIPELINE: &str = "
struct Core { n: u64 }
struct Pipe {
    shards: Vec<Mutex<Core>>,
    group: Mutex<u64>,
    flag: AtomicU64,
}
impl Pipe {
    fn lock_shards<'a>(&'a self, ids: &BTreeSet<usize>) -> Vec<MutexGuard<'a, Core>> {
        let mut out = Vec::new();
        for &i in ids {
            let g = match self.shards[i].try_lock() {
                Some(g) => g,
                None => self.shards[i].lock(),
            };
            out.push(g);
        }
        out
    }
    fn commit(&self, ids: &BTreeSet<usize>) {
        let guards = self.lock_shards(ids);
        let mut g = self.group.lock();
        self.flag.store(1, Ordering::Release);
        drop(g);
        drop(guards);
    }
    fn snap(&self) -> Vec<MutexGuard<'_, Core>> {
        self.shards.iter().map(|s| s.lock()).collect()
    }
}
";

    #[test]
    fn acquisitions_resolve_through_index_match_and_loops() {
        let f = facts_of(PIPELINE, "Pipe::lock_shards");
        let classes: Vec<&str> = f.acquisitions.iter().map(|a| a.class.as_str()).collect();
        assert_eq!(classes, ["tc::Pipe::shards", "tc::Pipe::shards"]);
        assert!(f.acquisitions[0].try_only);
        assert!(!f.acquisitions[1].try_only);
        assert!(f.acquisitions[1].iter.iterated, "inside the ids loop");
        assert!(!f.acquisitions[1].iter.unordered, "BTreeSet is ordered");
    }

    #[test]
    fn guard_returning_helper_extends_caller_held_set() {
        let f = facts_of(PIPELINE, "Pipe::commit");
        let edge = f
            .edges
            .iter()
            .find(|e| e.to == "tc::Pipe::group")
            .expect("shards->group edge");
        assert_eq!(edge.from, "tc::Pipe::shards");
        assert!(f
            .calls
            .iter()
            .any(|c| c.callee == "Pipe::lock_shards" && c.held.is_empty()));
        let st = f.atomics.iter().find(|a| a.op == "store").unwrap();
        assert_eq!(st.class, "tc::Pipe::flag");
        assert_eq!(st.orderings, ["Release"]);
    }

    #[test]
    fn closure_iteration_locks_resolve_to_the_container_class() {
        let f = facts_of(PIPELINE, "Pipe::snap");
        assert_eq!(f.acquisitions.len(), 1);
        assert_eq!(f.acquisitions[0].class, "tc::Pipe::shards");
        assert!(f.acquisitions[0].iter.iterated);
        assert!(!f.acquisitions[0].iter.unordered);
    }

    #[test]
    fn drop_releases_and_rev_is_flagged() {
        let src = "
struct P { shards: Vec<Mutex<u64>>, aux: Mutex<u64> }
impl P {
    fn bad(&self) {
        for s in self.shards.iter().rev() {
            let g = s.lock();
            drop(g);
        }
        let a = self.aux.lock();
        drop(a);
        let b = self.shards[0].lock();
        let _ = b;
    }
}
";
        let f = facts_of(src, "P::bad");
        assert!(f.acquisitions[0].iter.rev);
        // aux dropped before shards[0]: no aux->shards edge
        assert!(f.edges.is_empty(), "edges: {:?}", f.edges);
        assert_eq!(f.acquisitions[2].const_index, Some(0));
    }

    #[test]
    fn unsafe_sites_and_statics_are_recorded() {
        let src = "
static REG: Mutex<u64> = Mutex::new(0);
fn touch() {
    let g = REG.lock();
    let _ = g;
    let p = unsafe { danger() };
    let _ = p;
}
";
        let f = facts_of(src, "touch");
        assert_eq!(f.acquisitions[0].class, "tc::REG");
        assert_eq!(f.unsafes.len(), 1);
    }
}
