//! Item-level parsing over the token stream: struct fields (with
//! normalized type strings), functions (with receiver type, params,
//! return type, and body token range), statics, and module structure.
//!
//! `#[cfg(test)]` items are skipped — the analyzer certifies the
//! production tree, and test bodies deliberately contend locks in ways
//! the discipline rules would (rightly) reject in shipped code.

use crate::lexer::{Lexed, Token, TokenKind};

/// One struct field with a normalized type string.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Normalized type text (`Vec<Mutex<ShardCore>>`).
    pub ty: String,
}

/// A parsed struct definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Crate (directory name under `crates/`).
    pub krate: String,
    /// Named fields (tuple structs contribute none).
    pub fields: Vec<Field>,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`_` for destructuring patterns).
    pub name: String,
    /// Normalized type text.
    pub ty: String,
}

/// A parsed function: enough signature to resolve receivers, plus the
/// body as a token range into the owning file's stream.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Unqualified name.
    pub name: String,
    /// Receiver type for methods (`CommitPipeline`), `None` for free
    /// functions.
    pub self_ty: Option<String>,
    /// Crate (directory name under `crates/`).
    pub krate: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters in order (excluding `self`).
    pub params: Vec<Param>,
    /// Whether the function takes `self`/`&self`/`&mut self`.
    pub has_self: bool,
    /// Normalized return type (empty for `()`).
    pub ret: String,
    /// Token index range of the body, `start..end` covering the tokens
    /// strictly inside the outer braces. Empty for bodyless items.
    pub body: (usize, usize),
}

impl FnDef {
    /// Qualified key: `Struct::name` for methods, `name` for free fns.
    pub fn key(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `static`/`const` item with a normalized type.
#[derive(Debug, Clone)]
pub struct StaticDef {
    /// Item name (conventionally SCREAMING_CASE).
    pub name: String,
    /// Crate (directory name under `crates/`).
    pub krate: String,
    /// Normalized type text.
    pub ty: String,
}

/// Everything item-parsing recovers from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Function definitions.
    pub fns: Vec<FnDef>,
    /// Static/const items (including ones inside `thread_local!`).
    pub statics: Vec<StaticDef>,
}

/// Join tokens into a normalized type string: no whitespace except a
/// single space between adjacent identifiers (`dyn Fn`, `impl Trait`).
pub fn normalize_ty(tokens: &[Token]) -> String {
    let mut out = String::new();
    let mut prev_word = false;
    for t in tokens {
        match &t.kind {
            TokenKind::Ident(s) => {
                if prev_word {
                    out.push(' ');
                }
                out.push_str(s);
                prev_word = true;
            }
            TokenKind::Num(s) => {
                if prev_word {
                    out.push(' ');
                }
                out.push_str(s);
                prev_word = true;
            }
            TokenKind::Punct(c) => {
                out.push(*c);
                prev_word = false;
            }
            TokenKind::Lifetime => {
                // lifetimes never affect resolution; drop them
                prev_word = false;
            }
            TokenKind::Str | TokenKind::Char => prev_word = false,
        }
    }
    out
}

/// Find the matching close for the opener at `open` (which must be an
/// opening punct), returning the index of the closer.
pub fn matching(tokens: &[Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct(open_c) {
            depth += 1;
        } else if tokens[i].is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Skip a balanced `<...>` generics group starting at `i` (pointing at
/// `<`). Returns the index just past the closing `>`. Tolerates `>>`.
fn skip_generics(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Parse one file's items. `krate` is the crate directory name, `file`
/// the repo-relative path.
pub fn parse_items(lexed: &Lexed, krate: &str, file: &str) -> FileItems {
    let mut out = FileItems::default();
    let tokens = &lexed.tokens;
    parse_scope(tokens, 0, tokens.len(), None, krate, file, &mut out);
    out
}

/// Parse items in `tokens[start..end]` with the given impl receiver.
fn parse_scope(
    tokens: &[Token],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
    krate: &str,
    file: &str,
    out: &mut FileItems,
) {
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        match &t.kind {
            // Attribute: detect #[cfg(test)] and skip the next item.
            TokenKind::Punct('#') if i + 1 < end && tokens[i + 1].is_punct('[') => {
                let close = matching(tokens, i + 1, '[', ']');
                let attr: Vec<&str> = tokens[i + 1..close]
                    .iter()
                    .filter_map(Token::ident)
                    .collect();
                i = close + 1;
                if attr.first() == Some(&"cfg") && attr.contains(&"test") {
                    i = skip_item(tokens, i, end);
                }
            }
            TokenKind::Ident(word) => match word.as_str() {
                "struct" => i = parse_struct(tokens, i, end, krate, out),
                "enum" | "union" => i = skip_item(tokens, i, end),
                "impl" => i = parse_impl(tokens, i, end, krate, file, out),
                "trait" => i = parse_trait(tokens, i, end, krate, file, out),
                "mod" => {
                    // `mod name { ... }` — descend; `mod name;` — skip
                    let mut j = i + 1;
                    while j < end && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                        j += 1;
                    }
                    if j < end && tokens[j].is_punct('{') {
                        let close = matching(tokens, j, '{', '}');
                        parse_scope(tokens, j + 1, close, None, krate, file, out);
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "fn" => i = parse_fn(tokens, i, end, self_ty, krate, file, out),
                "static" | "const" => i = parse_static(tokens, i, end, krate, out),
                "macro_rules" => i = skip_item(tokens, i, end),
                _ => {
                    // `thread_local! { ... }` and friends: descend into
                    // item-level macro braces so inner statics surface.
                    if i + 2 < end && tokens[i + 1].is_punct('!') && tokens[i + 2].is_punct('{') {
                        let close = matching(tokens, i + 2, '{', '}');
                        parse_scope(tokens, i + 3, close, self_ty, krate, file, out);
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
            },
            _ => i += 1,
        }
    }
}

/// Skip one item (to its closing `}` or `;`).
fn skip_item(tokens: &[Token], mut i: usize, end: usize) -> usize {
    while i < end {
        if tokens[i].is_punct('{') {
            return matching(tokens, i, '{', '}') + 1;
        }
        if tokens[i].is_punct(';') {
            return i + 1;
        }
        // nested attribute on the item being skipped
        if tokens[i].is_punct('[') {
            i = matching(tokens, i, '[', ']');
        }
        i += 1;
    }
    end
}

/// `static NAME: Ty = ...;` / `const NAME: Ty = ...;` — record name and
/// type, skip the initializer. `const fn` is delegated to fn parsing.
fn parse_static(tokens: &[Token], i: usize, end: usize, krate: &str, out: &mut FileItems) -> usize {
    if tokens.get(i + 1).is_some_and(|t| t.is_ident("fn")) {
        return i + 1;
    }
    let mut j = i + 1;
    if j < end && tokens[j].is_ident("mut") {
        j += 1;
    }
    let Some(name) = tokens.get(j).and_then(Token::ident) else {
        return i + 1;
    };
    if j + 1 >= end || !tokens[j + 1].is_punct(':') {
        return j + 1;
    }
    let ty_start = j + 2;
    let mut depth = 0i32;
    let mut t = ty_start;
    while t < end {
        match &tokens[t].kind {
            TokenKind::Punct('<') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('>') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('=') | TokenKind::Punct(';') if depth <= 0 => break,
            _ => {}
        }
        t += 1;
    }
    out.statics.push(StaticDef {
        name: name.into(),
        krate: krate.into(),
        ty: normalize_ty(&tokens[ty_start..t]),
    });
    skip_item(tokens, t, end)
}

fn parse_struct(tokens: &[Token], i: usize, end: usize, krate: &str, out: &mut FileItems) -> usize {
    let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
        return i + 1;
    };
    let mut j = i + 2;
    if j < end && tokens[j].is_punct('<') {
        j = skip_generics(tokens, j);
    }
    // unit/tuple struct or where-clause noise: find `{` or `;`
    while j < end
        && !tokens[j].is_punct('{')
        && !tokens[j].is_punct(';')
        && !tokens[j].is_punct('(')
    {
        j += 1;
    }
    if j >= end || !tokens[j].is_punct('{') {
        out.structs.push(StructDef {
            name: name.into(),
            krate: krate.into(),
            fields: Vec::new(),
        });
        return skip_item(tokens, j, end);
    }
    let close = matching(tokens, j, '{', '}');
    let mut fields = Vec::new();
    let mut k = j + 1;
    while k < close {
        // skip field attributes and visibility
        if tokens[k].is_punct('#') && k + 1 < close && tokens[k + 1].is_punct('[') {
            k = matching(tokens, k + 1, '[', ']') + 1;
            continue;
        }
        if tokens[k].is_ident("pub") {
            k += 1;
            if k < close && tokens[k].is_punct('(') {
                k = matching(tokens, k, '(', ')') + 1;
            }
            continue;
        }
        let Some(fname) = tokens[k].ident() else {
            k += 1;
            continue;
        };
        if k + 1 >= close || !tokens[k + 1].is_punct(':') {
            k += 1;
            continue;
        }
        // type runs to the next comma at bracket depth 0
        let ty_start = k + 2;
        let mut depth = 0i32;
        let mut t = ty_start;
        while t < close {
            match &tokens[t].kind {
                TokenKind::Punct('<') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct('>') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct(',') if depth <= 0 => break,
                _ => {}
            }
            t += 1;
        }
        fields.push(Field {
            name: fname.into(),
            ty: normalize_ty(&tokens[ty_start..t]),
        });
        k = t + 1;
    }
    out.structs.push(StructDef {
        name: name.into(),
        krate: krate.into(),
        fields,
    });
    close + 1
}

fn parse_impl(
    tokens: &[Token],
    i: usize,
    end: usize,
    krate: &str,
    file: &str,
    out: &mut FileItems,
) -> usize {
    let mut j = i + 1;
    if j < end && tokens[j].is_punct('<') {
        j = skip_generics(tokens, j);
    }
    // the receiver is the type after `for` if present, else the type
    // right here; scan to the opening brace remembering segments
    let mut ty_start = j;
    while j < end && !tokens[j].is_punct('{') {
        if tokens[j].is_ident("for") {
            ty_start = j + 1;
        }
        if tokens[j].is_ident("where") {
            break;
        }
        j += 1;
    }
    while j < end && !tokens[j].is_punct('{') {
        j += 1;
    }
    if j >= end {
        return end;
    }
    // receiver name: the last path-segment identifier before generics
    let mut name = None;
    for t in &tokens[ty_start..j] {
        if let Some(id) = t.ident() {
            if id != "where" && id != "dyn" {
                name = Some(id.to_string());
            }
        }
        if t.is_punct('<') {
            break;
        }
    }
    let close = matching(tokens, j, '{', '}');
    parse_scope(tokens, j + 1, close, name.as_deref(), krate, file, out);
    close + 1
}

fn parse_trait(
    tokens: &[Token],
    i: usize,
    end: usize,
    krate: &str,
    file: &str,
    out: &mut FileItems,
) -> usize {
    let name = tokens.get(i + 1).and_then(Token::ident).map(str::to_string);
    let mut j = i + 1;
    while j < end && !tokens[j].is_punct('{') {
        if tokens[j].is_punct(';') {
            return j + 1;
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let close = matching(tokens, j, '{', '}');
    parse_scope(tokens, j + 1, close, name.as_deref(), krate, file, out);
    close + 1
}

fn parse_fn(
    tokens: &[Token],
    i: usize,
    end: usize,
    self_ty: Option<&str>,
    krate: &str,
    file: &str,
    out: &mut FileItems,
) -> usize {
    let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
        return i + 1;
    };
    let line = tokens[i].line;
    let mut j = i + 2;
    if j < end && tokens[j].is_punct('<') {
        j = skip_generics(tokens, j);
    }
    if j >= end || !tokens[j].is_punct('(') {
        return j;
    }
    let params_close = matching(tokens, j, '(', ')');
    let (params, has_self) = parse_params(&tokens[j + 1..params_close]);
    // return type: after `->` up to `{`, `;`, or `where`
    let mut k = params_close + 1;
    let mut ret_start = None;
    while k < end && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
        if tokens[k].is_punct('-') && k + 1 < end && tokens[k + 1].is_punct('>') {
            ret_start = Some(k + 2);
            k += 2;
            continue;
        }
        if tokens[k].is_ident("where") {
            break;
        }
        k += 1;
    }
    let mut ret_end = k;
    while k < end && !tokens[k].is_punct('{') && !tokens[k].is_punct(';') {
        k += 1;
    }
    if ret_start.is_none() {
        ret_end = k;
    }
    let ret = ret_start
        .map(|s| normalize_ty(&tokens[s..ret_end]))
        .unwrap_or_default();
    let body = if k < end && tokens[k].is_punct('{') {
        let close = matching(tokens, k, '{', '}');
        (k + 1, close)
    } else {
        (k, k)
    };
    out.fns.push(FnDef {
        name: name.into(),
        self_ty: self_ty.map(str::to_string),
        krate: krate.into(),
        file: file.into(),
        line,
        params,
        has_self,
        ret,
        body,
    });
    // bodyless fn: body = (k, k) with `;` at k; braced fn: body.1 is the
    // closing brace — either way the item ends at body.1.
    body.1 + 1
}

fn parse_params(tokens: &[Token]) -> (Vec<Param>, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut i = 0usize;
    loop {
        let at_end = i >= tokens.len();
        let split = at_end || (depth == 0 && tokens[i].is_punct(','));
        if split {
            let part = &tokens[start..i];
            if part.iter().any(|t| t.is_ident("self")) && !part.iter().any(|t| t.is_punct(':')) {
                has_self = true;
            } else if let Some(colon) = part.iter().position(|t| t.is_punct(':')) {
                let name = part[..colon]
                    .iter()
                    .rev()
                    .find_map(Token::ident)
                    .filter(|n| *n != "mut")
                    .unwrap_or("_");
                params.push(Param {
                    name: name.into(),
                    ty: normalize_ty(&part[colon + 1..]),
                });
            }
            start = i + 1;
        }
        if at_end {
            break;
        }
        match &tokens[i].kind {
            TokenKind::Punct('<') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('>') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    (params, has_self)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        parse_items(&lex(src), "testcrate", "test.rs")
    }

    #[test]
    fn parses_struct_fields_with_normalized_types() {
        let it = items(
            "pub(crate) struct CommitPipeline {\n\
             shards: Vec<Mutex<ShardCore>>,\n\
             /// doc\n\
             active: Vec<Mutex<HashMap<TxnId, u64>>>,\n\
             ts_alloc: AtomicU64,\n\
             }\n",
        );
        let s = &it.structs[0];
        assert_eq!(s.name, "CommitPipeline");
        assert_eq!(s.fields[0].name, "shards");
        assert_eq!(s.fields[0].ty, "Vec<Mutex<ShardCore>>");
        assert_eq!(s.fields[1].ty, "Vec<Mutex<HashMap<TxnId,u64>>>");
        assert_eq!(s.fields[2].ty, "AtomicU64");
    }

    #[test]
    fn parses_methods_with_receiver_params_and_ret() {
        let it = items(
            "impl CommitPipeline {\n\
             pub(crate) fn lock_shards<'a>(&'a self, ids: &BTreeSet<usize>, stats: &Stats)\n\
             -> Vec<(usize, MutexGuard<'a, ShardCore>)> {\n\
             let x = 1; { nested(); } x\n\
             }\n\
             }\n\
             fn free(a: u64) {}\n",
        );
        let m = &it.fns[0];
        assert_eq!(m.key(), "CommitPipeline::lock_shards");
        assert!(m.has_self);
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.params[0].name, "ids");
        assert_eq!(m.params[0].ty, "&BTreeSet<usize>");
        assert!(m.ret.contains("MutexGuard"));
        assert!(m.body.1 > m.body.0);
        assert_eq!(it.fns[1].key(), "free");
    }

    #[test]
    fn impl_trait_for_type_attributes_to_the_type() {
        let it = items("impl fmt::Display for IsolationLevel { fn fmt(&self) {} }");
        assert_eq!(it.fns[0].key(), "IsolationLevel::fmt");
    }

    #[test]
    fn cfg_test_modules_and_fns_are_skipped() {
        let it = items(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests { fn ghost() { a.lock(); } }\n\
             #[cfg(test)]\nfn also_ghost() {}\n\
             fn live2() {}\n",
        );
        let keys: Vec<String> = it.fns.iter().map(FnDef::key).collect();
        assert_eq!(keys, ["live", "live2"]);
    }

    #[test]
    fn statics_inside_thread_local_are_found() {
        let it = items(
            "static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());\n\
             thread_local! { static MY_RING: Arc<Ring> = x(); }\n",
        );
        assert_eq!(it.statics.len(), 2);
        assert_eq!(it.statics[0].name, "REGISTRY");
        assert!(it.statics[0].ty.starts_with("Mutex<"));
        assert_eq!(it.statics[1].name, "MY_RING");
    }
}
