//! Workspace symbol table and the type-string algebra the extractor
//! leans on: peeling smart-pointer wrappers, classifying lock and
//! atomic types, stepping through fields, and naming lock classes.
//!
//! A *lock class* is the identity the whole analysis runs on:
//! `<crate>::<Struct>::<field>` for a lock/atomic stored in a struct
//! field, `<crate>::<NAME>` for one in a static. Two acquisitions of
//! the same class are the same lock for ordering purposes — exactly the
//! granularity the commit pipeline's discipline is written at (all
//! shard latches are one class, ordered internally by index).

use crate::syntax::{Field, FileItems, FnDef, StaticDef, StructDef};
use std::collections::BTreeMap;

/// Workspace-wide symbol table built from every parsed file.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Struct name → definitions (same name may appear in two crates).
    pub structs: BTreeMap<String, Vec<StructDef>>,
    /// Static/const name → definition.
    pub statics: BTreeMap<String, StaticDef>,
    /// Every function, in scan order.
    pub fns: Vec<FnDef>,
    /// Qualified key (`Struct::method` / `free_fn`) → indices in `fns`.
    pub by_key: BTreeMap<String, Vec<usize>>,
    /// Unqualified name → indices in `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl Symbols {
    /// Fold one file's items in.
    pub fn absorb(&mut self, items: FileItems) {
        for s in items.structs {
            self.structs.entry(s.name.clone()).or_default().push(s);
        }
        for st in items.statics {
            self.statics.entry(st.name.clone()).or_insert(st);
        }
        for f in items.fns {
            let idx = self.fns.len();
            self.by_key.entry(f.key()).or_default().push(idx);
            self.by_name.entry(f.name.clone()).or_default().push(idx);
            self.fns.push(f);
        }
    }

    /// Find a struct by name, preferring the given crate when the name
    /// is ambiguous across crates.
    pub fn struct_def(&self, name: &str, krate_hint: &str) -> Option<&StructDef> {
        let defs = self.structs.get(name)?;
        defs.iter()
            .find(|d| d.krate == krate_hint)
            .or_else(|| defs.first())
    }

    /// Look up `struct.field`, preferring the hinted crate.
    pub fn field_of(
        &self,
        name: &str,
        krate_hint: &str,
        field: &str,
    ) -> Option<(&StructDef, &Field)> {
        let def = self.struct_def(name, krate_hint)?;
        let f = def.fields.iter().find(|f| f.name == field)?;
        Some((def, f))
    }

    /// Resolve a method on a receiver struct: `Struct::name`, falling
    /// back to a unique free/other definition of `name` when the
    /// qualified key is unknown (trait impls on type aliases, etc).
    pub fn method(&self, recv: &str, name: &str) -> Option<&FnDef> {
        if let Some(idxs) = self.by_key.get(&format!("{recv}::{name}")) {
            return idxs.first().map(|&i| &self.fns[i]);
        }
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([only]) => Some(&self.fns[*only]),
            _ => None,
        }
    }

    /// The class of the unique struct field (or static) whose type
    /// matches the given lockable core type (`Mutex<WalWriter>`). Used
    /// to resolve `&Mutex<T>` parameters back to the field they alias.
    pub fn unique_class_of_ty(&self, core: &str) -> Option<String> {
        let matches = |ty: &str| {
            let p = peel(ty);
            p == core || element(p).map(peel) == Some(core)
        };
        let mut found: Option<String> = None;
        for defs in self.structs.values() {
            for d in defs {
                for f in &d.fields {
                    if matches(&f.ty) {
                        let class = class_of_field(d, &f.name);
                        match &found {
                            None => found = Some(class),
                            Some(prev) if *prev != class => return None,
                            _ => {}
                        }
                    }
                }
            }
        }
        if found.is_none() {
            for st in self.statics.values() {
                if matches(&st.ty) {
                    let class = format!("{}::{}", st.krate, st.name);
                    match &found {
                        None => found = Some(class),
                        Some(prev) if *prev != class => return None,
                        _ => {}
                    }
                }
            }
        }
        found
    }
}

/// Class name for a struct field.
pub fn class_of_field(def: &StructDef, field: &str) -> String {
    format!("{}::{}::{}", def.krate, def.name, field)
}

/// Strip leading `&`/`&mut`/`mut` and lifetimes from a normalized type.
pub fn strip_refs(ty: &str) -> &str {
    let mut t = ty.trim();
    loop {
        if let Some(rest) = t.strip_prefix('&') {
            t = rest.trim_start();
        } else if let Some(rest) = t.strip_prefix("mut ") {
            t = rest.trim_start();
        } else if let Some(rest) = t.strip_prefix("mut&") {
            t = rest.trim_start();
        } else {
            return t;
        }
    }
}

/// The head identifier of a type: last path segment before generics
/// (`std::sync::Mutex<T>` → `Mutex`; `[AtomicU64;7]` → ``).
pub fn head(ty: &str) -> &str {
    let t = strip_refs(ty);
    let end = t.find('<').unwrap_or(t.len());
    let path = &t[..end];
    path.rsplit("::").next().unwrap_or(path)
}

/// Generic payload of `Head<...>`, if the type has that exact head.
pub fn generic_arg<'a>(ty: &'a str, want_head: &str) -> Option<&'a str> {
    let t = strip_refs(ty);
    if head(t) != want_head {
        return None;
    }
    let open = t.find('<')?;
    let close = t.rfind('>')?;
    Some(&t[open + 1..close])
}

/// Peel transparent wrappers (`&`, `Arc`, `Rc`, `Box`) until a
/// load-bearing type is exposed.
pub fn peel(ty: &str) -> &str {
    let mut t = strip_refs(ty);
    loop {
        let mut next = None;
        for w in ["Arc", "Rc", "Box"] {
            if let Some(inner) = generic_arg(t, w) {
                next = Some(inner);
                break;
            }
        }
        match next {
            Some(inner) => t = strip_refs(inner),
            None => return t,
        }
    }
}

/// Element type of a container: `Vec<X>`/`VecDeque<X>` → `X`,
/// `[X;N]`/`[X]` → `X`, `Option<X>`/`Result<X,_>` → `X` (for `if let`
/// unwrapping), plus `Mutex<X>` per-element access never goes through
/// here — that's an acquisition.
pub fn element(ty: &str) -> Option<&str> {
    let t = peel(ty);
    for w in ["Vec", "VecDeque", "Option", "Box"] {
        if let Some(inner) = generic_arg(t, w) {
            return Some(inner.trim());
        }
    }
    if let Some(inner) = generic_arg(t, "Result") {
        // first comma at depth 0
        let mut depth = 0i32;
        for (i, c) in inner.char_indices() {
            match c {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth -= 1,
                ',' if depth == 0 => return Some(inner[..i].trim()),
                _ => {}
            }
        }
        return Some(inner.trim());
    }
    if let Some(rest) = t.strip_prefix('[') {
        let end = rest.find([';', ']'])?;
        return Some(rest[..end].trim());
    }
    None
}

/// Value type of a map: `HashMap<K, V>`/`BTreeMap<K, V>` → `V`.
/// `.values()` iteration over a map of locks is an acquisition source.
pub fn map_value(ty: &str) -> Option<&str> {
    let t = peel(ty);
    let inner = generic_arg(t, "HashMap").or_else(|| generic_arg(t, "BTreeMap"))?;
    let mut depth = 0i32;
    for (i, c) in inner.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => return Some(inner[i + 1..].trim()),
            _ => {}
        }
    }
    None
}

/// Lock classification of a peeled type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockTy {
    /// `Mutex<_>` (std or parking_lot — same surface).
    Mutex,
    /// `RwLock<_>`.
    RwLock,
}

/// Whether the peeled type is a lock, and which kind.
pub fn lock_ty(ty: &str) -> Option<LockTy> {
    match head(peel(ty)) {
        "Mutex" | "ReentrantMutex" | "FairMutex" => Some(LockTy::Mutex),
        "RwLock" => Some(LockTy::RwLock),
        _ => None,
    }
}

/// Whether the peeled type is (or is a container of) an atomic cell.
/// Returns the atomic head name (`AtomicU64`).
pub fn atomic_ty(ty: &str) -> Option<&str> {
    let mut t = peel(ty);
    // arrays/vecs of atomics count: `[AtomicU64;7]`
    while let Some(inner) = element(t) {
        t = inner;
    }
    let h = head(t);
    (h.starts_with("Atomic") && h.len() > "Atomic".len()).then_some(h)
}

/// Whether iterating this (peeled) container type yields elements in a
/// deterministic, sorted order. `Hash*` containers are the unordered
/// offenders; everything index- or tree-backed is fine.
pub fn ordered_container(ty: &str) -> bool {
    !matches!(head(peel(ty)), "HashMap" | "HashSet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::parse_items;

    #[test]
    fn type_algebra_peels_and_classifies() {
        assert_eq!(peel("&Arc<Mutex<WalWriter>>"), "Mutex<WalWriter>");
        assert_eq!(lock_ty("Vec<Mutex<ShardCore>>"), None, "vec is not a lock");
        assert_eq!(lock_ty("Mutex<ShardCore>"), Some(LockTy::Mutex));
        assert_eq!(lock_ty("&RwLock<Catalog>"), Some(LockTy::RwLock));
        assert_eq!(element("Vec<Mutex<ShardCore>>"), Some("Mutex<ShardCore>"));
        assert_eq!(element("[AtomicU64;7]"), Some("AtomicU64"));
        assert_eq!(atomic_ty("AtomicU64"), Some("AtomicU64"));
        assert_eq!(atomic_ty("[AtomicU64;7]"), Some("AtomicU64"));
        assert_eq!(atomic_ty("Mutex<u64>"), None);
        assert_eq!(head("std::sync::Mutex<T>"), "Mutex");
        assert!(ordered_container("BTreeSet<usize>"));
        assert!(!ordered_container("HashMap<TxnId,u64>"));
    }

    #[test]
    fn unique_field_lookup_resolves_param_aliases() {
        let src = "\
struct DbInner { wal: Option<Mutex<WalWriter>>, catalog: RwLock<Catalog> }
struct Other { also: RwLock<Catalog> }
";
        let mut sy = Symbols::default();
        sy.absorb(parse_items(&lex(src), "feraldb", "x.rs"));
        // `&Mutex<WalWriter>` params alias the unique matching field,
        // seen through the Option wrapper.
        assert_eq!(
            sy.unique_class_of_ty("Mutex<WalWriter>").as_deref(),
            Some("feraldb::DbInner::wal")
        );
        // ambiguous across two structs
        assert_eq!(sy.unique_class_of_ty("RwLock<Catalog>"), None);
    }
}
