//! Rendering for `feral-racer check`: human text, the JSON acquisition
//! inventory (the golden-diffed artifact), and SARIF 2.1.0 through the
//! shared emitter in `feral_cli::report`.

use crate::rules::{Finding, RULES};
use crate::Analysis;
use feral_cli::report::{json_escape, render_sarif, SarifResult, SarifRule};

/// Human-readable summary.
pub fn render_text(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "feral-racer: {} files, {} functions, {} lock classes, {} edges\n",
        a.files,
        a.facts.len(),
        a.class_count(),
        a.graph.edges.len(),
    ));
    out.push_str(&format!(
        "declarations: {} order, {} terminal, {} publication, {} seqlock\n",
        a.decls.orders.len(),
        a.decls.terminals.len(),
        a.decls.publications.len(),
        a.decls.seqlocks.len(),
    ));
    if a.findings.is_empty() {
        out.push_str("no findings\n");
    } else {
        for f in &a.findings {
            out.push_str(&format!(
                "{}: {}:{}: {}\n",
                f.rule, f.file, f.line, f.message
            ));
        }
    }
    out
}

/// The JSON acquisition-graph inventory: every class with its
/// acquisition count, every edge with its witnesses, every finding.
/// Deterministic field and element order — this is the golden artifact.
pub fn render_inventory(a: &Analysis) -> String {
    let mut classes: Vec<String> = Vec::new();
    for (class, count) in a.class_counts() {
        classes.push(format!(
            "{{\"class\":\"{}\",\"acquisitions\":{}}}",
            json_escape(&class),
            count
        ));
    }
    let mut edges: Vec<String> = Vec::new();
    for ((from, to), meta) in &a.graph.edges {
        let sites: Vec<String> = meta
            .sites
            .iter()
            .map(|(f, l)| format!("\"{}:{}\"", json_escape(f), l))
            .collect();
        edges.push(format!(
            "{{\"from\":\"{}\",\"to\":\"{}\",\"blocking\":{},\"sites\":[{}]}}",
            json_escape(from),
            json_escape(to),
            meta.blocking,
            sites.join(",")
        ));
    }
    let findings: Vec<String> = a.findings.iter().map(finding_json).collect();
    format!(
        "{{\"tool\":\"feral-racer\",\"files\":{},\"functions\":{},\"classes\":[{}],\"edges\":[{}],\"findings\":[{}]}}\n",
        a.files,
        a.facts.len(),
        classes.join(","),
        edges.join(","),
        findings.join(",")
    )
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
        json_escape(f.rule),
        json_escape(&f.file),
        f.line,
        json_escape(&f.message)
    )
}

/// SARIF 2.1.0 through the shared emitter.
pub fn render_sarif_report(a: &Analysis) -> String {
    let rules: Vec<SarifRule<'_>> = RULES
        .iter()
        .map(|r| SarifRule {
            id: r.id,
            name: r.name,
            summary: r.summary,
            help_uri: r.anchor,
            citation: r.citation,
        })
        .collect();
    let results: Vec<SarifResult<'_>> = a
        .findings
        .iter()
        .map(|f| SarifResult {
            rule_id: f.rule,
            level: "error",
            message: f.message.clone(),
            uri: f.file.clone(),
            line: u64::from(f.line),
        })
        .collect();
    render_sarif(
        "feral-racer",
        "DESIGN.md#14-self-hosting-concurrency-analysis-feral-racer",
        &rules,
        &results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use feral_trace::json::parse;

    #[test]
    fn inventory_and_sarif_parse_for_an_empty_analysis() {
        let a = Analysis::default();
        let inv = parse(render_inventory(&a).trim()).expect("inventory parses");
        assert_eq!(
            inv.get("tool").and_then(|t| t.as_str()),
            Some("feral-racer")
        );
        assert_eq!(inv.get("files").and_then(|v| v.as_u64()), Some(0));
        let sarif = parse(render_sarif_report(&a).trim()).expect("sarif parses");
        let run = &sarif.get("runs").and_then(|r| r.as_arr()).unwrap()[0];
        let rules = run
            .get("tool")
            .unwrap()
            .get("driver")
            .unwrap()
            .get("rules")
            .and_then(|r| r.as_arr())
            .unwrap();
        assert_eq!(rules.len(), RULES.len());
    }
}
