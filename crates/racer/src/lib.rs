//! # feral-racer
//!
//! A self-hosting lock-order and atomics-discipline analyzer for the
//! workspace's own concurrency core. The commit pipeline's correctness
//! rests on invariants the type system cannot see — shard latches in
//! ascending order, timestamps allocated inside the group mutex, the
//! trace ring's seqlock bracketing — the same "feral" position the
//! paper finds application invariants in: maintained by convention, in
//! application code, invisible to the infrastructure underneath
//! (Bailis et al., SIGMOD 2015). This crate turns those conventions
//! into checked declarations.
//!
//! Pipeline: a hand-rolled Rust lexer ([`lexer`], in the house style of
//! `corpus::ruby`) → item/structure parsing ([`syntax`]) → per-function
//! fact extraction with lock-class resolution ([`extract`], [`resolve`])
//! → interprocedural acquisition graph ([`graph`]) → the FERALRS rule
//! catalog ([`rules`]) checked against `racer:` declarations ([`decl`])
//! → reports ([`report`]).
//!
//! Every rule is self-validated mutation-style: a seeded-fault fixture
//! under `fixtures/` must trip it, and the live tree must stay silent.

#![warn(missing_docs)]

pub mod decl;
pub mod extract;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod syntax;

use decl::Declarations;
use extract::FnFacts;
use graph::AcqGraph;
use lexer::Comment;
use resolve::Symbols;
use rules::Finding;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One source file handed to the analyzer.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path (used in reports and goldens).
    pub path: String,
    /// Crate directory name (`feraldb`).
    pub krate: String,
    /// File contents.
    pub text: String,
}

/// A complete analysis of one source set.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Files scanned.
    pub files: usize,
    /// Per-function facts.
    pub facts: Vec<FnFacts>,
    /// The interprocedural acquisition graph.
    pub graph: AcqGraph,
    /// Parsed `racer:` declarations.
    pub decls: Declarations,
    /// Rule findings, sorted.
    pub findings: Vec<Finding>,
}

impl Analysis {
    /// Number of distinct resolved lock classes acquired anywhere.
    pub fn class_count(&self) -> usize {
        self.class_counts().len()
    }

    /// Acquisition counts per resolved class, sorted by class.
    pub fn class_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for f in &self.facts {
            for a in &f.acquisitions {
                if a.class != "?" {
                    *out.entry(a.class.clone()).or_insert(0) += 1;
                }
            }
        }
        out
    }
}

/// Analyze a set of in-memory sources.
pub fn analyze(sources: &[SourceFile]) -> Analysis {
    let mut sy = Symbols::default();
    let mut lexed = BTreeMap::new();
    let mut decls = Declarations::default();
    let mut comments: BTreeMap<String, Vec<Comment>> = BTreeMap::new();
    for s in sources {
        let lx = lexer::lex(&s.text);
        decls.absorb(&s.path, &lx.comments);
        comments.insert(s.path.clone(), lx.comments.clone());
        sy.absorb(syntax::parse_items(&lx, &s.krate, &s.path));
        lexed.insert(s.path.clone(), lx);
    }
    let facts = extract::extract_all(&sy, &lexed);
    let graph = graph::build(&facts);
    let findings = rules::check(&facts, &graph, &decls, &comments);
    Analysis {
        files: sources.len(),
        facts,
        graph,
        decls,
        findings,
    }
}

/// Collect the production sources under `<root>/crates/*/src`,
/// skipping `#[cfg(test)]` at parse time and fixture/test trees at
/// scan time. Sorted for deterministic output.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let crates = root.join("crates");
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let krate = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &krate, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for (krate, path) in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(SourceFile {
            path: rel,
            krate,
            text,
        });
    }
    Ok(out)
}

fn walk_rs(dir: &Path, krate: &str, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, krate, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push((krate.to_string(), p));
        }
    }
    Ok(())
}

/// Analyze the workspace rooted at `root`.
pub fn analyze_root(root: &Path) -> std::io::Result<Analysis> {
    Ok(analyze(&collect_sources(root)?))
}

/// Outcome of validating one rule against its seeded-fault fixture.
#[derive(Debug)]
pub struct RuleValidation {
    /// Rule id.
    pub rule: &'static str,
    /// Fixture file name tried.
    pub fixture: String,
    /// Whether the rule fired on its fixture.
    pub fired: bool,
    /// Rules that fired but weren't expected to (noise check).
    pub findings: Vec<Finding>,
}

/// Mutation-style self-validation: each FERALRS rule must fire on its
/// seeded-fault fixture (`fixtures/feralrs00N.rs`). The analyzer is
/// only trusted on the live tree because this gate proves every rule
/// still detects the fault it was built for.
pub fn validate(fixtures_dir: &Path) -> std::io::Result<Vec<RuleValidation>> {
    let mut out = Vec::new();
    for r in &rules::RULES {
        let name = format!("{}.rs", r.id.to_lowercase());
        let path = fixtures_dir.join(&name);
        let text = std::fs::read_to_string(&path)?;
        let a = analyze(&[SourceFile {
            path: name.clone(),
            krate: "fixture".into(),
            text,
        }]);
        let fired = a.findings.iter().any(|f| f.rule == r.id);
        out.push(RuleValidation {
            rule: r.id,
            fixture: name,
            fired,
            findings: a.findings,
        });
    }
    Ok(out)
}
