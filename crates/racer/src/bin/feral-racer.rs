//! `feral-racer` — lock-order & atomics discipline checks for the
//! workspace's own concurrency core.
//!
//! ```text
//! feral-racer check [--root DIR] [--json | --sarif] [--out PATH] [--validate]
//! ```
//!
//! `check` analyzes `<root>/crates/*/src`, prints the report (text by
//! default, `--json` for the golden acquisition inventory, `--sarif`
//! for SARIF 2.1.0), and exits 1 when findings exist. `--validate`
//! additionally runs the seeded-fault fixture gate: every FERALRS rule
//! must fire on its fixture, or the analyzer itself is broken.

use feral_cli::{die, write_out, Args, EXIT_DEVIATION};
use std::path::{Path, PathBuf};

const TOOL: &str = "feral-racer";

fn help() -> String {
    feral_cli::render_help(
        TOOL,
        "lock-order and atomics discipline checks for the workspace's concurrency core",
        "  feral-racer check [--root DIR] [--sarif]\n",
        "  --root DIR        repo root (default: nearest ancestor with crates/)\n\
         \x20 --sarif           SARIF 2.1.0 output instead of text/JSON\n",
    )
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help") {
        print!("{}", help());
        return;
    }
    match argv.first().map(String::as_str) {
        Some("check") => check(Args::from_iter(argv.into_iter().skip(1))),
        Some(other) => die(TOOL, &format!("unknown command `{other}` (try `check`)")),
        None => die(
            TOOL,
            "usage: feral-racer check [--root DIR] [--json|--sarif] [--out PATH] [--validate] \
             (--help for details)",
        ),
    }
}

/// The repo root: `--root`, or the nearest ancestor with `crates/`.
fn find_root(args: &Args) -> PathBuf {
    if let Some(r) = args.get_str("root") {
        return PathBuf::from(r);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|e| die(TOOL, &e.to_string()));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            die(TOOL, "no crates/ directory found; pass --root");
        }
    }
}

fn check(args: Args) {
    let root = find_root(&args);
    let analysis = feral_racer::analyze_root(&root)
        .unwrap_or_else(|e| die(TOOL, &format!("scan failed: {e}")));
    let rendered = if args.has("json") {
        feral_racer::report::render_inventory(&analysis)
    } else if args.has("sarif") {
        feral_racer::report::render_sarif_report(&analysis)
    } else {
        feral_racer::report::render_text(&analysis)
    };
    write_out(TOOL, args.get_str("out"), &rendered);

    let mut deviation = !analysis.findings.is_empty();
    if deviation {
        eprintln!(
            "{TOOL}: {} finding(s) on the live tree",
            analysis.findings.len()
        );
    }
    if args.has("validate") {
        let fixtures = fixtures_dir(&root);
        let results = feral_racer::validate(&fixtures)
            .unwrap_or_else(|e| die(TOOL, &format!("fixture validation failed: {e}")));
        for r in &results {
            if r.fired {
                eprintln!("{TOOL}: {} fired on {}", r.rule, r.fixture);
            } else {
                eprintln!(
                    "{TOOL}: {} DID NOT FIRE on {} — rule or fixture broken",
                    r.rule, r.fixture
                );
                deviation = true;
            }
        }
    }
    if deviation {
        std::process::exit(EXIT_DEVIATION as i32);
    }
}

fn fixtures_dir(root: &Path) -> PathBuf {
    root.join("crates").join("racer").join("fixtures")
}
