//! A hand-rolled Rust lexer, in the house style of `corpus::ruby`:
//! enough tokenization to recover identifiers, punctuation, and brace
//! structure, while keeping every comment (with its line number) for
//! the `racer:` discipline declarations and `SAFETY:` vetting notes.
//!
//! Not a full Rust lexer — it does not classify keywords, interpret
//! numeric suffixes, or expand macros — but it is exact about the
//! things the analyses depend on: string/char/lifetime disambiguation
//! (so `'a` never eats a brace), raw strings, nested block comments,
//! and line attribution for every token.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `self`, `Ordering`, ...).
    Ident(String),
    /// Single punctuation character (`{`, `.`, `<`, ...). Multi-char
    /// operators arrive as consecutive tokens.
    Punct(char),
    /// Numeric literal (text preserved for constant-index checks).
    Num(String),
    /// String, raw-string, or byte-string literal (contents dropped).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True when this token is the given identifier/keyword.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(t) if t == s)
    }
}

/// A comment with its starting line (text excludes the `//`/`/*`
/// markers; block comments keep interior newlines).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Comment text without delimiters, trimmed.
    pub text: String,
    /// Doc comment (`///`, `//!`, `/**`, `/*!`) — documentation is
    /// never parsed for `racer:` directives.
    pub doc: bool,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize one source file.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let doc = matches!(bytes.get(start), Some(b'/') | Some(b'!'));
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].trim_start_matches(['/', '!']).trim().into(),
                    doc,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end].trim_matches(['*', '!', ' ']).trim().into(),
                    doc: matches!(bytes.get(start), Some(b'*') | Some(b'!')),
                });
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                });
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                i = skip_string(bytes, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                });
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i = skip_char(bytes, i + 1);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    line,
                });
            }
            b'r' if matches!(bytes.get(i + 1), Some(b'"' | b'#'))
                && raw_string_start(bytes, i + 1) =>
            {
                i = skip_raw_string(bytes, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal: a lifetime is ' + ident NOT
                // followed by a closing quote.
                if is_lifetime(bytes, i) {
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                } else {
                    i = skip_char(bytes, i);
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        line,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (is_ident_byte(bytes[i]) || bytes[i] == b'.') {
                    // `0..10` — don't absorb the range dots
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Num(src[start..i].into()),
                    line,
                });
            }
            c if is_ident_byte(c) => {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].into()),
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// At `bytes[i] == '\''`: lifetime iff next is an ident start and the
/// char after the ident run is not a closing quote (`'a'` is a char).
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&first) = bytes.get(i + 1) else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    let mut j = i + 1;
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

fn raw_string_start(bytes: &[u8], mut i: usize) -> bool {
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    bytes.get(i) == Some(&b'"')
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

fn skip_char(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
        // \u{...}
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return i + 1;
    }
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_puncts_and_lines() {
        let lx = lex("fn a() {\n  x.lock();\n}\n");
        let idents: Vec<&str> = lx.tokens.iter().filter_map(Token::ident).collect();
        assert_eq!(idents, ["fn", "a", "x", "lock"]);
        let lock = lx.tokens.iter().find(|t| t.is_ident("lock")).unwrap();
        assert_eq!(lock.line, 2);
    }

    #[test]
    fn disambiguates_lifetimes_chars_and_strings() {
        let lx = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; let s = \"a'b{\"; }");
        let braces = lx.tokens.iter().filter(|t| t.is_punct('{')).count();
        assert_eq!(braces, 1, "brace inside string must not count");
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let chars = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_strings_and_nested_comments_survive() {
        let lx = lex("let a = r#\"quote \" and {\"#; /* outer /* inner */ still */ let b = 1;");
        let braces = lx.tokens.iter().filter(|t| t.is_punct('{')).count();
        assert_eq!(braces, 0);
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.contains("still"));
        assert!(lx.tokens.iter().any(|t| t.is_ident("b")));
    }

    #[test]
    fn comments_keep_lines_and_text() {
        let lx = lex("// racer:order A < B\nfn f() {}\n// SAFETY: fine\n");
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].line, 1);
        assert_eq!(lx.comments[0].text, "racer:order A < B");
        assert_eq!(lx.comments[1].line, 3);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let lx = lex("for i in 0..10 { a[i] }");
        let nums: Vec<&str> = lx
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Num(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["0", "10"]);
    }
}
