//! Call-graph closure and the interprocedural lock-acquisition graph.
//!
//! Intraprocedural edges come straight from the extractor. The
//! interprocedural ones are induced at call sites: if `f` calls `g`
//! while holding class `H`, then every class `g` may *blockingly*
//! acquire (transitively, through its own callees) gets an edge
//! `H → class`. Non-blocking (`try_*`) acquisitions never induce
//! interprocedural edges and never participate in deadlock cycles — a
//! failed `try_lock` backs off instead of waiting.

use crate::extract::FnFacts;
use std::collections::{BTreeMap, BTreeSet};

/// Provenance and nature of one acquisition-graph edge.
#[derive(Debug, Clone, Default)]
pub struct EdgeMeta {
    /// At least one site acquires the target with a blocking call.
    pub blocking: bool,
    /// `(file, line)` witnesses, deduped and sorted.
    pub sites: BTreeSet<(String, u32)>,
}

/// The workspace-wide acquisition graph.
#[derive(Debug, Default)]
pub struct AcqGraph {
    /// `(held, acquired)` → metadata. Self-edges are kept (they feed
    /// the latch-iteration rule) but excluded from cycle detection.
    pub edges: BTreeMap<(String, String), EdgeMeta>,
    /// Per-function transitive *blocking* acquisition classes.
    pub reaches: BTreeMap<String, BTreeSet<String>>,
}

/// Build the acquisition graph from per-function facts.
pub fn build(facts: &[FnFacts]) -> AcqGraph {
    // direct blocking classes + callee lists per fn key (same-key
    // definitions union — trait impls share a key and either may run)
    let mut direct: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    let mut callees: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in facts {
        let d = direct.entry(&f.key).or_default();
        for a in &f.acquisitions {
            if !a.try_only && a.class != "?" {
                d.insert(a.class.clone());
            }
        }
        let c = callees.entry(&f.key).or_default();
        for call in &f.calls {
            c.insert(&call.callee);
        }
    }
    // fixpoint: reaches = direct ∪ reaches(callees)
    let mut reaches: BTreeMap<String, BTreeSet<String>> = direct
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (key, calls) in &callees {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in calls {
                if let Some(r) = reaches.get(*callee) {
                    add.extend(r.iter().cloned());
                }
            }
            let mine = reaches.entry(key.to_string()).or_default();
            let before = mine.len();
            mine.extend(add);
            changed |= mine.len() != before;
        }
        if !changed {
            break;
        }
    }
    // edges: intraprocedural + call-site induced
    let mut graph = AcqGraph {
        edges: BTreeMap::new(),
        reaches,
    };
    for f in facts {
        for e in &f.edges {
            let meta = graph
                .edges
                .entry((e.from.clone(), e.to.clone()))
                .or_default();
            meta.blocking |= !e.to_try;
            meta.sites.insert((f.file.clone(), e.line));
        }
        for call in &f.calls {
            let Some(r) = graph.reaches.get(&call.callee) else {
                continue;
            };
            if r.is_empty() {
                continue;
            }
            let targets: Vec<String> = r.iter().cloned().collect();
            for held in &call.held {
                for t in &targets {
                    let meta = graph.edges.entry((held.clone(), t.clone())).or_default();
                    meta.blocking = true;
                    meta.sites.insert((f.file.clone(), call.line));
                }
            }
        }
    }
    graph
}

impl AcqGraph {
    /// Cycles among *blocking* edges between distinct classes, as
    /// strongly connected components with two or more members, each
    /// sorted and the list sorted — deterministic output.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for ((from, to), meta) in &self.edges {
            if meta.blocking && from != to {
                adj.entry(from).or_default().push(to);
                adj.entry(to).or_default();
            }
        }
        let nodes: Vec<&str> = adj.keys().copied().collect();
        let index_of: BTreeMap<&str, usize> =
            nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        // iterative Tarjan
        let n = nodes.len();
        let mut idx = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<String>> = Vec::new();
        let mut counter = 0usize;
        for start in 0..n {
            if idx[start] != usize::MAX {
                continue;
            }
            // (node, next child position)
            let mut call: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    idx[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let children = &adj[nodes[v]];
                if *ci < children.len() {
                    let w = index_of[children[*ci]];
                    *ci += 1;
                    if idx[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(idx[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(p, _)) = call.last() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == idx[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(nodes[w].to_string());
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 {
                            comp.sort();
                            sccs.push(comp);
                        }
                    }
                }
            }
        }
        sccs.sort();
        sccs
    }

    /// A representative `(file, line)` witness for an edge.
    pub fn witness(&self, from: &str, to: &str) -> Option<&(String, u32)> {
        self.edges
            .get(&(from.to_string(), to.to_string()))
            .and_then(|m| m.sites.iter().next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{AcqKind, Acquisition, CallSite, Edge, FnFacts, IterCtx};

    fn acq(class: &str, try_only: bool) -> Acquisition {
        Acquisition {
            class: class.into(),
            kind: AcqKind::Lock,
            try_only,
            iter: IterCtx::default(),
            const_index: None,
            line: 1,
        }
    }

    fn edge(from: &str, to: &str, to_try: bool) -> Edge {
        Edge {
            from: from.into(),
            from_index: None,
            to: to.into(),
            to_index: None,
            to_try,
            line: 2,
        }
    }

    #[test]
    fn call_sites_induce_transitive_edges() {
        let f1 = FnFacts {
            key: "A::outer".into(),
            file: "a.rs".into(),
            acquisitions: vec![acq("c::A::x", false)],
            calls: vec![CallSite {
                callee: "A::inner".into(),
                held: vec!["c::A::x".into()],
                line: 3,
            }],
            ..FnFacts::default()
        };
        let f2 = FnFacts {
            key: "A::inner".into(),
            file: "a.rs".into(),
            acquisitions: vec![acq("c::A::y", false)],
            ..FnFacts::default()
        };
        let g = build(&[f1, f2]);
        let meta = &g.edges[&("c::A::x".to_string(), "c::A::y".to_string())];
        assert!(meta.blocking);
        assert_eq!(g.witness("c::A::x", "c::A::y").unwrap().1, 3);
    }

    #[test]
    fn cycles_found_and_try_edges_ignored() {
        let f1 = FnFacts {
            key: "f1".into(),
            file: "a.rs".into(),
            edges: vec![edge("L::a", "L::b", false), edge("L::b", "L::c", true)],
            ..FnFacts::default()
        };
        let f2 = FnFacts {
            key: "f2".into(),
            file: "b.rs".into(),
            edges: vec![edge("L::b", "L::a", false)],
            ..FnFacts::default()
        };
        let g = build(&[f1, f2]);
        let cycles = g.cycles();
        assert_eq!(cycles, vec![vec!["L::a".to_string(), "L::b".to_string()]]);
        // try edge b->c does not extend the cycle
        assert!(!cycles[0].contains(&"L::c".to_string()));
    }

    #[test]
    fn self_edges_do_not_count_as_cycles() {
        let f = FnFacts {
            key: "f".into(),
            file: "a.rs".into(),
            edges: vec![edge("L::s", "L::s", false)],
            ..FnFacts::default()
        };
        assert!(build(&[f]).cycles().is_empty());
    }
}
