//! `racer:` discipline declarations, parsed out of ordinary comments.
//!
//! The canonical latch order, terminal locks, publication fields, and
//! seqlock pairings are *declared in the source they govern* — the same
//! philosophy as the paper's observation that feral invariants live in
//! the application, not the database. Declarations are workspace-wide
//! facts; vets (`racer:owner-thread`, `racer:allow RULE`) are scoped to
//! the line they annotate (same line, or the line directly below a
//! comment-only line).
//!
//! Grammar (one directive per comment):
//!
//! ```text
//! racer:order <class> < <class>        declared acquisition order
//! racer:terminal <class>               nothing acquired while held
//! racer:publication <class>            field publishes data cross-thread
//! racer:seqlock <class> guards <class> version word / payload pairing
//! racer:owner-thread                   vet: Relaxed is single-writer here
//! racer:allow <RULEID>                 vet: suppress one rule here
//! ```
//!
//! Lock classes are written `<crate>::<Struct>::<field>` for fields and
//! `<crate>::<NAME>` for statics, matching the analyzer's own class
//! naming exactly — a typo'd class simply never matches, and the
//! `--validate` fixture gate catches rules that stop firing.

use crate::lexer::Comment;
use std::collections::{BTreeMap, BTreeSet};

/// One `racer:order A < B` edge with its provenance.
#[derive(Debug, Clone)]
pub struct OrderDecl {
    /// Class that must be acquired first.
    pub before: String,
    /// Class that must be acquired later.
    pub after: String,
    /// Repo-relative file the declaration lives in.
    pub file: String,
    /// 1-based line of the declaration comment.
    pub line: u32,
}

/// One `racer:seqlock V guards P` pairing.
#[derive(Debug, Clone)]
pub struct SeqlockDecl {
    /// The version-word class.
    pub version: String,
    /// The payload class guarded by the version word.
    pub payload: String,
    /// Repo-relative file the declaration lives in.
    pub file: String,
}

/// All declarations and vets recovered from the scanned tree.
#[derive(Debug, Default)]
pub struct Declarations {
    /// Declared pairwise acquisition orders.
    pub orders: Vec<OrderDecl>,
    /// Classes declared terminal (leaf locks).
    pub terminals: BTreeSet<String>,
    /// Atomic fields declared as publication points.
    pub publications: BTreeSet<String>,
    /// Declared seqlock version/payload pairings.
    pub seqlocks: Vec<SeqlockDecl>,
    /// Vetted lines: `(file, line) -> vet kinds` (`owner-thread`, or
    /// `allow:FERALRS004` style suppressions).
    vets: BTreeMap<(String, u32), BTreeSet<String>>,
    /// Malformed `racer:` comments, reported as configuration errors.
    pub malformed: Vec<(String, u32, String)>,
}

impl Declarations {
    /// Fold one file's comments into the declaration set.
    pub fn absorb(&mut self, file: &str, comments: &[Comment]) {
        for c in comments {
            if c.doc {
                continue; // documentation may quote the grammar freely
            }
            let Some(body) = c.text.strip_prefix("racer:") else {
                continue;
            };
            let words: Vec<&str> = body.split_whitespace().collect();
            match words.as_slice() {
                ["order", before, "<", after] => self.orders.push(OrderDecl {
                    before: (*before).into(),
                    after: (*after).into(),
                    file: file.into(),
                    line: c.line,
                }),
                ["terminal", class] => {
                    self.terminals.insert((*class).into());
                }
                ["publication", class] => {
                    self.publications.insert((*class).into());
                }
                ["seqlock", version, "guards", payload] => self.seqlocks.push(SeqlockDecl {
                    version: (*version).into(),
                    payload: (*payload).into(),
                    file: file.into(),
                }),
                ["owner-thread", ..] => self.vet(file, c.line, "owner-thread"),
                ["allow", rule] => self.vet(file, c.line, &format!("allow:{rule}")),
                _ => self.malformed.push((file.into(), c.line, c.text.clone())),
            }
        }
    }

    fn vet(&mut self, file: &str, line: u32, kind: &str) {
        // A vet covers its own line (trailing comment) and the line
        // below (comment-only line annotating the next statement).
        for l in [line, line + 1] {
            self.vets
                .entry((file.into(), l))
                .or_default()
                .insert(kind.into());
        }
    }

    /// Whether `file:line` carries the given vet kind.
    pub fn is_vetted(&self, file: &str, line: u32, kind: &str) -> bool {
        self.vets
            .get(&(file.to_string(), line))
            .is_some_and(|k| k.contains(kind))
    }

    /// The declared order relation as `(before, after)` pairs.
    pub fn order_pairs(&self) -> Vec<(&str, &str)> {
        self.orders
            .iter()
            .map(|o| (o.before.as_str(), o.after.as_str()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_each_directive_form() {
        let src = "\
// racer:order a::P::shards < a::P::group
// racer:terminal a::P::group
// racer:publication a::Ring::head
// racer:seqlock a::Slot::version guards a::Slot::words
// racer:owner-thread head is written by the owning worker only
// racer:allow FERALRS006
// racer:bogus directive
fn f() {}
";
        let mut d = Declarations::default();
        d.absorb("x.rs", &lex(src).comments);
        assert_eq!(d.orders.len(), 1);
        assert_eq!(d.orders[0].before, "a::P::shards");
        assert_eq!(d.orders[0].after, "a::P::group");
        assert!(d.terminals.contains("a::P::group"));
        assert!(d.publications.contains("a::Ring::head"));
        assert_eq!(d.seqlocks[0].version, "a::Slot::version");
        assert_eq!(d.seqlocks[0].payload, "a::Slot::words");
        assert!(d.is_vetted("x.rs", 5, "owner-thread"));
        assert!(d.is_vetted("x.rs", 6, "owner-thread"), "covers next line");
        assert!(d.is_vetted("x.rs", 6, "allow:FERALRS006"));
        assert!(!d.is_vetted("x.rs", 9, "owner-thread"));
        assert_eq!(d.malformed.len(), 1);
        assert_eq!(d.malformed[0].1, 7);
    }

    #[test]
    fn trailing_comment_vets_its_own_line() {
        let src = "fn f() { x.load(Ordering::Relaxed); } // racer:owner-thread\n";
        let mut d = Declarations::default();
        d.absorb("y.rs", &lex(src).comments);
        assert!(d.is_vetted("y.rs", 1, "owner-thread"));
    }
}
