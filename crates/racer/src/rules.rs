//! The FERALRS rule catalog: six discipline checks over the extracted
//! facts, the acquisition graph, and the `racer:` declarations.
//!
//! Each rule is certified the same way `feral-lint` certifies its app
//! rules: a seeded-fault fixture must make it fire, and the live tree
//! must stay silent. `--validate` runs that gate.

use crate::decl::Declarations;
use crate::extract::FnFacts;
use crate::graph::AcqGraph;
use crate::lexer::Comment;
use std::collections::BTreeMap;

/// Static metadata for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Stable id (`FERALRS001`).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Citation tying the rule to the literature.
    pub citation: &'static str,
    /// DESIGN.md anchor for the help URI.
    pub anchor: &'static str,
}

/// The full catalog, in id order.
pub const RULES: [RuleMeta; 6] = [
    RuleMeta {
        id: "FERALRS001",
        name: "lock-order-cycle",
        summary: "Two or more lock classes are blockingly acquired in both \
                  orders somewhere in the workspace: a deadlock-capable cycle \
                  in the acquisition graph.",
        citation: "Coffman, Elphick & Shoshani 1971, \"System Deadlocks\"",
        anchor: "DESIGN.md#141-the-acquisition-graph",
    },
    RuleMeta {
        id: "FERALRS002",
        name: "unordered-latch-iteration",
        summary: "A multi-instance lock class (shard latches) is acquired \
                  under reversed, hash-ordered, or descending-index \
                  iteration instead of the canonical ascending order.",
        citation: "Havender 1968, \"Avoiding deadlock in multitasking systems\"",
        anchor: "DESIGN.md#142-latch-iteration-discipline",
    },
    RuleMeta {
        id: "FERALRS003",
        name: "declared-order-violation",
        summary: "An acquisition contradicts a racer:order declaration, or \
                  a lock declared racer:terminal is held across another \
                  acquisition.",
        citation: "Bailis et al. 2015 (feral invariants live in the app, \
                   so declare them where the code is)",
        anchor: "DESIGN.md#143-declared-canonical-order",
    },
    RuleMeta {
        id: "FERALRS004",
        name: "relaxed-publication",
        summary: "A field declared racer:publication is stored without \
                  release ordering or loaded without acquire ordering \
                  (unvetted).",
        citation: "Boehm & Adve 2008, \"Foundations of the C++ concurrency \
                   memory model\"",
        anchor: "DESIGN.md#144-atomics-discipline",
    },
    RuleMeta {
        id: "FERALRS005",
        name: "broken-seqlock-pairing",
        summary: "A racer:seqlock payload is written without both version \
                  bumps bracketing it, or read without bracketing acquire \
                  loads of the version word.",
        citation: "Boehm 2012, \"Can seqlocks get along with programming \
                   language memory models?\"",
        anchor: "DESIGN.md#144-atomics-discipline",
    },
    RuleMeta {
        id: "FERALRS006",
        name: "unvetted-unsafe",
        summary: "An unsafe block without a SAFETY: comment in the three \
                  lines above it (and no racer:allow vet).",
        citation: "Rust API guidelines C-SAFETY-DOC",
        anchor: "DESIGN.md#145-unsafe-vetting",
    },
];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line (0 when the finding is graph-global).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// Run every rule. `comments` maps file → its comments (for SAFETY
/// vetting). Output is sorted and deduped.
pub fn check(
    facts: &[FnFacts],
    graph: &AcqGraph,
    decls: &Declarations,
    comments: &BTreeMap<String, Vec<Comment>>,
) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    rs001_cycles(graph, &mut out);
    rs002_iteration(facts, &mut out);
    rs003_declared(graph, decls, &mut out);
    rs004_publication(facts, decls, &mut out);
    rs005_seqlock(facts, decls, &mut out);
    rs006_unsafe(facts, comments, &mut out);
    out.retain(|f| !decls.is_vetted(&f.file, f.line, &format!("allow:{}", f.rule)));
    for (file, line, text) in &decls.malformed {
        out.push(Finding {
            rule: "FERALRS003",
            file: file.clone(),
            line: *line,
            message: format!("malformed racer: declaration `{text}`"),
        });
    }
    out.sort();
    out.dedup();
    out
}

fn rs001_cycles(graph: &AcqGraph, out: &mut Vec<Finding>) {
    for cycle in graph.cycles() {
        let mut witness = (String::new(), 0u32);
        'find: for a in &cycle {
            for b in &cycle {
                if a != b {
                    if let Some((f, l)) = graph.witness(a, b) {
                        witness = (f.clone(), *l);
                        break 'find;
                    }
                }
            }
        }
        out.push(Finding {
            rule: "FERALRS001",
            file: witness.0,
            line: witness.1,
            message: format!(
                "lock classes acquired in conflicting orders: {}",
                cycle.join(" <-> ")
            ),
        });
    }
}

fn rs002_iteration(facts: &[FnFacts], out: &mut Vec<Finding>) {
    for f in facts {
        for a in &f.acquisitions {
            if a.class == "?" || a.try_only {
                continue;
            }
            if a.iter.rev {
                out.push(Finding {
                    rule: "FERALRS002",
                    file: f.file.clone(),
                    line: a.line,
                    message: format!(
                        "{} acquired under reversed iteration in {} — shard \
                         latches must be taken in ascending order",
                        a.class, f.key
                    ),
                });
            } else if a.iter.unordered {
                out.push(Finding {
                    rule: "FERALRS002",
                    file: f.file.clone(),
                    line: a.line,
                    message: format!(
                        "{} acquired while iterating a hash-ordered container \
                         in {} — acquisition order is nondeterministic",
                        a.class, f.key
                    ),
                });
            }
        }
        // descending constant indices into the same class
        for e in &f.edges {
            if e.from == e.to && !e.to_try {
                if let (Some(i), Some(j)) = (e.from_index, e.to_index) {
                    if j <= i {
                        out.push(Finding {
                            rule: "FERALRS002",
                            file: f.file.clone(),
                            line: e.line,
                            message: format!(
                                "{}[{}] acquired while holding [{}] in {} — \
                                 descending latch order",
                                e.to, j, i, f.key
                            ),
                        });
                    }
                }
            }
        }
    }
}

fn rs003_declared(graph: &AcqGraph, decls: &Declarations, out: &mut Vec<Finding>) {
    for (before, after) in decls.order_pairs() {
        if let Some(meta) = graph.edges.get(&(after.to_string(), before.to_string())) {
            if meta.blocking {
                let (file, line) = meta.sites.iter().next().cloned().unwrap_or_default();
                out.push(Finding {
                    rule: "FERALRS003",
                    file,
                    line,
                    message: format!(
                        "{before} is declared before {after}, but {before} is \
                         acquired while {after} is held"
                    ),
                });
            }
        }
    }
    for t in &decls.terminals {
        for ((from, to), meta) in &graph.edges {
            if from == t && to != t {
                let (file, line) = meta.sites.iter().next().cloned().unwrap_or_default();
                out.push(Finding {
                    rule: "FERALRS003",
                    file,
                    line,
                    message: format!(
                        "{to} acquired while terminal lock {t} is held — \
                         nothing may be acquired under it"
                    ),
                });
            }
        }
    }
}

fn rs004_publication(facts: &[FnFacts], decls: &Declarations, out: &mut Vec<Finding>) {
    for f in facts {
        for op in &f.atomics {
            if !decls.publications.contains(&op.class) {
                continue;
            }
            let Some(order) = op.orderings.first() else {
                continue;
            };
            if op.is_store() {
                if matches!(order.as_str(), "Relaxed" | "Acquire") {
                    out.push(Finding {
                        rule: "FERALRS004",
                        file: f.file.clone(),
                        line: op.line,
                        message: format!(
                            "publication field {} written with {} ordering in \
                             {} — readers may observe unpublished data",
                            op.class, order, f.key
                        ),
                    });
                }
            } else if matches!(order.as_str(), "Relaxed" | "Release")
                && !decls.is_vetted(&f.file, op.line, "owner-thread")
            {
                out.push(Finding {
                    rule: "FERALRS004",
                    file: f.file.clone(),
                    line: op.line,
                    message: format!(
                        "publication field {} loaded with {} ordering in {} \
                         without an owner-thread vet",
                        op.class, order, f.key
                    ),
                });
            }
        }
    }
}

fn rs005_seqlock(facts: &[FnFacts], decls: &Declarations, out: &mut Vec<Finding>) {
    for sl in &decls.seqlocks {
        for f in facts {
            let ver: Vec<_> = f.atomics.iter().filter(|a| a.class == sl.version).collect();
            let pay: Vec<_> = f.atomics.iter().filter(|a| a.class == sl.payload).collect();
            if pay.is_empty() {
                continue;
            }
            let writes = pay.iter().any(|a| a.is_store());
            let p_lines: Vec<u32> = pay.iter().map(|a| a.line).collect();
            let (p_min, p_max) = (
                *p_lines.iter().min().unwrap_or(&0),
                *p_lines.iter().max().unwrap_or(&0),
            );
            if writes {
                let v_stores: Vec<_> = ver.iter().filter(|a| a.is_store()).collect();
                let bracketed = v_stores.iter().any(|a| a.line < p_min)
                    && v_stores.iter().any(|a| a.line > p_max);
                if v_stores.len() < 2 || !bracketed {
                    out.push(Finding {
                        rule: "FERALRS005",
                        file: f.file.clone(),
                        line: p_min,
                        message: format!(
                            "{} writes payload {} without bracketing stores to \
                             version word {} (odd before, even after)",
                            f.key, sl.payload, sl.version
                        ),
                    });
                    continue;
                }
                for vs in &v_stores {
                    if vs
                        .orderings
                        .first()
                        .is_some_and(|o| !matches!(o.as_str(), "Release" | "SeqCst" | "AcqRel"))
                    {
                        out.push(Finding {
                            rule: "FERALRS005",
                            file: f.file.clone(),
                            line: vs.line,
                            message: format!(
                                "seqlock version {} stored without release \
                                 ordering in {}",
                                sl.version, f.key
                            ),
                        });
                    }
                }
            } else {
                let v_loads: Vec<_> = ver.iter().filter(|a| !a.is_store()).collect();
                let bracketed = v_loads.iter().any(|a| a.line < p_min)
                    && v_loads.iter().any(|a| a.line > p_max);
                if v_loads.len() < 2 || !bracketed {
                    out.push(Finding {
                        rule: "FERALRS005",
                        file: f.file.clone(),
                        line: p_min,
                        message: format!(
                            "{} reads payload {} without bracketing loads of \
                             version word {} (validate before and after)",
                            f.key, sl.payload, sl.version
                        ),
                    });
                    continue;
                }
                for vl in &v_loads {
                    if vl
                        .orderings
                        .first()
                        .is_some_and(|o| !matches!(o.as_str(), "Acquire" | "SeqCst"))
                    {
                        out.push(Finding {
                            rule: "FERALRS005",
                            file: f.file.clone(),
                            line: vl.line,
                            message: format!(
                                "seqlock version {} loaded without acquire \
                                 ordering in reader {}",
                                sl.version, f.key
                            ),
                        });
                    }
                }
            }
        }
    }
}

fn rs006_unsafe(
    facts: &[FnFacts],
    comments: &BTreeMap<String, Vec<Comment>>,
    out: &mut Vec<Finding>,
) {
    for f in facts {
        for site in &f.unsafes {
            let vetted = comments.get(&f.file).is_some_and(|cs| {
                cs.iter().any(|c| {
                    c.line + 3 >= site.line && c.line <= site.line && c.text.starts_with("SAFETY")
                })
            });
            if !vetted {
                out.push(Finding {
                    rule: "FERALRS006",
                    file: f.file.clone(),
                    line: site.line,
                    message: format!(
                        "unsafe block in {} without a SAFETY: comment above it",
                        f.key
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{AtomicOp, FnFacts};
    use crate::graph;

    fn base_fn(key: &str) -> FnFacts {
        FnFacts {
            key: key.into(),
            file: "x.rs".into(),
            krate: "tc".into(),
            line: 1,
            ..FnFacts::default()
        }
    }

    fn op(class: &str, opname: &str, order: &str, line: u32) -> AtomicOp {
        AtomicOp {
            class: class.into(),
            op: opname.into(),
            orderings: vec![order.into()],
            line,
        }
    }

    #[test]
    fn publication_rule_flags_relaxed_store_not_vetted_load() {
        let mut decls = Declarations::default();
        decls.publications.insert("tc::R::head".into());
        let mut f = base_fn("R::push");
        f.atomics.push(op("tc::R::head", "store", "Relaxed", 5));
        f.atomics.push(op("tc::R::head", "load", "Acquire", 6));
        let findings = check(&[f], &graph::build(&[]), &decls, &BTreeMap::new());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "FERALRS004");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn seqlock_rule_wants_bracketing_version_bumps() {
        let mut decls = Declarations::default();
        decls.seqlocks.push(crate::decl::SeqlockDecl {
            version: "tc::S::version".into(),
            payload: "tc::S::words".into(),
            file: "x.rs".into(),
        });
        // writer with only one version bump (the trailing one missing)
        let mut f = base_fn("S::push");
        f.atomics.push(op("tc::S::version", "store", "Release", 4));
        f.atomics.push(op("tc::S::words", "store", "Release", 5));
        let findings = check(&[f], &graph::build(&[]), &decls, &BTreeMap::new());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "FERALRS005");

        // well-formed writer and reader stay silent
        let mut w = base_fn("S::push");
        w.atomics.push(op("tc::S::version", "store", "Release", 4));
        w.atomics.push(op("tc::S::words", "store", "Release", 5));
        w.atomics.push(op("tc::S::version", "store", "Release", 6));
        let mut r = base_fn("S::snap");
        r.atomics.push(op("tc::S::version", "load", "Acquire", 9));
        r.atomics.push(op("tc::S::words", "load", "Acquire", 10));
        r.atomics.push(op("tc::S::version", "load", "Acquire", 11));
        let findings = check(&[w, r], &graph::build(&[]), &decls, &BTreeMap::new());
        assert!(findings.is_empty(), "findings: {findings:?}");
    }

    #[test]
    fn terminal_and_order_declarations_are_enforced() {
        let mut decls = Declarations::default();
        decls.orders.push(crate::decl::OrderDecl {
            before: "tc::P::shards".into(),
            after: "tc::P::group".into(),
            file: "x.rs".into(),
            line: 1,
        });
        decls.terminals.insert("tc::P::group".into());
        let mut f = base_fn("P::bad");
        f.edges.push(crate::extract::Edge {
            from: "tc::P::group".into(),
            from_index: None,
            to: "tc::P::shards".into(),
            to_index: None,
            to_try: false,
            line: 7,
        });
        let findings = check(&[f.clone()], &graph::build(&[f]), &decls, &BTreeMap::new());
        let rules: Vec<&str> = findings.iter().map(|x| x.rule).collect();
        // inverted order and terminal violation both fire
        assert_eq!(rules, ["FERALRS003", "FERALRS003"]);
    }
}
