//! Clean-tree regression: the analyzer must stay silent on the live
//! workspace, and the facts it extracts must include the load-bearing
//! shapes of the commit pipeline and the trace ring — if extraction
//! quietly regresses to seeing nothing, "no findings" means nothing.

use feral_racer::Analysis;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/racer has a workspace root two levels up")
        .to_path_buf()
}

fn analysis() -> &'static Analysis {
    static ONCE: OnceLock<Analysis> = OnceLock::new();
    ONCE.get_or_init(|| feral_racer::analyze_root(&repo_root()).expect("scan"))
}

#[test]
fn live_tree_has_no_findings() {
    let a = analysis();
    assert!(
        a.findings.is_empty(),
        "live tree must be clean: {:#?}",
        a.findings
    );
}

#[test]
fn extraction_sees_the_commit_pipeline_discipline() {
    let a = analysis();
    let classes = a.class_counts();
    for class in [
        "feraldb::CommitPipeline::shards",
        "feraldb::CommitPipeline::group",
        "feraldb::CommitPipeline::publish_lock",
        "feraldb::DbInner::catalog",
    ] {
        assert!(classes.contains_key(class), "missing lock class {class}");
    }
    // The commit path holds shard latches across the group buffer: the
    // interprocedural edge the declared order is about.
    let edge = a.graph.edges.get(&(
        "feraldb::CommitPipeline::shards".to_string(),
        "feraldb::CommitPipeline::group".to_string(),
    ));
    assert!(
        edge.is_some_and(|m| m.blocking),
        "shards -> group blocking edge missing: extraction regressed"
    );
    // ...and the declared discipline is actually loaded from the tree.
    assert!(
        !a.decls.orders.is_empty(),
        "racer:order declarations not parsed"
    );
    assert!(
        a.decls.terminals.contains("feraldb::CommitPipeline::group"),
        "group terminal declaration not parsed"
    );
}

#[test]
fn extraction_sees_the_trace_ring_seqlock() {
    let a = analysis();
    assert!(
        a.decls.publications.contains("trace::Ring::head"),
        "publication declaration not parsed"
    );
    assert_eq!(a.decls.seqlocks.len(), 1, "seqlock declaration not parsed");
    // The ring writer's atomics must be visible for FERALRS005 to have
    // ever had a chance of checking it.
    let push = a
        .facts
        .iter()
        .find(|f| f.key == "Ring::push" && f.file.contains("trace"))
        .expect("Ring::push facts");
    let version_stores = push
        .atomics
        .iter()
        .filter(|at| at.class == "trace::Slot::version" && at.is_store())
        .count();
    assert_eq!(version_stores, 2, "seqlock version bumps not extracted");
}

#[test]
fn every_rule_fires_on_its_seeded_fault_fixture() {
    let fixtures = repo_root().join("crates").join("racer").join("fixtures");
    let results = feral_racer::validate(&fixtures).expect("fixtures readable");
    assert_eq!(results.len(), feral_racer::rules::RULES.len());
    for r in &results {
        assert!(
            r.fired,
            "{} did not fire on {} — findings were {:#?}",
            r.rule, r.fixture, r.findings
        );
    }
}
