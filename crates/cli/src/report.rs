//! Shared report emission for the analyzer catalogs.
//!
//! feral-lint (FERAL001–009), feral-sdg, and feral-racer
//! (FERALRS001–006) all emit hand-rolled JSON and SARIF 2.1.0 — the
//! vendored serde shim has no serializer — and each used to carry its
//! own copy of the string escaper and the SARIF scaffolding. This
//! module is the one emitter they share: [`json_escape`] for every
//! dynamic string, and [`render_sarif`] for the fixed SARIF envelope
//! (one run, rule metadata in `tool.driver.rules`, findings as
//! `results` with physical locations). The schema test lives here too,
//! so a drive-by change to the envelope breaks one test, not three.

use std::fmt::Write as _;

/// Escape a string for embedding in a JSON literal (no surrounding
/// quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Static metadata for one rule in a SARIF `tool.driver.rules` entry.
#[derive(Debug, Clone, Copy)]
pub struct SarifRule<'a> {
    /// Stable id (`FERAL001`, `FERALRS003`).
    pub id: &'a str,
    /// Short kebab name.
    pub name: &'a str,
    /// One-line description (SARIF `shortDescription`).
    pub summary: &'a str,
    /// Repo-relative design-doc anchor (SARIF `helpUri`).
    pub help_uri: &'a str,
    /// Citation carried in `properties.citation`.
    pub citation: &'a str,
}

/// One SARIF `result`.
#[derive(Debug, Clone)]
pub struct SarifResult<'a> {
    /// Rule id; must name an entry in the rule catalog.
    pub rule_id: &'a str,
    /// SARIF level: `error`, `warning`, or `note`.
    pub level: &'a str,
    /// Finding message (`message.text`).
    pub message: String,
    /// Physical location (`artifactLocation.uri`).
    pub uri: String,
    /// 1-based line for `physicalLocation.region.startLine`; 0 omits
    /// the region (corpus findings locate a file, not a line).
    pub line: u64,
}

/// Render a complete SARIF 2.1.0 document: one run, the full rule
/// catalog under `tool.driver`, one `result` per finding.
pub fn render_sarif(
    tool: &str,
    information_uri: &str,
    rules: &[SarifRule<'_>],
    results: &[SarifResult<'_>],
) -> String {
    let rules_json: Vec<String> = rules
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"name\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\"helpUri\":\"{}\",\"properties\":{{\"citation\":\"{}\"}}}}",
                json_escape(r.id),
                json_escape(r.name),
                json_escape(r.summary),
                json_escape(r.help_uri),
                json_escape(r.citation)
            )
        })
        .collect();
    let results_json: Vec<String> = results
        .iter()
        .map(|f| {
            let region = if f.line > 0 {
                format!(",\"region\":{{\"startLine\":{}}}", f.line)
            } else {
                String::new()
            };
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}}{}}}}}]}}",
                json_escape(f.rule_id),
                json_escape(f.level),
                json_escape(&f.message),
                json_escape(&f.uri),
                region
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"{}\",\"informationUri\":\"{}\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}\n",
        json_escape(tool),
        json_escape(information_uri),
        rules_json.join(","),
        results_json.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use feral_trace::json::{parse, Json};

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    /// The one shared SARIF schema test: the envelope parses, the
    /// driver is fully described, every result names a declared rule,
    /// and regions appear exactly when a line is known.
    #[test]
    fn sarif_envelope_is_wellformed_and_rule_closed() {
        let rules = [
            SarifRule {
                id: "T001",
                name: "first-rule",
                summary: "summary \"quoted\"",
                help_uri: "DESIGN.md#t",
                citation: "Someone et al.",
            },
            SarifRule {
                id: "T002",
                name: "second-rule",
                summary: "another",
                help_uri: "DESIGN.md#t",
                citation: "Someone else",
            },
        ];
        let results = [
            SarifResult {
                rule_id: "T002",
                level: "error",
                message: "bad\nthing".into(),
                uri: "src/lib.rs".into(),
                line: 42,
            },
            SarifResult {
                rule_id: "T001",
                level: "warning",
                message: "meh".into(),
                uri: "app/model.rb".into(),
                line: 0,
            },
        ];
        let doc = parse(&render_sarif("feral-test", "DESIGN.md#x", &rules, &results))
            .expect("emitter must produce parseable JSON");
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        let run = &doc.get("runs").and_then(Json::as_arr).unwrap()[0];
        let driver = run.get("tool").unwrap().get("driver").unwrap();
        assert_eq!(
            driver.get("name").and_then(Json::as_str),
            Some("feral-test")
        );
        assert_eq!(
            driver.get("informationUri").and_then(Json::as_str),
            Some("DESIGN.md#x")
        );
        let declared: Vec<&str> = driver
            .get("rules")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|r| {
                assert!(r.get("shortDescription").unwrap().get("text").is_some());
                assert!(r.get("properties").unwrap().get("citation").is_some());
                r.get("id").and_then(Json::as_str).unwrap()
            })
            .collect();
        assert_eq!(declared, ["T001", "T002"]);
        let emitted = run.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(emitted.len(), 2);
        for r in emitted {
            let id = r.get("ruleId").and_then(Json::as_str).unwrap();
            assert!(declared.contains(&id), "result rule {id} not declared");
            let loc = &r.get("locations").and_then(Json::as_arr).unwrap()[0];
            assert!(loc
                .get("physicalLocation")
                .unwrap()
                .get("artifactLocation")
                .unwrap()
                .get("uri")
                .is_some());
        }
        let with_region = emitted[0].get("locations").and_then(Json::as_arr).unwrap()[0]
            .get("physicalLocation")
            .unwrap();
        assert_eq!(
            with_region
                .get("region")
                .and_then(|reg| reg.get("startLine"))
                .and_then(Json::as_u64),
            Some(42)
        );
        let without = emitted[1].get("locations").and_then(Json::as_arr).unwrap()[0]
            .get("physicalLocation")
            .unwrap();
        assert!(without.get("region").is_none());
    }
}
