//! # feral-cli
//!
//! The command-line plumbing shared by the tool binaries (`feral-sim`,
//! `feral-lint`, `feral-sdg`, `commitbench`, and the `feral-bench`
//! experiment binaries): a minimal `--flag value` parser, the common
//! exit-code conventions, isolation-level parsing, and `--out` output
//! routing. Each binary keeps its own subcommands and semantics; only
//! the previously copy-pasted surface lives here.
//!
//! Exit-code convention: `0` success, [`EXIT_DEVIATION`] (`1`) for "ran
//! fine but the result deviates" (an anomaly found, a validation
//! failure, a gate missed), [`EXIT_USAGE`] (`2`) for usage errors.

#![warn(missing_docs)]

pub mod report;

use feral_db::IsolationLevel;
use std::collections::HashMap;

/// Exit code for "the tool ran, but the result deviates" (anomaly
/// found, validation failed, gate missed).
pub const EXIT_DEVIATION: u8 = 1;

/// Exit code for usage errors (unknown flag value, missing argument).
pub const EXIT_USAGE: u8 = 2;

/// Print `tool: msg` to stderr and exit with [`EXIT_USAGE`].
pub fn die(tool: &str, msg: &str) -> ! {
    eprintln!("{tool}: {msg}");
    std::process::exit(EXIT_USAGE as i32)
}

/// Parse an isolation-level name (`read-committed`, `repeatable-read`,
/// `snapshot`, `serializable`), dying with a usage error otherwise.
pub fn parse_isolation(tool: &str, s: &str) -> IsolationLevel {
    IsolationLevel::parse(s).unwrap_or_else(|| die(tool, &format!("unknown isolation `{s}`")))
}

/// Parse a comma-separated pair of isolation-level names
/// (`snapshot,serializable`) — the `--levels` spelling for
/// mixed-isolation runs, one level per template slot. Dies with a usage
/// error unless exactly two valid names are given.
pub fn parse_levels(tool: &str, s: &str) -> [IsolationLevel; 2] {
    let parts: Vec<&str> = s.split(',').map(str::trim).collect();
    if parts.len() != 2 {
        die(
            tool,
            &format!("--levels wants exactly two comma-separated levels, got `{s}`"),
        );
    }
    [
        parse_isolation(tool, parts[0]),
        parse_isolation(tool, parts[1]),
    ]
}

/// Route rendered output: write to `path` when given (reporting the
/// destination on stderr), print to stdout otherwise.
pub fn write_out(tool: &str, path: Option<&str>, rendered: &str) {
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered) {
                die(tool, &format!("cannot write {path}: {e}"));
            }
            eprintln!("{tool}: wrote {path}");
        }
        None => print!("{rendered}"),
    }
}

/// The standard flags every tool binary accepts, rendered as the
/// closing block of its `--help` text. Binaries that hand-roll their
/// argument parsing (dependency cycles) must reproduce this block
/// verbatim; the per-crate `cli_help` integration tests pin it.
pub const STANDARD_FLAGS: &str = "\
Standard flags:
  --json            emit machine-readable JSON
  --out PATH        write the artifact to PATH instead of stdout
  --validate        self-validate the artifact and exit nonzero on schema drift
  --smoke           small fast run for CI gates (subset of --full)
  --help            this text
";

/// Render a tool's `--help` text in the house format: a one-line
/// summary, a usage block, tool-specific options, then the
/// [`STANDARD_FLAGS`] block shared by every binary.
pub fn render_help(tool: &str, about: &str, usage: &str, options: &str) -> String {
    let mut out = format!("{tool} — {about}\n\nUsage:\n{usage}");
    if !options.is_empty() {
        out.push_str("\nOptions:\n");
        out.push_str(options);
    }
    out.push('\n');
    out.push_str(STANDARD_FLAGS);
    out
}

/// Minimal `--flag value` argument parser shared by every tool binary.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse `std::env::args()` (skipping the program name). `--key value`
    /// populates a flag, a bare `--key` a switch.
    pub fn from_env() -> Args {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an iterator (testable).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let items: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < items.len() {
            let a = &items[i];
            if let Some(key) = a.strip_prefix("--") {
                match items.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        out.flags.insert(key.to_string(), v.clone());
                        i += 2;
                    }
                    _ => {
                        out.switches.push(key.to_string());
                        i += 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        out
    }

    /// A numeric flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A u64 flag with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string flag.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// Whether a bare switch was passed.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_text_carries_the_standard_block() {
        let text = render_help(
            "feral-x",
            "does x",
            "  feral-x run [--n N]\n",
            "  --n N    how many\n",
        );
        assert!(text.starts_with("feral-x — does x"));
        assert!(text.contains("Usage:\n  feral-x run"));
        assert!(text.contains("Options:\n  --n N"));
        assert!(text.ends_with(STANDARD_FLAGS));
        // no options block when there are no tool-specific options
        let bare = render_help("feral-y", "does y", "  feral-y\n", "");
        assert!(!bare.contains("Options:"));
        assert!(bare.ends_with(STANDARD_FLAGS));
    }

    #[test]
    fn args_parse_flags_and_switches() {
        let a = Args::from_iter(
            ["--workers", "8", "--full", "--dist", "ycsb"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(a.get_usize("workers", 1), 8);
        assert!(a.has("full"));
        assert_eq!(a.get_str("dist"), Some("ycsb"));
        assert_eq!(a.get_usize("missing", 7), 7);
    }

    #[test]
    fn switch_followed_by_flag_stays_a_switch() {
        let a = Args::from_iter(
            ["--validate", "--seeds", "100", "--json"]
                .into_iter()
                .map(String::from),
        );
        assert!(a.has("validate"));
        assert!(a.has("json"));
        assert_eq!(a.get_u64("seeds", 0), 100);
    }

    #[test]
    fn levels_parse_as_a_pair() {
        let pair = parse_levels("test", "snapshot, serializable");
        assert_eq!(
            pair,
            [IsolationLevel::Snapshot, IsolationLevel::Serializable]
        );
    }

    #[test]
    fn isolation_names_parse() {
        let cases = [
            ("read-committed", IsolationLevel::ReadCommitted),
            ("repeatable-read", IsolationLevel::RepeatableRead),
            ("snapshot", IsolationLevel::Snapshot),
            ("serializable", IsolationLevel::Serializable),
        ];
        for (name, iso) in cases {
            assert_eq!(parse_isolation("test", name), iso);
        }
    }
}
