//! Dynamic partial-order reduction (DPOR) over the deterministic
//! scheduler, in the stateless-model-checking style of Flanagan &
//! Godefroid, with sleep sets and an optional sdg-directed search bias.
//!
//! ## How it relates to [`explore_systematic`]
//!
//! `explore_systematic` forks on *every* untried alternative at every
//! branch point — the full schedule tree. `explore_dpor` re-executes
//! choice prefixes the same way, but only forks where the executed trace
//! exhibits a *race*: two steps of different workers, dependent under
//! the active isolation level's commutativity relation, with no
//! intervening happens-before path. Schedules that merely permute
//! independent steps are Mazurkiewicz-equivalent — same per-worker
//! observations, same oracle verdict — and are pruned.
//!
//! ## The independence relation
//!
//! Each trace step carries the [`Access`] footprint its code segment
//! reported via `feral_hooks::note_access` (table reads/writes, lock
//! acquires/releases, clock ticks). Two steps are dependent when their
//! footprints conflict on a shared resource, where conflict is
//! isolation-aware: a snapshot-fixed read commutes with a concurrent
//! install exactly when the level redirects write-read conflicts to the
//! snapshot (`IsolationLevel::admits_concurrent`), writes never commute
//! with writes (order is observable at every level the stack models),
//! and clock ticks commute with each other but not with clock reads.
//! Steps at sites whose effects are not access-instrumented (appserver
//! dispatch/handle, channel waits, OS-block boundaries) are treated as
//! globally dependent — sound, at the cost of no reduction across them.
//!
//! ## Equivalence accounting
//!
//! Every executed schedule is canonicalized to its Mazurkiewicz class
//! key (the lexicographically minimal linear extension of its
//! happens-before poset); the class's size — the number of full-DFS
//! schedules it stands for — is counted exactly by dynamic programming
//! over per-worker progress vectors when the run is clean (no waits, no
//! deadlocks, no truncation), which is what makes
//! `schedules_explored − redundant_runs + schedules_pruned` equal the
//! exhaustive-DFS schedule count on clean scenarios (property-tested).
//!
//! [`explore_systematic`]: crate::explore_systematic
//! [`Access`]: feral_hooks::Access

use std::collections::{HashMap, HashSet, VecDeque};

use feral_db::{ConflictKind, IsolationLevel};
use feral_hooks::{fnv64, Access, AccessMode};

use crate::explore::{run_with_chooser, Trial, Violation};
use crate::scheduler::{Chooser, SearchStats, TraceStep};

/// Step labels whose effects are fully described by their access
/// footprint. Anything else (appserver dispatch/handle, channel waits,
/// OS-block boundaries, labels added later) is conservatively treated as
/// dependent with every other step.
const LOCAL_LABELS: &[&str] = &[
    "start",
    "begin",
    "scan",
    "select_for_update",
    "write",
    "commit",
    "validate-write-gap",
    "lock-wait",
];

/// Bias for the directed strategy: backtrack points whose racing steps
/// touch one of these tables are explored first. Derived from a
/// feral-sdg realizable-cycle report (the tables on the predicted
/// dependency cycle) or from a scenario's own table set.
#[derive(Debug, Clone, Default)]
pub struct DirectionHint {
    /// Table names on the predicted critical cycle.
    pub tables: Vec<String>,
}

impl DirectionHint {
    /// Hint biased toward `tables`.
    pub fn for_tables<S: Into<String>>(tables: impl IntoIterator<Item = S>) -> Self {
        DirectionHint {
            tables: tables.into_iter().map(Into::into).collect(),
        }
    }

    fn hashes(&self) -> HashSet<u64> {
        self.tables.iter().map(|t| fnv64(t.as_bytes())).collect()
    }
}

/// Configuration for [`explore_dpor`].
#[derive(Debug, Clone)]
pub struct DporConfig {
    /// Stop (incomplete) after this many executed schedules.
    pub max_runs: usize,
    /// Isolation level the scenario's transactions run at, consulted for
    /// the commutativity relation. When a scenario mixes levels, pass
    /// [`IsolationLevel::ReadCommitted`] — it admits every conflict
    /// concurrently, which only adds dependence edges (sound).
    pub isolation: IsolationLevel,
    /// Directed-search bias; `None` explores in plain DFS order.
    pub hint: Option<DirectionHint>,
}

impl DporConfig {
    /// Plain DPOR at `isolation` with the given run budget.
    pub fn new(max_runs: usize, isolation: IsolationLevel) -> Self {
        DporConfig {
            max_runs,
            isolation,
            hint: None,
        }
    }

    /// Add a directed-search bias.
    pub fn directed(mut self, hint: DirectionHint) -> Self {
        self.hint = Some(hint);
        self
    }

    /// The strategy name recorded in violations found by this config.
    pub fn strategy(&self) -> &'static str {
        if self.hint.is_some() {
            "directed-dpor"
        } else {
            "dpor"
        }
    }
}

/// Outcome of [`explore_dpor`].
#[derive(Debug)]
pub struct DporExploration {
    /// Schedules executed (same meaning as
    /// [`SystematicExploration::runs`](crate::SystematicExploration)).
    pub runs: usize,
    /// Whether the reduced schedule space was covered (false when
    /// `max_runs` stopped the search early, a run hit the step cap, or a
    /// violation stopped it).
    pub complete: bool,
    /// First schedule on which the oracle fired, if any.
    pub violation: Option<Violation>,
    /// Exploration/pruning counters.
    pub stats: SearchStats,
}

// ---------------------------------------------------------------------
// Independence relation
// ---------------------------------------------------------------------

fn modes_conflict(a: AccessMode, b: AccessMode, iso: IsolationLevel) -> bool {
    use AccessMode::*;
    match (a, b) {
        // lock-table traffic: shared/shared commutes, anything else not
        (LockShared, LockShared) => false,
        (LockShared | LockExcl, _) | (_, LockShared | LockExcl) => true,
        // plain reads commute with each other
        (Read | SnapshotRead, Read | SnapshotRead) => false,
        // clock ticks commute with each other but not with observers
        (Incr, Incr) => false,
        // a snapshot-fixed read observes a concurrent install only where
        // the level admits the write-read conflict concurrently (Read
        // Committed — which emits `Read`, never `SnapshotRead`; the
        // predicate keeps mixed-isolation workloads conservative)
        (SnapshotRead, Write | Incr) | (Write | Incr, SnapshotRead) => {
            iso.admits_concurrent(ConflictKind::WriteRead)
        }
        // committed-latest reads see or miss a write depending on order
        (Read, Write | Incr) | (Write | Incr, Read) => true,
        // write/write order is observable at every level: last-writer-
        // wins picks a winner, first-updater-wins picks a victim
        (Write, Write | Incr) | (Incr, Write) => true,
    }
}

/// Per-step dependence footprint.
#[derive(Debug, Clone)]
struct Footprint {
    /// Step at a non-instrumented site: dependent with everything.
    global: bool,
    accesses: Vec<Access>,
}

impl Footprint {
    fn of(step: &TraceStep) -> Footprint {
        Footprint {
            global: !LOCAL_LABELS.contains(&step.label),
            accesses: step.accesses.clone(),
        }
    }

    fn conflicts(&self, other: &Footprint, iso: IsolationLevel) -> bool {
        if self.global || other.global {
            return true;
        }
        self.accesses.iter().any(|x| {
            other.accesses.iter().any(|y| {
                x.space == y.space && x.what == y.what && modes_conflict(x.mode, y.mode, iso)
            })
        })
    }

    fn hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(1 + self.accesses.len() * 18);
        bytes.push(u8::from(self.global));
        for a in &self.accesses {
            bytes.extend_from_slice(a.space.as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(&a.what.to_le_bytes());
            bytes.push(a.mode as u8);
        }
        fnv64(&bytes)
    }

    fn touches_table(&self, tables: &HashSet<u64>) -> bool {
        self.accesses
            .iter()
            .any(|a| a.space == "table" && tables.contains(&a.what))
    }
}

// ---------------------------------------------------------------------
// The sleep-aware schedule chooser
// ---------------------------------------------------------------------

/// Scripted prefix, then a *sleep-aware* tail: beyond the prefix, pick
/// the first candidate whose next step is not already covered by an
/// earlier sibling subtree. A blind candidate-0 tail (plain
/// [`ScriptChooser`](crate::scheduler::ScriptChooser)) re-executes
/// covered Mazurkiewicz classes so often that larger scenarios never
/// converge — at 4 workers the uniqueness scenario burns >98% of a
/// 200k-run budget on redundant schedules. Steering the tail around
/// sleeping workers makes executed runs track distinct classes instead.
///
/// The sleeper set starts as the driver's sleep set at the deepest
/// scripted branch (`inherited ∪ done` of that node) and is maintained
/// exactly like the driver's own walk: an executed step wakes every
/// sleeper whose pending step conflicts with it, and removes a sleeper
/// that ran anyway (only possible when every candidate slept).
struct SleepTailChooser {
    prefix: Vec<usize>,
    pos: usize,
    /// Trace index of the step produced by the last scripted choice;
    /// earlier steps are already reflected in the initial sleeper set.
    start: usize,
    /// Steps of `trace` digested into the sleeper set so far.
    processed: usize,
    sleepers: Vec<(usize, Footprint)>,
    iso: IsolationLevel,
}

impl SleepTailChooser {
    fn new(
        prefix: Vec<usize>,
        start: usize,
        sleepers: Vec<(usize, Footprint)>,
        iso: IsolationLevel,
    ) -> Self {
        SleepTailChooser {
            prefix,
            pos: 0,
            start,
            processed: 0,
            sleepers,
            iso,
        }
    }
}

impl Chooser for SleepTailChooser {
    fn choose(&mut self, arity: usize) -> usize {
        // context-free fallback (never hit via the scheduler, which
        // calls `choose_step`): behave like a plain script replay
        let c = if self.pos < self.prefix.len() {
            self.prefix[self.pos]
        } else {
            0
        };
        self.pos += 1;
        c.min(arity - 1)
    }

    fn choose_step(&mut self, candidates: &[usize], trace: &[TraceStep]) -> usize {
        // digest segments completed since the last decision
        while self.processed < trace.len() {
            let idx = self.processed;
            self.processed += 1;
            if idx < self.start {
                continue;
            }
            let step = &trace[idx];
            let f = Footprint::of(step);
            if let Some(pos) = self.sleepers.iter().position(|(w, _)| *w == step.worker) {
                self.sleepers.swap_remove(pos);
            }
            self.sleepers.retain(|(_, sf)| !sf.conflicts(&f, self.iso));
        }
        if self.pos < self.prefix.len() {
            let c = self.prefix[self.pos];
            self.pos += 1;
            // a stale prefix (from an edited scenario) clamps, as in
            // `ScriptChooser`
            return c.min(candidates.len() - 1);
        }
        self.pos += 1;
        candidates
            .iter()
            .position(|w| !self.sleepers.iter().any(|(s, _)| s == w))
            // every candidate asleep: the whole subtree is covered, and
            // the run will dedup as redundant whatever we pick
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// Happens-before over one executed trace
// ---------------------------------------------------------------------

/// The trace, annotated: per-step footprints, dense worker numbering,
/// and a vector clock per step (`clock[i][w]` = number of worker `w`'s
/// steps happens-before-or-equal step `i`).
struct Analysis {
    footprints: Vec<Footprint>,
    /// Dense worker index per step.
    widx: Vec<usize>,
    /// Per-worker step counts.
    counts: Vec<usize>,
    clocks: Vec<Vec<usize>>,
}

impl Analysis {
    fn of(trace: &[TraceStep], iso: IsolationLevel) -> Analysis {
        let footprints: Vec<Footprint> = trace.iter().map(Footprint::of).collect();
        let mut worker_ids: Vec<usize> = Vec::new();
        let widx: Vec<usize> = trace
            .iter()
            .map(|s| match worker_ids.iter().position(|&w| w == s.worker) {
                Some(i) => i,
                None => {
                    worker_ids.push(s.worker);
                    worker_ids.len() - 1
                }
            })
            .collect();
        let nworkers = worker_ids.len();
        let mut counts = vec![0usize; nworkers];
        let mut last_of_worker: Vec<Option<usize>> = vec![None; nworkers];
        let mut clocks: Vec<Vec<usize>> = Vec::with_capacity(trace.len());
        for i in 0..trace.len() {
            let w = widx[i];
            let mut c = match last_of_worker[w] {
                Some(j) => clocks[j].clone(),
                None => vec![0; nworkers],
            };
            for j in (0..i).rev() {
                // skip if j is already fully inside c's past
                if c[widx[j]] >= clocks[j][widx[j]] {
                    continue;
                }
                if footprints[j].conflicts(&footprints[i], iso) {
                    for (a, b) in c.iter_mut().zip(&clocks[j]) {
                        *a = (*a).max(*b);
                    }
                }
            }
            c[w] += 1;
            counts[w] += 1;
            last_of_worker[w] = Some(i);
            clocks.push(c);
        }
        Analysis {
            footprints,
            widx,
            counts,
            clocks,
        }
    }

    /// Whether step `j` happens-before step `i` (`j < i`).
    fn hb(&self, j: usize, i: usize) -> bool {
        self.clocks[i][self.widx[j]] >= self.clocks[j][self.widx[j]]
    }

    /// Races to try reversing: pairs `(i, j)`, `i < j`, of dependent
    /// steps of different workers with no intervening happens-before
    /// path — the "immediate" races of trace-based DPOR.
    fn races(&self, iso: IsolationLevel) -> Vec<(usize, usize)> {
        let n = self.footprints.len();
        let mut out = Vec::new();
        for j in 0..n {
            // for each other worker, only the *last* dependent step
            // before j can be in an immediate race with it
            let mut last_dep: HashMap<usize, usize> = HashMap::new();
            for i in 0..j {
                if self.widx[i] != self.widx[j]
                    && self.footprints[i].conflicts(&self.footprints[j], iso)
                {
                    last_dep.insert(self.widx[i], i);
                }
            }
            'cand: for &i in last_dep.values() {
                for k in i + 1..j {
                    if self.hb(i, k) && self.hb(k, j) {
                        continue 'cand; // ordered through an intermediary
                    }
                }
                out.push((i, j));
            }
        }
        out.sort_unstable();
        out
    }
}

// ---------------------------------------------------------------------
// Mazurkiewicz class canonicalization and counting
// ---------------------------------------------------------------------

/// Upper bound on DP states when counting a class's linear extensions.
const CLASS_DP_CAP: usize = 1 << 20;

/// Canonical key of the run's equivalence class: the lexicographically
/// minimal linear extension of its happens-before poset, with events
/// identified by `(worker, per-worker seq, footprint hash)` so distinct
/// behaviors never collide.
fn class_key(a: &Analysis) -> Vec<(usize, usize, u64)> {
    let nworkers = a.counts.len();
    // trace indices per worker, in program order
    let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); nworkers];
    for (i, &w) in a.widx.iter().enumerate() {
        per_worker[w].push(i);
    }
    let mut consumed = vec![0usize; nworkers];
    let mut key = Vec::with_capacity(a.widx.len());
    for _ in 0..a.widx.len() {
        let w = (0..nworkers)
            .find(|&w| {
                consumed[w] < a.counts[w] && {
                    let t = per_worker[w][consumed[w]];
                    (0..nworkers).all(|v| v == w || a.clocks[t][v] <= consumed[v])
                }
            })
            .expect("a partial order always has an available minimal event");
        let t = per_worker[w][consumed[w]];
        key.push((w, consumed[w] + 1, a.footprints[t].hash()));
        consumed[w] += 1;
    }
    key
}

/// Number of linear extensions of the run's happens-before poset — the
/// number of full-DFS schedules this class stands for. `None` when the
/// DP would exceed [`CLASS_DP_CAP`] states.
fn class_size(a: &Analysis) -> Option<u64> {
    let nworkers = a.counts.len();
    if a.counts.iter().any(|&c| c > u16::MAX as usize) {
        return None;
    }
    let mut states: usize = 1;
    for &c in &a.counts {
        states = states.saturating_mul(c + 1);
        if states > CLASS_DP_CAP {
            return None;
        }
    }
    let mut per_worker: Vec<Vec<usize>> = vec![Vec::new(); nworkers];
    for (i, &w) in a.widx.iter().enumerate() {
        per_worker[w].push(i);
    }
    fn go(
        consumed: &mut Vec<u16>,
        remaining: usize,
        a: &Analysis,
        per_worker: &[Vec<usize>],
        memo: &mut HashMap<Vec<u16>, u64>,
    ) -> u64 {
        if remaining == 0 {
            return 1;
        }
        if let Some(&v) = memo.get(consumed) {
            return v;
        }
        let mut total: u64 = 0;
        for w in 0..a.counts.len() {
            let c = consumed[w] as usize;
            if c >= a.counts[w] {
                continue;
            }
            let t = per_worker[w][c];
            let ready =
                (0..a.counts.len()).all(|v| v == w || a.clocks[t][v] <= consumed[v] as usize);
            if ready {
                consumed[w] += 1;
                total = total.saturating_add(go(consumed, remaining - 1, a, per_worker, memo));
                consumed[w] -= 1;
            }
        }
        memo.insert(consumed.clone(), total);
        total
    }
    let mut memo = HashMap::new();
    let mut consumed = vec![0u16; nworkers];
    let total = go(&mut consumed, a.widx.len(), a, &per_worker, &mut memo);
    Some(total)
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

/// One branch point on the current exploration path.
struct Node {
    /// Trace index of the decision in every run through this prefix.
    trace_idx: usize,
    /// Schedulable workers at the decision (ascending worker ids).
    candidates: Vec<usize>,
    /// Workers already explored here, in order, with the footprint of
    /// the step each took.
    done: Vec<(usize, Footprint)>,
    /// Backtrack set: workers still to explore (hinted ones in front).
    pending: VecDeque<usize>,
    /// Sleep set on arrival: workers whose next step is already covered
    /// by an earlier sibling subtree, with that step's footprint.
    inherited: Vec<(usize, Footprint)>,
}

impl Node {
    fn scheduled(&self, w: usize) -> bool {
        self.done.iter().any(|(d, _)| *d == w) || self.pending.contains(&w)
    }
}

/// Explore the trial's schedule space with dynamic partial-order
/// reduction (plus sleep sets, plus the optional directed bias). Stops
/// at the first schedule whose oracle fires, like
/// [`explore_systematic`](crate::explore_systematic).
pub fn explore_dpor(mut factory: impl FnMut() -> Trial, config: &DporConfig) -> DporExploration {
    let iso = config.isolation;
    let hint_tables = config.hint.as_ref().map(DirectionHint::hashes);
    let mut path: Vec<Node> = Vec::new();
    let mut prefix: Vec<usize> = Vec::new();
    // sleep state handed to the next run's tail chooser: the driver's
    // sleep set at the deepest scripted branch, and the trace index from
    // which the chooser maintains it
    let mut tail_start: usize = 0;
    let mut tail_sleep: Vec<(usize, Footprint)> = Vec::new();
    let mut stats = SearchStats::default();
    let mut seen_classes: HashSet<Vec<(usize, usize, u64)>> = HashSet::new();
    let mut distinct_classes: usize = 0;
    let mut runs = 0usize;
    let mut complete = true;

    loop {
        if runs >= config.max_runs {
            complete = false;
            break;
        }
        let chooser = SleepTailChooser::new(prefix.clone(), tail_start, tail_sleep.clone(), iso);
        let (run, verdict) = run_with_chooser(factory(), Box::new(chooser));
        runs += 1;
        if run.truncated {
            complete = false;
            stats.pruned_exact = false;
        }
        if let Err(message) = verdict {
            stats.schedules_explored = runs;
            stats.redundant_runs = runs.saturating_sub(distinct_classes + 1);
            let mut run = run;
            run.search = Some(stats.clone());
            return DporExploration {
                runs,
                complete: false,
                violation: Some(Violation {
                    seed: None,
                    choices: run.choices(),
                    message,
                    strategy: config.strategy(),
                    run,
                }),
                stats,
            };
        }

        let analysis = Analysis::of(&run.trace, iso);
        let branch_steps: Vec<usize> = run
            .trace
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.deadlock && s.candidates.len() >= 2)
            .map(|(i, _)| i)
            .collect();
        debug_assert!(path
            .iter()
            .zip(&branch_steps)
            .all(|(n, &t)| n.trace_idx == t));

        // a wait, deadlock, or truncation means some linear extensions
        // of this run's poset are not schedulable 1:1, so class sizes no
        // longer equal schedule counts exactly
        let clean = !run.truncated
            && run.deadlocks == 0
            && run
                .trace
                .iter()
                .all(|s| !s.label.ends_with("-wait") && s.label != "os-resume");
        if !clean {
            stats.pruned_exact = false;
        }

        // --- sleep-set walk: extend the path, compute inherited sleep
        // sets for new nodes, detect redundant execution ---------------
        {
            let mut active: Vec<(usize, Footprint)> = Vec::new();
            let mut depth = 0usize;
            for (t, step) in run.trace.iter().enumerate() {
                if depth < branch_steps.len() && branch_steps[depth] == t {
                    if depth >= path.len() {
                        path.push(Node {
                            trace_idx: t,
                            candidates: step.candidates.clone(),
                            done: Vec::new(),
                            pending: VecDeque::new(),
                            inherited: active.clone(),
                        });
                    }
                    let node = &mut path[depth];
                    // record this run's choice as explored at this node
                    if node.done.last().map(|(w, _)| *w) != Some(step.worker) {
                        node.done
                            .push((step.worker, analysis.footprints[t].clone()));
                    }
                    // sleepers below = (inherited ∪ earlier siblings)
                    // that commute with the chosen step
                    active = node
                        .inherited
                        .iter()
                        .chain(&node.done[..node.done.len() - 1])
                        .cloned()
                        .collect();
                    depth += 1;
                }
                let f = &analysis.footprints[t];
                if let Some(pos) = active.iter().position(|(w, _)| *w == step.worker) {
                    // executed a sleeping transition (the sleep-aware
                    // tail only does this when every candidate slept):
                    // the schedule duplicates an already-counted class —
                    // caught by the class-key dedup below
                    active.swap_remove(pos);
                }
                active.retain(|(_, sf)| !sf.conflicts(f, iso));
            }
        }

        // --- Mazurkiewicz accounting ----------------------------------
        if clean {
            if seen_classes.insert(class_key(&analysis)) {
                distinct_classes += 1;
                match class_size(&analysis) {
                    Some(size) => {
                        stats.schedules_pruned = stats
                            .schedules_pruned
                            .saturating_add(size.saturating_sub(1));
                    }
                    None => stats.pruned_exact = false,
                }
            }
        } else {
            distinct_classes += 1;
        }

        // --- race reversal: fill backtrack sets -----------------------
        for (i, j) in analysis.races(iso) {
            let Some(depth) = branch_steps.iter().position(|&t| t == i) else {
                // forced move (arity 1): nothing else was schedulable
                // there; Flanagan–Godefroid adds all enabled, a no-op
                continue;
            };
            let mut targets: HashSet<usize> = HashSet::new();
            targets.insert(run.trace[j].worker);
            for k in i + 1..j {
                if analysis.hb(k, j) {
                    targets.insert(run.trace[k].worker);
                }
            }
            let node = &mut path[depth];
            let eligible: Vec<usize> = node
                .candidates
                .iter()
                .copied()
                .filter(|w| targets.contains(w))
                .collect();
            let to_add = if eligible.is_empty() {
                // the alternative is not directly schedulable here: fall
                // back to the sound persistent-set choice (everything)
                node.candidates.clone()
            } else {
                eligible
            };
            let hot = hint_tables.as_ref().is_some_and(|tables| {
                analysis.footprints[i].touches_table(tables)
                    || analysis.footprints[j].touches_table(tables)
            });
            for w in to_add {
                if !node.scheduled(w) {
                    if hot {
                        node.pending.push_front(w);
                    } else {
                        node.pending.push_back(w);
                    }
                }
            }
        }

        // --- DFS: deepest node with an unexplored, non-sleeping
        // backtrack choice becomes the next prefix ---------------------
        let mut next: Option<(usize, usize)> = None;
        'search: for depth in (0..path.len()).rev() {
            while let Some(w) = path[depth].pending.pop_front() {
                if path[depth].inherited.iter().any(|(s, _)| *s == w) {
                    // covered by an earlier sibling subtree
                    stats.sleep_set_blocked += 1;
                    continue;
                }
                next = Some((depth, w));
                break 'search;
            }
        }
        match next {
            Some((depth, w)) => {
                path.truncate(depth + 1);
                prefix.clear();
                for node in &path[..depth] {
                    let (chosen, _) = node.done.last().expect("explored node has a chosen child");
                    let idx = node
                        .candidates
                        .iter()
                        .position(|c| c == chosen)
                        .expect("chosen child is a candidate");
                    prefix.push(idx);
                }
                let idx = path[depth]
                    .candidates
                    .iter()
                    .position(|c| *c == w)
                    .expect("backtrack choice is a candidate");
                prefix.push(idx);
                // the next run's unscripted tail starts asleep on
                // everything already covered at this node
                let node = &path[depth];
                tail_start = node.trace_idx;
                tail_sleep = node.inherited.iter().chain(&node.done).cloned().collect();
            }
            None => break,
        }
    }

    stats.schedules_explored = runs;
    stats.redundant_runs = runs.saturating_sub(distinct_classes);
    DporExploration {
        runs,
        complete,
        violation: None,
        stats,
    }
}
