//! The deterministic cooperative scheduler.
//!
//! Exactly one logical worker runs between yield points. Every other
//! worker is parked on a condition variable waiting for the scheduler to
//! hand it the *turn*. When the running worker reaches a yield point (or
//! a wait, or finishes), the next worker is chosen by a [`Chooser`] —
//! seeded-random or scripted — and that choice is the *only* source of
//! nondeterminism in a simulated run. Replaying the same choices replays
//! the same execution byte for byte, provided the scenario itself is
//! deterministic (no wall-clock control flow, no unseeded RNG, no OS
//! blocking outside [`feral_hooks::blocking`]).
//!
//! ## Waiting and deadlock
//!
//! A worker that parks via [`feral_hooks::wait`] (lock unavailable,
//! channel empty) records the current *progress generation*. It becomes
//! schedulable again once [`feral_hooks::progress`] advances the
//! generation (someone released a lock / sent a message). If no worker is
//! runnable and every parked worker is a stale waiter, the schedule has
//! deadlocked: the waiter with the lowest id is granted
//! [`WaitOutcome::TimedOut`], which instrumented code translates into its
//! bounded-wait error (e.g. [`feral_db::DbError::LockTimeout`]). The
//! victim choice is fixed — not a branch point — so systematic
//! exploration does not fork on deadlock resolution.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use feral_hooks::{Access, Registration, ScheduleHook, Site, WaitKind, WaitOutcome};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Upper bound on scheduling steps per run, guarding against runaway
/// schedules; hitting it marks the run [`RunResult::truncated`].
pub const DEFAULT_MAX_STEPS: usize = 200_000;

/// Picks which candidate worker runs next at a branch point
/// (`arity >= 2`; forced moves never consult the chooser).
pub trait Chooser: Send {
    /// Return an index in `0..arity`.
    fn choose(&mut self, arity: usize) -> usize;

    /// Context-aware variant the scheduler actually calls: `candidates`
    /// are the schedulable worker ids (ascending) and `trace` is every
    /// step granted so far — the last step's access footprint is
    /// complete by the time the next decision is made. The default
    /// ignores the context and delegates to [`choose`](Self::choose);
    /// reduction-guided choosers (the DPOR sleep-aware tail) override
    /// it to steer unscripted suffixes away from already-covered
    /// subtrees.
    fn choose_step(&mut self, candidates: &[usize], trace: &[TraceStep]) -> usize {
        let _ = trace;
        self.choose(candidates.len())
    }
}

/// Seeded-random schedule choice (the search mode).
pub struct RandomChooser {
    rng: StdRng,
}

impl RandomChooser {
    /// Chooser for `seed`; the same seed yields the same schedule.
    pub fn new(seed: u64) -> Self {
        RandomChooser {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Chooser for RandomChooser {
    fn choose(&mut self, arity: usize) -> usize {
        self.rng.random_range(0..arity)
    }
}

/// Scripted schedule choice (replay / systematic exploration): follows
/// `prefix`, then always picks candidate 0.
pub struct ScriptChooser {
    prefix: Vec<usize>,
    pos: usize,
}

impl ScriptChooser {
    /// Chooser replaying `prefix` then defaulting to the first candidate.
    pub fn new(prefix: Vec<usize>) -> Self {
        ScriptChooser { prefix, pos: 0 }
    }
}

impl Chooser for ScriptChooser {
    fn choose(&mut self, arity: usize) -> usize {
        let c = if self.pos < self.prefix.len() {
            self.prefix[self.pos]
        } else {
            0
        };
        self.pos += 1;
        // a stale prefix (from an edited scenario) clamps rather than panics
        c.min(arity - 1)
    }
}

/// One scheduling decision, as recorded in the run trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Worker granted the turn.
    pub worker: usize,
    /// Why the worker was parked (`Site::name` / `WaitKind::name`).
    pub label: &'static str,
    /// Workers that were schedulable at this step, ascending.
    pub candidates: Vec<usize>,
    /// Index into `candidates` that was granted.
    pub chosen: usize,
    /// Whether this grant was a deadlock-victim `TimedOut`.
    pub deadlock: bool,
    /// Shared-resource touches reported by instrumented code while this
    /// grant's segment ran (between this decision and the next). The
    /// footprint partial-order-reduction computes happens-before from.
    pub accesses: Vec<Access>,
}

/// Exploration counters attached to runs found by a reducing search
/// (see `feral_sim::explore_dpor`): how much of the schedule space was
/// executed versus proven equivalent and skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchStats {
    /// Schedules actually executed.
    pub schedules_explored: usize,
    /// Schedules proven Mazurkiewicz-equivalent to an executed one and
    /// skipped (sum over explored classes of `class size − 1`).
    pub schedules_pruned: u64,
    /// Whether `schedules_pruned` is an exact count. False when a run
    /// waited, deadlocked, was truncated, or a class was too large to
    /// count — the pruned figure is then a lower bound.
    pub pruned_exact: bool,
    /// Backtrack candidates skipped because their next step was already
    /// covered by an earlier sibling subtree (sleep sets).
    pub sleep_set_blocked: usize,
    /// Executed runs whose equivalence class had already been explored.
    /// The sleep-aware tail keeps these rare (it only re-enters a
    /// covered class when every schedulable worker is asleep).
    pub redundant_runs: usize,
}

impl Default for SearchStats {
    fn default() -> Self {
        SearchStats {
            schedules_explored: 0,
            schedules_pruned: 0,
            pruned_exact: true,
            sleep_set_blocked: 0,
            redundant_runs: 0,
        }
    }
}

/// Everything observable about one simulated run's schedule.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Every grant, in order.
    pub trace: Vec<TraceStep>,
    /// `(choice, arity)` at each branch point (arity >= 2), in order.
    /// The choice column replayed through [`ScriptChooser`] reproduces
    /// this exact run.
    pub branches: Vec<(usize, usize)>,
    /// Deadlock-victim grants issued.
    pub deadlocks: usize,
    /// Whether the step cap was hit (run degenerated to free-running
    /// threads; treat its observations as unreliable).
    pub truncated: bool,
    /// Counters of the search that produced this run, when it came from
    /// a reducing explorer (`None` for plain runs).
    pub search: Option<SearchStats>,
}

impl RunResult {
    /// The branch choices alone — the replay script for
    /// [`ScriptChooser`].
    pub fn choices(&self) -> Vec<usize> {
        self.branches.iter().map(|(c, _)| *c).collect()
    }

    /// Human-readable schedule trace.
    pub fn trace_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, s) in self.trace.iter().enumerate() {
            let cands: Vec<String> = s.candidates.iter().map(|w| format!("w{w}")).collect();
            let _ = writeln!(
                out,
                "step {i:>4}: w{} @ {:<18} [{}]{}",
                s.worker,
                s.label,
                cands.join(" "),
                if s.deadlock {
                    "  << deadlock victim"
                } else {
                    ""
                },
            );
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked at a yield point or wait; `waiting` holds the progress
    /// generation observed at park time for waits, `None` for yields.
    Parked { waiting: Option<u64> },
    /// Holds (or is about to take) the turn.
    Running,
    /// Inside `feral_hooks::blocking` — holds no turn, schedulable later.
    OsBlocked,
    /// Thread exited.
    Finished,
}

struct Slot {
    status: Status,
    label: &'static str,
    daemon: bool,
    grant: Option<WaitOutcome>,
}

struct State {
    slots: Vec<Slot>,
    turn: Option<usize>,
    gen: u64,
    chooser: Box<dyn Chooser>,
    max_steps: usize,
    /// Set once every non-daemon worker has finished (or the step cap was
    /// hit): parks return immediately and waits time out, so leftover
    /// daemon threads (e.g. idle appserver workers) unwind cleanly.
    free_run: bool,
    result: RunResult,
}

impl State {
    fn schedule_next(&mut self, cv: &Condvar) {
        if self.free_run {
            self.turn = None;
            cv.notify_all();
            return;
        }
        if self.result.trace.len() >= self.max_steps {
            self.result.truncated = true;
            self.free_run = true;
            self.turn = None;
            cv.notify_all();
            return;
        }
        let mut candidates = Vec::new();
        let mut stale_waiters = Vec::new();
        let mut has_os_blocked = false;
        for (w, slot) in self.slots.iter().enumerate() {
            match slot.status {
                Status::Parked { waiting: None } => candidates.push(w),
                Status::Parked { waiting: Some(g) } => {
                    if g < self.gen {
                        candidates.push(w);
                    } else {
                        stale_waiters.push(w);
                    }
                }
                Status::OsBlocked => has_os_blocked = true,
                Status::Running | Status::Finished => {}
            }
        }
        if candidates.is_empty() {
            if !stale_waiters.is_empty() && !has_os_blocked {
                // deadlock: fixed victim (lowest id), not a branch point
                let victim = stale_waiters[0];
                self.slots[victim].grant = Some(WaitOutcome::TimedOut);
                self.turn = Some(victim);
                self.result.deadlocks += 1;
                self.result.trace.push(TraceStep {
                    worker: victim,
                    label: self.slots[victim].label,
                    candidates: stale_waiters,
                    chosen: 0,
                    deadlock: true,
                    accesses: Vec::new(),
                });
            } else {
                // everyone is finished or OS-blocked (or waiting on an
                // OS-blocked worker's return) — nothing to grant now
                self.turn = None;
            }
            cv.notify_all();
            return;
        }
        let chosen = if candidates.len() == 1 {
            0
        } else {
            let c = self.chooser.choose_step(&candidates, &self.result.trace);
            self.result.branches.push((c, candidates.len()));
            c
        };
        let w = candidates[chosen];
        self.slots[w].grant = Some(WaitOutcome::Proceed);
        self.turn = Some(w);
        self.result.trace.push(TraceStep {
            worker: w,
            label: self.slots[w].label,
            candidates,
            chosen,
            deadlock: false,
            accesses: Vec::new(),
        });
        cv.notify_all();
    }

    fn maybe_enter_free_run(&mut self, cv: &Condvar) {
        let all_done = self
            .slots
            .iter()
            .filter(|s| !s.daemon)
            .all(|s| s.status == Status::Finished);
        if all_done {
            self.free_run = true;
            self.turn = None;
            cv.notify_all();
        }
    }
}

/// The scheduler; install via [`feral_hooks::Registration`] and drive
/// with [`crate::run_trial`] (or the explorers).
pub struct SimScheduler {
    mu: Mutex<State>,
    cv: Condvar,
}

impl SimScheduler {
    /// New scheduler with no workers yet.
    pub fn new(chooser: Box<dyn Chooser>, max_steps: usize) -> Self {
        SimScheduler {
            mu: Mutex::new(State {
                slots: Vec::new(),
                turn: None,
                gen: 0,
                chooser,
                max_steps,
                free_run: false,
                result: RunResult::default(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.mu.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a scenario (non-daemon) worker; returns its id. Call for
    /// every worker *before* kicking the schedule.
    pub fn register_worker(&self) -> usize {
        let mut st = self.lock();
        st.slots.push(Slot {
            status: Status::Parked { waiting: None },
            label: Site::WorkerStart.name(),
            daemon: false,
            grant: None,
        });
        st.slots.len() - 1
    }

    /// Hand the first turn out. Idempotent.
    pub fn kick(&self) {
        let mut st = self.lock();
        if st.turn.is_none() {
            st.schedule_next(&self.cv);
        }
    }

    /// Block the harness thread until every non-daemon worker finished.
    pub fn wait_done(&self) {
        let mut st = self.lock();
        while !st.free_run {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Extract the run's schedule record (call after [`wait_done`]).
    pub fn take_result(&self) -> RunResult {
        let mut st = self.lock();
        std::mem::take(&mut st.result)
    }

    fn park(&self, worker: usize, label: &'static str, is_wait: bool) -> WaitOutcome {
        let mut st = self.lock();
        if st.free_run {
            return WaitOutcome::TimedOut;
        }
        let waiting = if is_wait { Some(st.gen) } else { None };
        st.slots[worker].status = Status::Parked { waiting };
        st.slots[worker].label = label;
        if st.turn == Some(worker) && st.slots[worker].grant.is_some() {
            // the turn was granted before this thread physically parked
            // (possible right after registration): consume the pending
            // grant below instead of scheduling again, so the schedule
            // does not depend on thread startup timing
        } else if st.turn == Some(worker) || st.turn.is_none() {
            st.schedule_next(&self.cv);
        }
        loop {
            if st.free_run {
                // simulation over (or truncated): unwind as a timeout
                st.slots[worker].status = Status::Running;
                return WaitOutcome::TimedOut;
            }
            if st.turn == Some(worker) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.slots[worker].status = Status::Running;
        st.slots[worker]
            .grant
            .take()
            .unwrap_or(WaitOutcome::Proceed)
    }
}

impl ScheduleHook for SimScheduler {
    fn yield_point(&self, worker: usize, site: Site) {
        let _ = self.park(worker, site.name(), false);
    }

    fn wait(&self, worker: usize, kind: WaitKind) -> WaitOutcome {
        self.park(worker, kind.name(), true)
    }

    fn progress(&self) {
        let mut st = self.lock();
        st.gen += 1;
    }

    fn note_access(&self, worker: usize, access: Access) {
        let mut st = self.lock();
        // in free-run mode threads execute concurrently, so an access can
        // no longer be attributed to a single trace step — drop it (the
        // run is over or truncated; explorers ignore such tails anyway)
        if st.free_run {
            return;
        }
        // the access belongs to the segment of the most recent grant; the
        // grantee is the only worker running, so a mismatched worker id
        // would mean unscheduled execution — attribute only when it lines
        // up (child threads report between registration and activation)
        if let Some(step) = st.result.trace.last_mut() {
            if step.worker == worker {
                step.accesses.push(access);
            }
        }
    }

    fn register_child(&self, daemon: bool) -> usize {
        let mut st = self.lock();
        st.slots.push(Slot {
            status: Status::Parked { waiting: None },
            label: Site::WorkerStart.name(),
            daemon,
            grant: None,
        });
        st.slots.len() - 1
    }

    fn worker_finished(&self, worker: usize) {
        let mut st = self.lock();
        st.slots[worker].status = Status::Finished;
        if st.turn == Some(worker) {
            st.schedule_next(&self.cv);
        }
        st.maybe_enter_free_run(&self.cv);
    }

    fn os_block_begin(&self, worker: usize) {
        let mut st = self.lock();
        st.slots[worker].status = Status::OsBlocked;
        st.slots[worker].label = "os-blocked";
        if st.turn == Some(worker) {
            st.schedule_next(&self.cv);
        }
    }

    fn os_block_end(&self, worker: usize) {
        let _ = self.park(worker, "os-resume", false);
    }
}

/// Run `workers` under a deterministic schedule driven by `chooser`.
/// Panics in a worker propagate after the schedule trace is attached.
pub fn run_schedule(
    workers: Vec<Box<dyn FnOnce() + Send>>,
    chooser: Box<dyn Chooser>,
    max_steps: usize,
) -> RunResult {
    if workers.is_empty() {
        return RunResult::default();
    }
    let sched = Arc::new(SimScheduler::new(chooser, max_steps));
    let regs: Vec<Registration> = workers
        .iter()
        .map(|_| {
            let id = sched.register_worker();
            Registration::new(sched.clone() as Arc<dyn ScheduleHook>, id)
        })
        .collect();
    let handles: Vec<_> = workers
        .into_iter()
        .zip(regs)
        .map(|(f, reg)| {
            std::thread::spawn(move || {
                let _active = reg.activate();
                f();
            })
        })
        .collect();
    sched.kick();
    sched.wait_done();
    let mut panic_msg = None;
    for h in handles {
        if let Err(p) = h.join() {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            panic_msg.get_or_insert(msg);
        }
    }
    let result = sched.take_result();
    if let Some(msg) = panic_msg {
        panic!(
            "simulated worker panicked: {msg}\nschedule trace:\n{}",
            result.trace_text()
        );
    }
    result
}
