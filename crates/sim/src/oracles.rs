//! Anomaly oracles: the integrity checks the paper's experiments run
//! after a workload — duplicate uniqueness keys (Fig. 2/3), orphaned
//! association rows (Fig. 4), and lost counter updates (§6.2). They read
//! the database through an ordinary transaction, so the harness, the
//! `crates/bench` figure binaries, and production-style audits can share
//! them.

use feral_db::{Database, Datum, Predicate};
use std::collections::HashMap;

fn column_of(db: &Database, table: &str, column: &str) -> usize {
    let info = db
        .table_info(table)
        .unwrap_or_else(|e| panic!("oracle: no table {table}: {e}"));
    info.schema
        .column_index(column)
        .unwrap_or_else(|e| panic!("oracle: no column {table}.{column}: {e}"))
}

/// Distinct values of `table.column` held by more than one row, with
/// their multiplicities. SQL-style semantics: NULLs never collide.
pub fn duplicate_keys(db: &Database, table: &str, column: &str) -> Vec<(Datum, usize)> {
    let col = column_of(db, table, column);
    let mut tx = db.txn().begin();
    let rows = tx
        .scan(table, &Predicate::True)
        .unwrap_or_else(|e| panic!("oracle scan of {table} failed: {e}"));
    tx.rollback();
    let mut counts: HashMap<String, (Datum, usize)> = HashMap::new();
    for (_, tuple) in rows {
        let key = &tuple[col];
        if key.is_null() {
            continue;
        }
        let entry = counts
            .entry(format!("{key:?}"))
            .or_insert_with(|| (key.clone(), 0));
        entry.1 += 1;
    }
    let mut dups: Vec<(Datum, usize)> = counts.into_values().filter(|(_, n)| *n > 1).collect();
    dups.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
    dups
}

/// Rows in excess of one per distinct `table.column` value — the
/// paper's duplicate-record count (Appendix C.2's `GROUP BY ... HAVING
/// count(*) > 1`, summed).
pub fn duplicate_count(db: &Database, table: &str, column: &str) -> usize {
    duplicate_keys(db, table, column)
        .into_iter()
        .map(|(_, n)| n - 1)
        .sum()
}

/// Child rows whose non-NULL `fk_column` references no row in
/// `parent_table` (matched on the parent's first column, its id) — the
/// paper's orphaned-association scan (Appendix C.2's LEFT OUTER JOIN
/// ... WHERE parent.id IS NULL).
pub fn orphaned_rows(
    db: &Database,
    child_table: &str,
    fk_column: &str,
    parent_table: &str,
) -> Vec<Datum> {
    let fk = column_of(db, child_table, fk_column);
    let mut tx = db.txn().begin();
    let children = tx
        .scan(child_table, &Predicate::True)
        .unwrap_or_else(|e| panic!("oracle scan of {child_table} failed: {e}"));
    let parents = tx
        .scan(parent_table, &Predicate::True)
        .unwrap_or_else(|e| panic!("oracle scan of {parent_table} failed: {e}"));
    tx.rollback();
    let parent_ids: Vec<Datum> = parents.iter().map(|(_, t)| t[0].clone()).collect();
    let mut orphans = Vec::new();
    for (_, child) in children {
        let fk_val = &child[fk];
        if fk_val.is_null() {
            continue;
        }
        if !parent_ids.iter().any(|p| p == fk_val) {
            orphans.push(child[0].clone());
        }
    }
    orphans
}

/// Orphaned-row count (see [`orphaned_rows`]).
pub fn orphan_count(db: &Database, child: &str, fk_column: &str, parent: &str) -> usize {
    orphaned_rows(db, child, fk_column, parent).len()
}

/// Lost-update detector for counter columns: sums `table.column` over
/// all rows and reports how many acknowledged increments are missing
/// (`expected_total - observed`). Positive = lost updates; zero = none.
pub fn lost_updates(db: &Database, table: &str, column: &str, expected_total: i64) -> i64 {
    let col = column_of(db, table, column);
    let mut tx = db.txn().begin();
    let rows = tx
        .scan(table, &Predicate::True)
        .unwrap_or_else(|e| panic!("oracle scan of {table} failed: {e}"));
    tx.rollback();
    let observed: i64 = rows.iter().map(|(_, t)| t[col].as_int().unwrap_or(0)).sum();
    expected_total - observed
}

#[cfg(test)]
mod tests {
    use super::*;
    use feral_db::{ColumnDef, DataType, TableSchema};

    fn db_with(table: &str, cols: Vec<ColumnDef>) -> Database {
        let db = Database::in_memory();
        db.create_table(TableSchema::new(table, cols)).unwrap();
        db
    }

    #[test]
    fn duplicates_counted_per_excess_row() {
        let db = db_with("t", vec![ColumnDef::new("k", DataType::Text)]);
        let mut tx = db.txn().begin();
        for k in ["a", "a", "a", "b", "c", "c"] {
            tx.insert_pairs("t", &[("k", Datum::text(k))]).unwrap();
        }
        tx.commit().unwrap();
        assert_eq!(duplicate_count(&db, "t", "k"), 3); // 2 extra "a" + 1 extra "c"
        let keys = duplicate_keys(&db, "t", "k");
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn nulls_never_collide() {
        let db = db_with("t", vec![ColumnDef::new("k", DataType::Text)]);
        let mut tx = db.txn().begin();
        for _ in 0..3 {
            tx.insert_pairs("t", &[("k", Datum::Null)]).unwrap();
        }
        tx.commit().unwrap();
        assert_eq!(duplicate_count(&db, "t", "k"), 0);
    }

    #[test]
    fn orphans_found_by_missing_parent() {
        let db = Database::in_memory();
        db.create_table(TableSchema::new(
            "parents",
            vec![ColumnDef::new("name", DataType::Text)],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "children",
            vec![ColumnDef::new("parent_id", DataType::Int)],
        ))
        .unwrap();
        let mut tx = db.txn().begin();
        tx.insert_pairs(
            "parents",
            &[("id", Datum::Int(1)), ("name", Datum::text("p"))],
        )
        .unwrap();
        tx.insert_pairs("children", &[("parent_id", Datum::Int(1))])
            .unwrap();
        tx.insert_pairs("children", &[("parent_id", Datum::Int(99_999))])
            .unwrap();
        tx.insert_pairs("children", &[("parent_id", Datum::Null)])
            .unwrap();
        tx.commit().unwrap();
        assert_eq!(orphan_count(&db, "children", "parent_id", "parents"), 1);
    }

    #[test]
    fn lost_updates_measures_shortfall() {
        let db = db_with("c", vec![ColumnDef::new("n", DataType::Int)]);
        let mut tx = db.txn().begin();
        tx.insert_pairs("c", &[("n", Datum::Int(7))]).unwrap();
        tx.commit().unwrap();
        assert_eq!(lost_updates(&db, "c", "n", 10), 3);
        assert_eq!(lost_updates(&db, "c", "n", 7), 0);
    }
}
