//! Machine-readable JSON for `feral-sim` exploration outcomes.
//!
//! Hand-rolled, deterministic field order (same convention as the sdg
//! and lint report modules): byte-identical output for identical
//! explorations, so reports can be golden-tested and diffed in CI.

use crate::scenarios::ScenarioSpec;
use crate::scheduler::SearchStats;
use crate::{DporExploration, SystematicExploration, Violation};

/// One exploration outcome, ready to serialize.
#[derive(Debug)]
pub struct ExplorationReport {
    /// Scenario label (`scenario/isolation/guard`).
    pub scenario: String,
    /// Search strategy (`dfs`, `dpor`, `directed-dpor`, `random`).
    pub strategy: &'static str,
    /// Schedules executed.
    pub runs: usize,
    /// Whether the (reduced) schedule space was fully covered.
    pub complete: bool,
    /// Exploration/pruning counters. For non-reducing strategies the
    /// counters are the trivial ones (`explored == runs`, nothing
    /// pruned).
    pub stats: SearchStats,
    /// The firing schedule, if one was found.
    pub violation: Option<ViolationReport>,
}

/// The violation portion of an [`ExplorationReport`].
#[derive(Debug)]
pub struct ViolationReport {
    /// Oracle message.
    pub message: String,
    /// Seed, for random-mode finds.
    pub seed: Option<u64>,
    /// Branch choices replaying the schedule.
    pub choices: Vec<usize>,
    /// `feral-sim replay` invocation reproducing it.
    pub replay: String,
}

impl ViolationReport {
    fn of(spec: &ScenarioSpec, v: &Violation) -> ViolationReport {
        ViolationReport {
            message: v.message.clone(),
            seed: v.seed,
            choices: v.choices.clone(),
            replay: spec.replay_command(v.seed, &v.choices),
        }
    }
}

impl ExplorationReport {
    /// Report for a DPOR (or directed-DPOR) exploration.
    pub fn from_dpor(
        spec: &ScenarioSpec,
        strategy: &'static str,
        outcome: &DporExploration,
    ) -> ExplorationReport {
        ExplorationReport {
            scenario: spec.label(),
            strategy,
            runs: outcome.runs,
            complete: outcome.complete,
            stats: outcome.stats.clone(),
            violation: outcome
                .violation
                .as_ref()
                .map(|v| ViolationReport::of(spec, v)),
        }
    }

    /// Report for a plain exhaustive-DFS exploration.
    pub fn from_systematic(
        spec: &ScenarioSpec,
        outcome: &SystematicExploration,
    ) -> ExplorationReport {
        ExplorationReport {
            scenario: spec.label(),
            strategy: "dfs",
            runs: outcome.runs,
            complete: outcome.complete,
            stats: SearchStats {
                schedules_explored: outcome.runs,
                ..SearchStats::default()
            },
            violation: outcome
                .violation
                .as_ref()
                .map(|v| ViolationReport::of(spec, v)),
        }
    }

    /// Serialize (stable field order, no trailing newline).
    pub fn to_json(&self) -> String {
        let violation = match &self.violation {
            None => "null".to_string(),
            Some(v) => {
                let choices: Vec<String> = v.choices.iter().map(|c| c.to_string()).collect();
                format!(
                    "{{\"message\":\"{}\",\"seed\":{},\"choices\":[{}],\"replay\":\"{}\"}}",
                    json_escape(&v.message),
                    v.seed.map_or("null".to_string(), |s| s.to_string()),
                    choices.join(","),
                    json_escape(&v.replay)
                )
            }
        };
        format!(
            "{{\"tool\":\"feral-sim\",\"scenario\":\"{}\",\"strategy\":\"{}\",\"runs\":{},\"complete\":{},\"schedules_explored\":{},\"schedules_pruned\":{},\"pruned_exact\":{},\"sleep_set_blocked\":{},\"redundant_runs\":{},\"violation\":{}}}",
            json_escape(&self.scenario),
            self.strategy,
            self.runs,
            self.complete,
            self.stats.schedules_explored,
            self.stats.schedules_pruned,
            self.stats.pruned_exact,
            self.stats.sleep_set_blocked,
            self.stats.redundant_runs,
            violation
        )
    }
}

pub(crate) use feral_cli::report::json_escape;
