//! Schedule search: seeded-random sampling with replay, and systematic
//! (exhaustive) enumeration of all schedule branch points.

use crate::scheduler::{
    run_schedule, Chooser, RandomChooser, RunResult, ScriptChooser, DEFAULT_MAX_STEPS,
};

/// One runnable instance of a scenario: worker closures over freshly
/// built shared state, plus an oracle checked after the run.
///
/// Explorers call the factory once per schedule, so `check` sees only the
/// effects of that single run. `check` returns `Err(description)` when
/// the oracle *fires* — explorers stop at the first firing schedule and
/// report how to replay it. (Whether a firing oracle is a test failure
/// or a successful anomaly reproduction is the caller's business.)
pub struct Trial {
    /// Logical workers, scheduled at instrumented yield points.
    pub workers: Vec<Box<dyn FnOnce() + Send>>,
    /// Post-run oracle over the scenario's shared state.
    pub check: Box<dyn FnOnce() -> Result<(), String>>,
}

/// A schedule on which a trial's oracle fired, with everything needed to
/// reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Seed that produced the schedule (random mode).
    pub seed: Option<u64>,
    /// Branch choices of the schedule — replayable via
    /// [`run_with_choices`] in any mode, including after minimization.
    pub choices: Vec<usize>,
    /// What the oracle reported.
    pub message: String,
    /// Search strategy that found the schedule (`"random"`, `"dfs"`,
    /// `"dpor"`, `"directed-dpor"`) — provenance for checkreport
    /// records and witness artifacts.
    pub strategy: &'static str,
    /// The full schedule record.
    pub run: RunResult,
}

impl Violation {
    /// One-line replay instructions for test output. The leading
    /// `replay with …` clause is stable (older artifacts pin it); the
    /// strategy suffix says which searcher found the schedule.
    pub fn replay_hint(&self) -> String {
        match self.seed {
            Some(s) => format!(
                "replay with seed {s} (choices {:?}) [found by {}]",
                self.choices, self.strategy
            ),
            None => format!(
                "replay with choices {:?} [found by {}]",
                self.choices, self.strategy
            ),
        }
    }
}

/// Run one schedule under an arbitrary chooser — the seeded, scripted,
/// and reduction-guided runners below are all thin wrappers over this.
pub(crate) fn run_with_chooser(
    trial: Trial,
    chooser: Box<dyn Chooser>,
) -> (RunResult, Result<(), String>) {
    let result = run_schedule(trial.workers, chooser, DEFAULT_MAX_STEPS);
    let verdict = (trial.check)();
    (result, verdict)
}

/// Run one schedule chosen by `seed`. Re-running with the same seed (and
/// a deterministic scenario) reproduces the identical trace and verdict.
pub fn run_with_seed(trial: Trial, seed: u64) -> (RunResult, Result<(), String>) {
    run_with_chooser(trial, Box::new(RandomChooser::new(seed)))
}

/// Run one schedule following `choices` at branch points (first
/// candidate beyond the script) — replay and minimization.
pub fn run_with_choices(trial: Trial, choices: &[usize]) -> (RunResult, Result<(), String>) {
    run_with_chooser(trial, Box::new(ScriptChooser::new(choices.to_vec())))
}

/// Outcome of [`explore_random`].
#[derive(Debug)]
pub struct RandomExploration {
    /// Schedules executed.
    pub runs: usize,
    /// First schedule on which the oracle fired, if any.
    pub violation: Option<Violation>,
}

/// Sample one schedule per seed until the oracle fires or seeds run out.
pub fn explore_random(
    mut factory: impl FnMut() -> Trial,
    seeds: impl IntoIterator<Item = u64>,
) -> RandomExploration {
    let mut runs = 0;
    for seed in seeds {
        let (run, verdict) = run_with_seed(factory(), seed);
        runs += 1;
        if let Err(message) = verdict {
            return RandomExploration {
                runs,
                violation: Some(Violation {
                    seed: Some(seed),
                    choices: run.choices(),
                    message,
                    strategy: "random",
                    run,
                }),
            };
        }
    }
    RandomExploration {
        runs,
        violation: None,
    }
}

/// Outcome of [`explore_systematic`].
#[derive(Debug)]
pub struct SystematicExploration {
    /// Schedules executed.
    pub runs: usize,
    /// Whether every schedule was covered (false when `max_runs` stopped
    /// the enumeration early or a run hit the step cap).
    pub complete: bool,
    /// First schedule on which the oracle fired, if any.
    pub violation: Option<Violation>,
}

/// Exhaustively enumerate schedules, depth-first over branch points.
///
/// Stateless-model-checking style: each run follows a choice prefix and
/// defaults to candidate 0 afterwards; every untried alternative at every
/// branch at or beyond the prefix becomes a new prefix to run. For the
/// 2–3 transaction scenarios in the safety-matrix tests the full tree is
/// a few hundred to a few thousand schedules.
pub fn explore_systematic(
    mut factory: impl FnMut() -> Trial,
    max_runs: usize,
) -> SystematicExploration {
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut runs = 0;
    let mut complete = true;
    while let Some(prefix) = stack.pop() {
        if runs >= max_runs {
            complete = false;
            break;
        }
        let prefix_len = prefix.len();
        let (run, verdict) = run_with_choices(factory(), &prefix);
        runs += 1;
        if run.truncated {
            complete = false;
        }
        if let Err(message) = verdict {
            return SystematicExploration {
                runs,
                complete: false,
                violation: Some(Violation {
                    seed: None,
                    choices: run.choices(),
                    message,
                    strategy: "dfs",
                    run,
                }),
            };
        }
        // branch the tree: untried alternatives at each decision at or
        // beyond the prefix (decisions inside the prefix are already
        // covered by sibling prefixes)
        for i in prefix_len..run.branches.len() {
            let (chosen, arity) = run.branches[i];
            let mut base: Vec<usize> = run.branches[..i].iter().map(|(c, _)| *c).collect();
            for alt in 0..arity {
                if alt != chosen {
                    base.push(alt);
                    stack.push(base.clone());
                    base.pop();
                }
            }
        }
    }
    SystematicExploration {
        runs,
        complete,
        violation: None,
    }
}
