//! # feral-sim
//!
//! Deterministic schedule-exploring concurrency harness for the feral
//! stack. Replaces "spawn N OS threads and hope the race happens" with an
//! explicit interleaving scheduler over the yield points instrumented via
//! [`feral_hooks`]: transaction begin/scan/write/commit, lock waits, the
//! ORM's validate→write gap, and appserver dispatch/handle.
//!
//! Three modes:
//!
//! * **Seeded random search** ([`explore_random`]): sample one schedule
//!   per seed; a firing oracle reports the seed, which replays the run
//!   byte-identically ([`run_with_seed`]).
//! * **Systematic exploration** ([`explore_systematic`]): exhaustive DFS
//!   over every schedule branch point — small scenarios (2–3
//!   transactions) are fully covered, which is what the safety-matrix
//!   regression tests assert.
//! * **Replay / minimization** ([`run_with_choices`]): drive the schedule
//!   from an explicit choice list (e.g. a prefix of a failing run).
//!
//! The [`oracles`] module holds the paper's anomaly detectors (duplicate
//! uniqueness keys, orphaned association rows, lost counter updates),
//! shared with the `crates/bench` figure binaries.
//!
//! ## Determinism contract
//!
//! A scenario must not branch on wall-clock time, unseeded randomness, or
//! OS-level blocking primitives (use channels/locks from the instrumented
//! stack; wrap unavoidable joins in [`feral_hooks::blocking`]). Under
//! that contract a schedule is fully determined by its branch-choice
//! list, and `RunResult::branches` is its replayable fingerprint.

#![warn(missing_docs)]

mod dpor;
mod explore;
pub mod oracles;
pub mod report;
pub mod scenarios;
mod scheduler;

pub use dpor::{explore_dpor, DirectionHint, DporConfig, DporExploration};
pub use explore::{
    explore_random, explore_systematic, run_with_choices, run_with_seed, RandomExploration,
    SystematicExploration, Trial, Violation,
};
pub use scheduler::{
    run_schedule, Chooser, RandomChooser, RunResult, ScriptChooser, SearchStats, SimScheduler,
    TraceStep, DEFAULT_MAX_STEPS,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Two workers each yield twice (via a feral-db scan); the schedule
    /// interleaves them deterministically per seed.
    fn order_trial(log: Arc<std::sync::Mutex<Vec<usize>>>) -> Trial {
        let db = feral_db::Database::in_memory();
        db.create_table(feral_db::TableSchema::new(
            "t",
            vec![feral_db::ColumnDef::new("k", feral_db::DataType::Int)],
        ))
        .unwrap();
        let workers: Vec<Box<dyn FnOnce() + Send>> = (0..2)
            .map(|w| {
                let db = db.clone();
                let log = log.clone();
                Box::new(move || {
                    let mut tx = db.txn().begin();
                    let _ = tx.scan("t", &feral_db::Predicate::True);
                    log.lock().unwrap().push(w);
                    let _ = tx.scan("t", &feral_db::Predicate::True);
                    log.lock().unwrap().push(w);
                    tx.rollback();
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        Trial {
            workers,
            check: Box::new(|| Ok(())),
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let log1 = Arc::new(std::sync::Mutex::new(Vec::new()));
        let (r1, _) = run_with_seed(order_trial(log1.clone()), 42);
        let log2 = Arc::new(std::sync::Mutex::new(Vec::new()));
        let (r2, _) = run_with_seed(order_trial(log2.clone()), 42);
        assert_eq!(r1.branches, r2.branches);
        assert_eq!(r1.trace_text(), r2.trace_text());
        assert_eq!(*log1.lock().unwrap(), *log2.lock().unwrap());
    }

    #[test]
    fn different_seeds_reach_different_schedules() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..16 {
            let log = Arc::new(std::sync::Mutex::new(Vec::new()));
            let _ = run_with_seed(order_trial(log.clone()), seed);
            seen.insert(log.lock().unwrap().clone());
        }
        assert!(
            seen.len() > 1,
            "all 16 seeds produced the same interleaving"
        );
    }

    #[test]
    fn replay_by_choices_matches_seed_run() {
        let log1 = Arc::new(std::sync::Mutex::new(Vec::new()));
        let (r1, _) = run_with_seed(order_trial(log1.clone()), 7);
        let log2 = Arc::new(std::sync::Mutex::new(Vec::new()));
        let (r2, _) = run_with_choices(order_trial(log2.clone()), &r1.choices());
        assert_eq!(r1.trace_text(), r2.trace_text());
        assert_eq!(*log1.lock().unwrap(), *log2.lock().unwrap());
    }

    #[test]
    fn systematic_mode_covers_all_interleavings_of_two_yielding_workers() {
        // every distinct observable order of the two workers' log pushes
        // must be visited by the exhaustive enumeration
        let orders = Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
        let outcome = explore_systematic(
            || {
                let log = Arc::new(std::sync::Mutex::new(Vec::new()));
                let mut t = order_trial(log.clone());
                let orders = orders.clone();
                t.check = Box::new(move || {
                    orders.lock().unwrap().insert(log.lock().unwrap().clone());
                    Ok(())
                });
                t
            },
            10_000,
        );
        assert!(outcome.complete, "enumeration did not finish");
        assert!(outcome.violation.is_none());
        // 4 interleavings of (0,0) and (1,1) preserving per-worker order:
        // C(4,2) = 6 observable orders
        assert_eq!(orders.lock().unwrap().len(), 6, "missed interleavings");
        assert!(outcome.runs >= 6);
    }

    #[test]
    fn explore_random_reports_replayable_violation() {
        let outcome = explore_random(
            || {
                let counter = Arc::new(AtomicUsize::new(0));
                let c2 = counter.clone();
                Trial {
                    workers: vec![Box::new(move || {
                        c2.fetch_add(1, Ordering::SeqCst);
                    })],
                    check: Box::new(move || {
                        if counter.load(Ordering::SeqCst) == 1 {
                            Err("worker ran (expected: oracle fires)".into())
                        } else {
                            Ok(())
                        }
                    }),
                }
            },
            0..4,
        );
        let v = outcome.violation.expect("oracle must fire on first run");
        assert_eq!(outcome.runs, 1);
        assert_eq!(v.seed, Some(0));
        assert!(v.replay_hint().contains("seed 0"));
    }

    #[test]
    fn deadlock_is_resolved_by_victim_timeout() {
        // classic ABBA: w0 locks a then b, w1 locks b then a
        let db = feral_db::Database::in_memory();
        db.create_table(feral_db::TableSchema::new(
            "t",
            vec![feral_db::ColumnDef::new("k", feral_db::DataType::Int)],
        ))
        .unwrap();
        let mut tx = db.txn().begin();
        tx.insert_pairs(
            "t",
            &[
                ("id", feral_db::Datum::Int(1)),
                ("k", feral_db::Datum::Int(0)),
            ],
        )
        .unwrap();
        tx.insert_pairs(
            "t",
            &[
                ("id", feral_db::Datum::Int(2)),
                ("k", feral_db::Datum::Int(0)),
            ],
        )
        .unwrap();
        tx.commit().unwrap();
        let timeouts = Arc::new(AtomicUsize::new(0));
        let mk_worker = |first: i64, second: i64| {
            let db = db.clone();
            let timeouts = timeouts.clone();
            Box::new(move || {
                let mut tx = db.txn().begin();
                let a = tx.select_for_update("t", &feral_db::Predicate::eq(0, first));
                let b = tx.select_for_update("t", &feral_db::Predicate::eq(0, second));
                if a.is_err() || b.is_err() {
                    timeouts.fetch_add(1, Ordering::SeqCst);
                    tx.rollback();
                } else {
                    tx.commit().unwrap();
                }
            }) as Box<dyn FnOnce() + Send>
        };
        // systematically search for the deadlocking interleaving
        let outcome = explore_systematic(
            || Trial {
                workers: vec![mk_worker(1, 2), mk_worker(2, 1)],
                check: Box::new(|| Ok(())),
            },
            5_000,
        );
        assert!(outcome.complete);
        // at least one schedule must have hit the ABBA deadlock and been
        // resolved by a victim timeout rather than hanging
        assert!(
            timeouts.load(Ordering::SeqCst) > 0,
            "no schedule produced the ABBA deadlock"
        );
    }
}
