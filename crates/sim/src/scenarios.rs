//! Canonical anomaly scenarios from the paper, packaged as [`Trial`]s so
//! the integration tests, the `feral-sim` CLI, and the bench crate can
//! explore the same workloads.
//!
//! Each trial builds a fresh application, races a small number of
//! sessions through the ORM exactly as the Appendix C experiment apps do,
//! and installs the matching anomaly oracle as its check — the oracle
//! *fires* (returns `Err`) when the integrity violation is present.

use crate::explore::Trial;
use crate::oracles;
use feral_db::{AuditMode, Config, Database, Datum, IsolationLevel, OnDelete};
use feral_orm::{App, Dependent, ModelDef, OrmError};

/// How the uniqueness/association invariant is enforced, mirroring the
/// bench crate's experiment matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Feral validation only (`validates_uniqueness_of` /
    /// `validates_presence_of` + `dependent: :destroy`).
    Feral,
    /// Feral validation plus the in-database constraint (unique index /
    /// foreign key).
    Database,
}

/// Which canonical scenario a [`ScenarioSpec`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// §5.2: concurrent same-key inserts through `validates_uniqueness_of`.
    Uniqueness,
    /// §5.3/§5.4: cascade destroy racing dependent inserts.
    Orphans,
    /// §4.4: unguarded `lock_version`-style read-modify-write — two
    /// sessions each read a counter and write back `read + 1` inside one
    /// transaction; a lost update leaves the counter short.
    LostUpdate,
    /// §5.3 insert-only control: two sessions concurrently
    /// presence-check the same parent and insert children — no
    /// destroyer, so the referential invariant is I-confluent and every
    /// schedule must be orphan-free.
    SiblingInserts,
}

impl ScenarioKind {
    /// CLI spelling (`uniqueness` / `orphans` / `lost-update` /
    /// `sibling-inserts`).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Uniqueness => "uniqueness",
            ScenarioKind::Orphans => "orphans",
            ScenarioKind::LostUpdate => "lost-update",
            ScenarioKind::SiblingInserts => "sibling-inserts",
        }
    }

    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Option<ScenarioKind> {
        match s {
            "uniqueness" => Some(ScenarioKind::Uniqueness),
            "orphans" => Some(ScenarioKind::Orphans),
            "lost-update" => Some(ScenarioKind::LostUpdate),
            "sibling-inserts" => Some(ScenarioKind::SiblingInserts),
            _ => None,
        }
    }
}

/// A fully-specified scenario configuration — everything needed to
/// rebuild a [`Trial`] bit-identically. Shared between the `feral-sim`
/// CLI and `feral-lint`'s witness generation, so a witness found by the
/// linter replays verbatim under the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Scenario family.
    pub kind: ScenarioKind,
    /// Isolation level of every session.
    pub isolation: IsolationLevel,
    /// Feral-only or feral + database constraint.
    pub guard: Guard,
    /// Concurrent writers (uniqueness) / inserters racing the destroyer
    /// (orphans).
    pub workers: usize,
}

impl ScenarioSpec {
    /// Build a fresh runnable trial for this configuration.
    pub fn build(&self) -> Trial {
        match self.kind {
            ScenarioKind::Uniqueness => uniqueness_trial(self.isolation, self.guard, self.workers),
            ScenarioKind::Orphans => orphan_trial(self.isolation, self.guard, self.workers),
            ScenarioKind::LostUpdate => lost_update_trial(self.isolation, self.guard, self.workers),
            ScenarioKind::SiblingInserts => {
                sibling_insert_trial(self.isolation, self.guard, self.workers)
            }
        }
    }

    /// [`ScenarioSpec::build`] over a database with the runtime DSG
    /// auditor enabled at `mode`, also handing back the application so
    /// the caller can read `app.db().audit_snapshot()` after the run —
    /// the differential gate comparing the online auditor's verdict
    /// against the DPOR sweep verdict is built on this.
    pub fn build_audited(&self, mode: AuditMode) -> (App, Trial) {
        let levels = SessionLevels::Uniform(self.isolation);
        match self.kind {
            ScenarioKind::Uniqueness => uniqueness_core(levels, self.guard, self.workers, mode),
            ScenarioKind::Orphans => orphan_core(levels, self.guard, self.workers, mode),
            ScenarioKind::LostUpdate => lost_update_core(levels, self.guard, self.workers, mode),
            ScenarioKind::SiblingInserts => {
                sibling_insert_core(levels, self.guard, self.workers, mode)
            }
        }
    }

    /// Build a trial whose sessions run at *per-template* isolation
    /// levels instead of one uniform level — the dynamic counterpart of
    /// feral-sdg's mixed dependency graphs. `levels[i]` is the level of
    /// slot `i` of the scenario's template pair, in
    /// `PairKind::templates()` order: for orphans slot 0 is the
    /// presence-checking inserter and slot 1 the cascade destroyer; for
    /// the symmetric scenarios worker `k` takes `levels[min(k, 1)]`.
    /// `self.isolation` is ignored.
    pub fn build_mixed(&self, levels: [IsolationLevel; 2]) -> Trial {
        let mixed = SessionLevels::Mixed(levels);
        let off = AuditMode::Off;
        match self.kind {
            ScenarioKind::Uniqueness => uniqueness_core(mixed, self.guard, self.workers, off).1,
            ScenarioKind::Orphans => orphan_core(mixed, self.guard, self.workers, off).1,
            ScenarioKind::LostUpdate => lost_update_core(mixed, self.guard, self.workers, off).1,
            ScenarioKind::SiblingInserts => {
                sibling_insert_core(mixed, self.guard, self.workers, off).1
            }
        }
    }

    /// Compact `scenario/isolation/guard` label for reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{:?}/{}",
            self.kind.name(),
            self.isolation,
            match self.guard {
                Guard::Feral => "feral",
                Guard::Database => "db-constraint",
            }
        )
    }

    /// Tables on the scenario's critical dependency cycle — the
    /// directed-search bias for [`crate::explore_dpor`]. Matches what a
    /// feral-sdg realizable-cycle report names for the same template
    /// pair.
    pub fn direction_hint(&self) -> crate::DirectionHint {
        crate::DirectionHint::for_tables(match self.kind {
            ScenarioKind::Uniqueness => vec!["key_values"],
            ScenarioKind::Orphans | ScenarioKind::SiblingInserts => {
                vec!["departments", "users"]
            }
            ScenarioKind::LostUpdate => vec!["accounts"],
        })
    }

    /// The flag spelling of the isolation level (`read-committed`).
    pub fn isolation_flag(&self) -> String {
        self.isolation.to_string().replace(' ', "-")
    }

    /// The `feral-sim replay` invocation reproducing the schedule chosen
    /// by `seed` (preferred) or an explicit choice list.
    pub fn replay_command(&self, seed: Option<u64>, choices: &[usize]) -> String {
        let mut cmd = format!(
            "feral-sim replay --scenario {} --isolation {} --guard {} --workers {}",
            self.kind.name(),
            self.isolation_flag(),
            match self.guard {
                Guard::Feral => "feral",
                Guard::Database => "database",
            },
            self.workers
        );
        push_schedule(&mut cmd, seed, choices);
        cmd
    }

    /// [`ScenarioSpec::replay_command`] for a mixed-level run: spells the
    /// per-slot levels as `--levels a,b` instead of `--isolation`.
    pub fn replay_command_mixed(
        &self,
        levels: [IsolationLevel; 2],
        seed: Option<u64>,
        choices: &[usize],
    ) -> String {
        let spelled: Vec<String> = levels
            .iter()
            .map(|l| l.to_string().replace(' ', "-"))
            .collect();
        let mut cmd = format!(
            "feral-sim replay --scenario {} --levels {} --guard {} --workers {}",
            self.kind.name(),
            spelled.join(","),
            match self.guard {
                Guard::Feral => "feral",
                Guard::Database => "database",
            },
            self.workers
        );
        push_schedule(&mut cmd, seed, choices);
        cmd
    }
}

fn push_schedule(cmd: &mut String, seed: Option<u64>, choices: &[usize]) {
    match seed {
        Some(s) => {
            cmd.push_str(&format!(" --seed {s}"));
        }
        None => {
            let list: Vec<String> = choices.iter().map(|c| c.to_string()).collect();
            cmd.push_str(&format!(" --choices {}", list.join(",")));
        }
    }
}

/// How trial sessions pick their isolation: one uniform level for every
/// worker, or per-template-slot levels (the feral-plan mixed case). The
/// database default only matters for the single-threaded setup sessions;
/// every racing worker sets its level explicitly.
#[derive(Debug, Clone, Copy)]
enum SessionLevels {
    Uniform(IsolationLevel),
    Mixed([IsolationLevel; 2]),
}

impl SessionLevels {
    fn db_default(self) -> IsolationLevel {
        match self {
            SessionLevels::Uniform(l) => l,
            SessionLevels::Mixed(_) => IsolationLevel::ReadCommitted,
        }
    }

    /// Level of template slot `i` (clamped to the pair).
    fn slot(self, i: usize) -> IsolationLevel {
        match self {
            SessionLevels::Uniform(l) => l,
            SessionLevels::Mixed(levels) => levels[i.min(1)],
        }
    }
}

fn db_at(isolation: IsolationLevel, audit: AuditMode) -> Database {
    Database::new(Config {
        default_isolation: isolation,
        audit_mode: audit,
        // Inline draining keeps audit reports a pure function of the
        // schedule — a background drainer thread would race the
        // deterministic scheduler.
        audit_background: false,
        ..Config::default()
    })
}

/// Swallow the error outcomes a Rails controller treats as "request
/// failed, move on": retryable engine errors, constraint rejections, and
/// validation failures. Anything else is a scenario bug worth a panic.
fn tolerate(result: Result<feral_orm::Record, OrmError>) {
    match result {
        Ok(_) => {}
        Err(e) if e.is_retryable() => {}
        Err(OrmError::Db(d)) if d.is_constraint_violation() => {}
        Err(OrmError::RecordInvalid(_)) | Err(OrmError::RecordNotFound(_)) => {}
        Err(e) => panic!("unexpected error in scenario worker: {e}"),
    }
}

/// §5.2 uniqueness scenario: `writers` concurrent sessions each create a
/// `KeyValue` with the *same* key through `validates_uniqueness_of`. The
/// oracle fires when more than one row holds the key.
pub fn uniqueness_trial(isolation: IsolationLevel, guard: Guard, writers: usize) -> Trial {
    uniqueness_trial_app(isolation, guard, writers).1
}

/// [`uniqueness_trial`], also handing back the application so callers can
/// inspect row counts after the run (the property tests do).
pub fn uniqueness_trial_app(
    isolation: IsolationLevel,
    guard: Guard,
    writers: usize,
) -> (App, Trial) {
    uniqueness_core(
        SessionLevels::Uniform(isolation),
        guard,
        writers,
        AuditMode::Off,
    )
}

fn uniqueness_core(
    levels: SessionLevels,
    guard: Guard,
    writers: usize,
    audit: AuditMode,
) -> (App, Trial) {
    let app = App::new(db_at(levels.db_default(), audit));
    app.define(
        ModelDef::build("KeyValue")
            .string("key")
            .string("value")
            .validates_presence_of("key")
            .validates_uniqueness_of("key")
            .finish(),
    )
    .unwrap();
    if guard == Guard::Database {
        app.add_index("KeyValue", &["key"], true).unwrap();
    }
    let workers = (0..writers)
        .map(|k| {
            let app = app.clone();
            let level = levels.slot(k);
            Box::new(move || {
                let mut s = app.session_with(level);
                tolerate(s.create(
                    "KeyValue",
                    &[("key", Datum::text("dup")), ("value", Datum::text("v"))],
                ));
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    let check_app = app.clone();
    let trial = Trial {
        workers,
        check: Box::new(move || {
            let dups = oracles::duplicate_keys(check_app.db(), "key_values", "key");
            if dups.is_empty() {
                Ok(())
            } else {
                Err(format!("duplicate uniqueness keys: {dups:?}"))
            }
        }),
    };
    (app, trial)
}

/// §5.3/§5.4 association scenario: one session ferally cascade-destroys a
/// department (`has_many :users, dependent: :destroy`) while `inserters`
/// sessions concurrently create users in it (validating department
/// presence). The oracle fires when a surviving user references the dead
/// department.
pub fn orphan_trial(isolation: IsolationLevel, guard: Guard, inserters: usize) -> Trial {
    orphan_trial_app(isolation, guard, inserters).1
}

/// [`orphan_trial`], also handing back the application for post-run
/// inspection.
pub fn orphan_trial_app(isolation: IsolationLevel, guard: Guard, inserters: usize) -> (App, Trial) {
    orphan_core(
        SessionLevels::Uniform(isolation),
        guard,
        inserters,
        AuditMode::Off,
    )
}

fn orphan_core(
    levels: SessionLevels,
    guard: Guard,
    inserters: usize,
    audit: AuditMode,
) -> (App, Trial) {
    let app = App::new(db_at(levels.db_default(), audit));
    app.define(
        ModelDef::build("Department")
            .string("name")
            .has_many_dependent("users", Dependent::Destroy)
            .finish(),
    )
    .unwrap();
    app.define(
        ModelDef::build("User")
            .belongs_to("department")
            .validates_presence_of("department")
            .finish(),
    )
    .unwrap();
    if guard == Guard::Database {
        app.add_foreign_key("User", "department", OnDelete::Cascade)
            .unwrap();
    }
    let dept_id = {
        let mut s = app.session();
        s.create_strict("Department", &[("name", Datum::text("eng"))])
            .unwrap()
            .id()
            .unwrap()
    };
    let mut workers: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(inserters + 1);
    {
        let app = app.clone();
        // the destroyer is template slot 1 (cascade-destroy) of the pair
        let level = levels.slot(1);
        workers.push(Box::new(move || {
            let mut s = app.session_with(level);
            match s.find("Department", dept_id) {
                Ok(mut dept) => match s.destroy(&mut dept) {
                    Ok(()) => {}
                    Err(e) if e.is_retryable() => {}
                    Err(e) => panic!("unexpected destroy error: {e}"),
                },
                Err(OrmError::RecordNotFound(_)) => {}
                Err(e) if e.is_retryable() => {}
                Err(e) => panic!("unexpected find error: {e}"),
            }
        }));
    }
    for _ in 0..inserters {
        let app = app.clone();
        // inserters are template slot 0 (assoc-check-insert)
        let level = levels.slot(0);
        workers.push(Box::new(move || {
            let mut s = app.session_with(level);
            tolerate(s.create("User", &[("department_id", Datum::Int(dept_id))]));
        }));
    }
    let check_app = app.clone();
    let trial = Trial {
        workers,
        check: Box::new(move || {
            let orphans =
                oracles::orphaned_rows(check_app.db(), "users", "department_id", "departments");
            if orphans.is_empty() {
                Ok(())
            } else {
                Err(format!("orphaned user rows (ids): {orphans:?}"))
            }
        }),
    };
    (app, trial)
}

/// §4.4 lost-update scenario: `updaters` sessions each run one
/// transaction that reads an account's counter and writes back
/// `read + 1` — the unguarded read-modify-write an *inert* optimistic
/// lock degenerates to (the `lock_version` column is missing, so the
/// stale-object check silently never runs). The oracle fires when the
/// counter ends up short of the acknowledged increments.
///
/// [`Guard::Database`] takes a pessimistic row lock (`SELECT ... FOR
/// UPDATE`) before the read, serializing the RMWs at any isolation.
pub fn lost_update_trial(isolation: IsolationLevel, guard: Guard, updaters: usize) -> Trial {
    lost_update_trial_app(isolation, guard, updaters).1
}

/// [`lost_update_trial`], also handing back the application and the
/// acknowledged-increment counter for post-run inspection.
pub fn lost_update_trial_app(
    isolation: IsolationLevel,
    guard: Guard,
    updaters: usize,
) -> (App, Trial) {
    lost_update_core(
        SessionLevels::Uniform(isolation),
        guard,
        updaters,
        AuditMode::Off,
    )
}

fn lost_update_core(
    levels: SessionLevels,
    guard: Guard,
    updaters: usize,
    audit: AuditMode,
) -> (App, Trial) {
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    let app = App::new(db_at(levels.db_default(), audit));
    app.define(
        ModelDef::build("Account")
            .string("name")
            .integer("balance")
            .finish(),
    )
    .unwrap();
    let account_id = {
        let mut s = app.session();
        s.create_strict(
            "Account",
            &[("name", Datum::text("hits")), ("balance", Datum::Int(0))],
        )
        .unwrap()
        .id()
        .unwrap()
    };
    let acked = Arc::new(AtomicI64::new(0));
    let workers = (0..updaters)
        .map(|k| {
            let app = app.clone();
            let acked = acked.clone();
            let level = levels.slot(k);
            Box::new(move || {
                let mut s = app.session_with(level);
                let result = s.transaction(|s| {
                    let mut account = s.find("Account", account_id)?;
                    if guard == Guard::Database {
                        s.lock(&mut account)?;
                    }
                    let read = account.get("balance").as_int().unwrap_or(0);
                    s.update_attributes(&mut account, &[("balance", Datum::Int(read + 1))])?;
                    Ok(())
                });
                match result {
                    Ok(()) => {
                        acked.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) if e.is_retryable() => {}
                    Err(OrmError::RecordNotFound(_)) => {}
                    Err(e) => panic!("unexpected error in lost-update worker: {e}"),
                }
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    let check_app = app.clone();
    let check_acked = acked.clone();
    let trial = Trial {
        workers,
        check: Box::new(move || {
            let expected = check_acked.load(Ordering::SeqCst);
            let lost = oracles::lost_updates(check_app.db(), "accounts", "balance", expected);
            if lost == 0 {
                Ok(())
            } else {
                Err(format!(
                    "lost updates: {lost} of {expected} acknowledged increments missing"
                ))
            }
        }),
    };
    (app, trial)
}

/// Insert-only association scenario: `inserters` sessions concurrently
/// presence-check the same department and create users in it. Nobody
/// deletes, so the referential invariant is I-confluent (§4.2) and the
/// orphan oracle must stay silent on *every* schedule, at every
/// isolation level — the SAFE control row of the `feral-sdg` matrix.
pub fn sibling_insert_trial(isolation: IsolationLevel, guard: Guard, inserters: usize) -> Trial {
    sibling_insert_trial_app(isolation, guard, inserters).1
}

/// [`sibling_insert_trial`], also handing back the application.
pub fn sibling_insert_trial_app(
    isolation: IsolationLevel,
    guard: Guard,
    inserters: usize,
) -> (App, Trial) {
    sibling_insert_core(
        SessionLevels::Uniform(isolation),
        guard,
        inserters,
        AuditMode::Off,
    )
}

fn sibling_insert_core(
    levels: SessionLevels,
    guard: Guard,
    inserters: usize,
    audit: AuditMode,
) -> (App, Trial) {
    let app = App::new(db_at(levels.db_default(), audit));
    app.define(
        ModelDef::build("Department")
            .string("name")
            .has_many_dependent("users", Dependent::Destroy)
            .finish(),
    )
    .unwrap();
    app.define(
        ModelDef::build("User")
            .belongs_to("department")
            .validates_presence_of("department")
            .finish(),
    )
    .unwrap();
    if guard == Guard::Database {
        app.add_foreign_key("User", "department", OnDelete::Cascade)
            .unwrap();
    }
    let dept_id = {
        let mut s = app.session();
        s.create_strict("Department", &[("name", Datum::text("eng"))])
            .unwrap()
            .id()
            .unwrap()
    };
    let workers = (0..inserters)
        .map(|k| {
            let app = app.clone();
            let level = levels.slot(k);
            Box::new(move || {
                let mut s = app.session_with(level);
                tolerate(s.create("User", &[("department_id", Datum::Int(dept_id))]));
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    let check_app = app.clone();
    let trial = Trial {
        workers,
        check: Box::new(move || {
            let orphans =
                oracles::orphaned_rows(check_app.db(), "users", "department_id", "departments");
            if orphans.is_empty() {
                Ok(())
            } else {
                Err(format!("orphaned user rows (ids): {orphans:?}"))
            }
        }),
    };
    (app, trial)
}
