//! `feral-sim` — deterministic anomaly exploration from the command line.
//!
//! ```text
//! feral-sim matrix [--strategy dfs|dpor|directed] [--max-runs N] [--json]
//!     Run the paper's safety matrix under exhaustive schedule
//!     exploration (partial-order reduced by default); exit non-zero
//!     if any cell deviates.
//!
//! feral-sim systematic --scenario uniqueness|orphans|lost-update|sibling-inserts
//!         [--isolation LEVEL | --levels L0,L1] [--guard feral|database]
//!         [--workers N] [--strategy dfs|dpor|directed] [--max-runs N] [--json]
//!     Exhaustively explore one scenario; print the first anomalous
//!     schedule (with its replay choices) if one exists. `dpor` prunes
//!     Mazurkiewicz-equivalent schedules; `directed` additionally
//!     biases backtracking toward the scenario's critical tables.
//!     `--levels` runs the two template slots of the pair at *different*
//!     levels (feral-plan's mixed configurations) instead of one
//!     uniform `--isolation`.
//!
//! feral-sim random --scenario ... [--seeds N] [...]
//!     Seeded random search; print the firing seed.
//!
//! feral-sim replay --scenario ... --seed S [...]
//! feral-sim replay --scenario ... --choices 1,0,2 [...]
//!     Re-run one schedule byte-identically and print its trace.
//! ```
//!
//! Isolation levels: `read-committed`, `repeatable-read`, `snapshot`,
//! `serializable`.

use feral_cli::Args;
use feral_db::IsolationLevel;
use feral_sim::report::ExplorationReport;
use feral_sim::scenarios::{Guard, ScenarioKind, ScenarioSpec};
use feral_sim::{
    explore_dpor, explore_random, explore_systematic, run_with_choices, run_with_seed, DporConfig,
};
use std::process::ExitCode;

const TOOL: &str = "feral-sim";

fn die(msg: &str) -> ! {
    feral_cli::die(TOOL, msg)
}

fn help() -> String {
    feral_cli::render_help(
        TOOL,
        "deterministic anomaly exploration over feral-db schedules",
        "  feral-sim matrix [--strategy dfs|dpor|directed] [--max-runs N]\n\
         \x20 feral-sim systematic --scenario NAME [--isolation LEVEL | --levels L0,L1]\n\
         \x20     [--guard feral|database] [--workers N] [--strategy S] [--max-runs N]\n\
         \x20 feral-sim random --scenario NAME [--seeds N]\n\
         \x20 feral-sim replay --scenario NAME (--seed S | --choices 1,0,2)\n",
        "  --scenario NAME   uniqueness|orphans|lost-update|sibling-inserts\n\
         \x20 --isolation L     read-committed|repeatable-read|snapshot|serializable\n\
         \x20 --levels L0,L1    run the pair's two template slots at different levels\n\
         \x20 --strategy S      dfs|dpor|directed schedule exploration\n\
         \x20 --max-runs N      schedule budget before declaring the sweep bounded\n",
    )
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    Dfs,
    Dpor,
    Directed,
}

fn strategy_arg(args: &Args, default: Strategy) -> Strategy {
    match args.get_str("strategy") {
        None => default,
        Some("dfs") => Strategy::Dfs,
        Some("dpor") => Strategy::Dpor,
        Some("directed") => Strategy::Directed,
        Some(other) => die(&format!("unknown strategy `{other}` (dfs|dpor|directed)")),
    }
}

/// The optional `--levels L0,L1` pair for mixed-isolation runs.
fn levels_arg(args: &Args) -> Option<[IsolationLevel; 2]> {
    args.get_str("levels")
        .map(|s| feral_cli::parse_levels(TOOL, s))
}

fn scenario_cfg(args: &Args) -> ScenarioSpec {
    let kind = match args.get_str("scenario") {
        Some(name) => ScenarioKind::parse(name).unwrap_or_else(|| {
            die(&format!(
                "unknown scenario `{name}` (uniqueness|orphans|lost-update|sibling-inserts)"
            ))
        }),
        None => die("--scenario is required"),
    };
    if args.get_str("levels").is_some() && args.get_str("isolation").is_some() {
        die("--levels and --isolation are mutually exclusive");
    }
    // for a mixed run the spec-level isolation only labels output; the
    // strongest slot level is the display convention (matches sdg's
    // mixed dependency graphs)
    let isolation = match levels_arg(args) {
        Some(levels) => levels
            .into_iter()
            .max_by_key(|l| *l as u64)
            .expect("two levels"),
        None => args
            .get_str("isolation")
            .map(|s| feral_cli::parse_isolation(TOOL, s))
            .unwrap_or(IsolationLevel::ReadCommitted),
    };
    ScenarioSpec {
        kind,
        isolation,
        guard: match args.get_str("guard") {
            Some("database") => Guard::Database,
            Some("feral") | None => Guard::Feral,
            Some(other) => die(&format!("unknown guard `{other}` (feral|database)")),
        },
        workers: args.get_usize("workers", 2),
    }
}

/// Build the trial: uniform from the spec, or per-slot mixed.
fn build_trial(cfg: &ScenarioSpec, levels: Option<[IsolationLevel; 2]>) -> feral_sim::Trial {
    match levels {
        Some(levels) => cfg.build_mixed(levels),
        None => cfg.build(),
    }
}

/// Explore `cfg` under `strategy` and normalize the outcome to a report.
fn explore(
    cfg: &ScenarioSpec,
    levels: Option<[IsolationLevel; 2]>,
    strategy: Strategy,
    max_runs: usize,
) -> ExplorationReport {
    let mut report = match strategy {
        Strategy::Dfs => {
            let outcome = explore_systematic(|| build_trial(cfg, levels), max_runs);
            ExplorationReport::from_systematic(cfg, &outcome)
        }
        Strategy::Dpor | Strategy::Directed => {
            // mixed runs drive the DPOR conflict predicate at the
            // weakest slot level: conservative (never prunes a schedule
            // a weaker session could distinguish), still sound
            let dpor_iso = levels
                .and_then(|l| l.into_iter().min_by_key(|l| *l as u64))
                .unwrap_or(cfg.isolation);
            let mut dc = DporConfig::new(max_runs, dpor_iso);
            if strategy == Strategy::Directed {
                dc = dc.directed(cfg.direction_hint());
            }
            let name = dc.strategy();
            let outcome = explore_dpor(|| build_trial(cfg, levels), &dc);
            ExplorationReport::from_dpor(cfg, name, &outcome)
        }
    };
    if let Some(levels) = levels {
        report.scenario = mixed_label(cfg, levels);
        if let Some(v) = &mut report.violation {
            v.replay = cfg.replay_command_mixed(levels, v.seed, &v.choices);
        }
    }
    report
}

/// `scenario/L0+L1/guard` label for mixed runs.
fn mixed_label(cfg: &ScenarioSpec, levels: [IsolationLevel; 2]) -> String {
    format!(
        "{}/{:?}+{:?}/{}",
        cfg.kind.name(),
        levels[0],
        levels[1],
        match cfg.guard {
            Guard::Feral => "feral",
            Guard::Database => "db-constraint",
        }
    )
}

/// Human-readable counter suffix for reducing strategies.
fn pruning_note(report: &ExplorationReport) -> String {
    if report.strategy == "dfs" {
        String::new()
    } else {
        format!(
            ", {} equivalent schedule(s) pruned{}",
            report.stats.schedules_pruned,
            if report.stats.pruned_exact {
                ""
            } else {
                " (lower bound)"
            }
        )
    }
}

fn cmd_systematic(cfg: ScenarioSpec, levels: Option<[IsolationLevel; 2]>, args: &Args) -> ExitCode {
    let strategy = strategy_arg(args, Strategy::Dfs);
    let report = explore(&cfg, levels, strategy, args.get_usize("max-runs", 200_000));
    if args.has("json") {
        let rendered = format!("{}\n", report.to_json());
        feral_cli::write_out(TOOL, args.get_str("out"), &rendered);
        return ExitCode::from(u8::from(report.violation.is_some()));
    }
    match &report.violation {
        Some(v) => {
            println!(
                "{}: ANOMALY after {} schedules [{}]: {}",
                report.scenario, report.runs, report.strategy, v.message
            );
            println!("  {}", v.replay);
            ExitCode::from(1)
        }
        None => {
            println!(
                "{}: no anomaly in {} schedules [{}] ({}{})",
                report.scenario,
                report.runs,
                report.strategy,
                if report.complete {
                    "exhaustive"
                } else {
                    "bounded — NOT exhaustive"
                },
                pruning_note(&report)
            );
            ExitCode::SUCCESS
        }
    }
}

fn cmd_random(cfg: ScenarioSpec, levels: Option<[IsolationLevel; 2]>, seeds: u64) -> ExitCode {
    let label = match levels {
        Some(l) => mixed_label(&cfg, l),
        None => cfg.label(),
    };
    let outcome = explore_random(|| build_trial(&cfg, levels), 0..seeds);
    match outcome.violation {
        Some(v) => {
            println!(
                "{}: ANOMALY at seed {} (run {} of {}): {}",
                label,
                v.seed.unwrap(),
                outcome.runs,
                seeds,
                v.message
            );
            println!("  {}", v.replay_hint());
            ExitCode::from(1)
        }
        None => {
            println!("{}: no anomaly in {} seeded runs", label, outcome.runs);
            ExitCode::SUCCESS
        }
    }
}

fn cmd_replay(cfg: ScenarioSpec, levels: Option<[IsolationLevel; 2]>, args: &Args) -> ExitCode {
    let label = match levels {
        Some(l) => mixed_label(&cfg, l),
        None => cfg.label(),
    };
    let (run, verdict) = if let Some(seed) = args.get_str("seed") {
        let seed = seed
            .parse()
            .unwrap_or_else(|_| die(&format!("--seed wants a number, got `{seed}`")));
        run_with_seed(build_trial(&cfg, levels), seed)
    } else if let Some(choices) = args.get_str("choices") {
        let choices: Vec<usize> = choices
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad choice `{s}` in --choices")))
            })
            .collect();
        run_with_choices(build_trial(&cfg, levels), &choices)
    } else {
        die("replay needs --seed or --choices");
    };
    println!("{}", run.trace_text());
    match verdict {
        Ok(()) => {
            println!("{label}: oracle silent");
            ExitCode::SUCCESS
        }
        Err(message) => {
            println!("{label}: oracle fired: {message}");
            ExitCode::from(1)
        }
    }
}

fn cmd_matrix(args: &Args) -> ExitCode {
    use IsolationLevel::{ReadCommitted, Serializable};
    // (scenario cfg, anomaly expected?)
    use ScenarioKind::{Orphans, Uniqueness};
    let strategy = strategy_arg(args, Strategy::Dpor);
    // --smoke keeps the sweep bounded tightly enough for CI gates; every
    // cell is exhaustive well under this budget, so verdicts are identical
    let max_runs = args.get_usize("max-runs", if args.has("smoke") { 50_000 } else { 200_000 });
    let json = args.has("json");
    let mut json_lines = String::new();
    let cells: Vec<(ScenarioSpec, bool)> = vec![
        (cell(Uniqueness, ReadCommitted, Guard::Feral), true),
        (cell(Uniqueness, Serializable, Guard::Feral), false),
        (cell(Uniqueness, ReadCommitted, Guard::Database), false),
        (cell(Orphans, ReadCommitted, Guard::Feral), true),
        (cell(Orphans, Serializable, Guard::Feral), false),
        (cell(Orphans, ReadCommitted, Guard::Database), false),
    ];
    let mut failures = 0;
    for (cfg, expect_anomaly) in cells {
        let report = explore(&cfg, None, strategy, max_runs);
        let found = report.violation.is_some();
        if json {
            json_lines.push_str(&report.to_json());
            json_lines.push('\n');
        } else {
            let verdict = if found == expect_anomaly {
                "ok"
            } else {
                "FAIL"
            };
            let detail = match &report.violation {
                Some(v) => format!("anomaly: {} ({})", v.message, v.replay),
                None if report.complete => format!(
                    "safe across all {} schedules{}",
                    report.runs,
                    pruning_note(&report)
                ),
                None => format!("no anomaly in {} schedules (bounded)", report.runs),
            };
            println!("[{verdict:>4}] {:<38} {detail}", cfg.label());
        }
        if found != expect_anomaly {
            failures += 1;
        }
    }
    if json {
        feral_cli::write_out(TOOL, args.get_str("out"), &json_lines);
    }
    if failures == 0 {
        if !json {
            println!("safety matrix: all cells as the paper predicts");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            println!("safety matrix: {failures} cell(s) deviate");
        }
        ExitCode::from(1)
    }
}

fn cell(kind: ScenarioKind, isolation: IsolationLevel, guard: Guard) -> ScenarioSpec {
    ScenarioSpec {
        kind,
        isolation,
        guard,
        workers: match kind {
            ScenarioKind::Orphans => 1,
            _ => 2,
        },
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help") {
        print!("{}", help());
        return ExitCode::SUCCESS;
    }
    let Some(command) = argv.first() else {
        die("usage: feral-sim <matrix|systematic|random|replay> [flags] (--help for details)")
    };
    let args = Args::from_iter(argv[1..].iter().cloned());
    match command.as_str() {
        "matrix" => cmd_matrix(&args),
        "systematic" => cmd_systematic(scenario_cfg(&args), levels_arg(&args), &args),
        "random" => cmd_random(
            scenario_cfg(&args),
            levels_arg(&args),
            args.get_u64("seeds", 500),
        ),
        "replay" => cmd_replay(scenario_cfg(&args), levels_arg(&args), &args),
        other => die(&format!("unknown command `{other}`")),
    }
}
