//! The soundness gate for DPOR: on every scenario family × guard at all
//! four isolation levels, `explore_dpor` must agree with the exhaustive
//! DFS (`explore_systematic`) on whether a violating schedule exists —
//! and find it with strictly fewer executed schedules wherever the DFS
//! enumerates the full safe space. Surviving violation schedules must
//! replay bit-identically through `run_with_choices`.

use feral_db::IsolationLevel;
use feral_sim::scenarios::{Guard, ScenarioKind, ScenarioSpec};
use feral_sim::{explore_dpor, explore_systematic, run_with_choices, DporConfig};

const MAX_RUNS: usize = 200_000;

const LEVELS: [IsolationLevel; 4] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::RepeatableRead,
    IsolationLevel::Snapshot,
    IsolationLevel::Serializable,
];

fn specs_for(kind: ScenarioKind, guard: Guard, workers: usize) -> Vec<ScenarioSpec> {
    LEVELS
        .iter()
        .map(|&isolation| ScenarioSpec {
            kind,
            isolation,
            guard,
            workers,
        })
        .collect()
}

fn check_cell(spec: &ScenarioSpec, directed: bool) {
    let label = spec.label();
    let dfs = explore_systematic(|| spec.build(), MAX_RUNS);
    let mut config = DporConfig::new(MAX_RUNS, spec.isolation);
    if directed {
        config = config.directed(spec.direction_hint());
    }
    let dpor = explore_dpor(|| spec.build(), &config);

    assert_eq!(
        dfs.violation.is_some(),
        dpor.violation.is_some(),
        "{label}: verdict disagreement — dfs {:?} vs dpor {:?} \
         (dfs {} runs, dpor {} runs)",
        dfs.violation.as_ref().map(|v| &v.message),
        dpor.violation.as_ref().map(|v| &v.message),
        dfs.runs,
        dpor.runs,
    );

    match &dpor.violation {
        Some(v) => {
            // the schedule DPOR found must replay to the same firing run
            let (replay, verdict) = run_with_choices(spec.build(), &v.choices);
            assert_eq!(
                replay.trace_text(),
                v.run.trace_text(),
                "{label}: dpor witness replay diverged"
            );
            assert_eq!(
                verdict.expect_err("replayed schedule must fire the oracle"),
                v.message,
                "{label}: dpor witness replayed to a different anomaly"
            );
            assert_eq!(
                v.strategy,
                if directed { "directed-dpor" } else { "dpor" },
                "{label}: violation must name the strategy that found it"
            );
            // the dfs witness must also survive the new plumbing
            let dv = dfs.violation.as_ref().unwrap();
            let (dreplay, dverdict) = run_with_choices(spec.build(), &dv.choices);
            assert_eq!(dreplay.trace_text(), dv.run.trace_text());
            assert_eq!(dverdict.expect_err("dfs replay fires"), dv.message);
        }
        None => {
            assert!(
                dpor.complete,
                "{label}: safe cell but DPOR exploration incomplete after {} runs",
                dpor.runs
            );
            assert!(
                dfs.complete,
                "{label}: safe cell but DFS enumeration incomplete"
            );
            // the reduction must actually reduce: strictly fewer
            // executed schedules than the exhaustive enumeration, with
            // the difference accounted for by the pruning counters
            assert!(
                dpor.runs < dfs.runs,
                "{label}: DPOR explored {} schedules, DFS {} — no reduction",
                dpor.runs,
                dfs.runs
            );
            assert!(
                dpor.stats.schedules_pruned > 0,
                "{label}: fewer runs but zero schedules_pruned"
            );
            if dpor.stats.pruned_exact {
                assert_eq!(
                    dpor.stats.schedules_explored as u64 - dpor.stats.redundant_runs as u64
                        + dpor.stats.schedules_pruned,
                    dfs.runs as u64,
                    "{label}: explored − redundant + pruned must equal the DFS schedule count"
                );
            }
        }
    }
}

// One test per scenario family so failures localize and the suite
// parallelizes across the test harness's threads.

#[test]
fn uniqueness_feral_matches_dfs_at_all_levels() {
    for spec in specs_for(ScenarioKind::Uniqueness, Guard::Feral, 2) {
        check_cell(&spec, false);
    }
}

#[test]
fn uniqueness_db_guard_matches_dfs_at_all_levels() {
    for spec in specs_for(ScenarioKind::Uniqueness, Guard::Database, 2) {
        check_cell(&spec, false);
    }
}

#[test]
fn orphans_feral_matches_dfs_at_all_levels() {
    for spec in specs_for(ScenarioKind::Orphans, Guard::Feral, 1) {
        check_cell(&spec, false);
    }
}

#[test]
fn orphans_db_guard_matches_dfs_at_all_levels() {
    for spec in specs_for(ScenarioKind::Orphans, Guard::Database, 1) {
        check_cell(&spec, false);
    }
}

#[test]
fn lost_update_feral_matches_dfs_at_all_levels() {
    for spec in specs_for(ScenarioKind::LostUpdate, Guard::Feral, 2) {
        check_cell(&spec, false);
    }
}

#[test]
fn lost_update_db_guard_matches_dfs_at_all_levels() {
    for spec in specs_for(ScenarioKind::LostUpdate, Guard::Database, 2) {
        check_cell(&spec, false);
    }
}

#[test]
fn sibling_inserts_feral_matches_dfs_at_all_levels() {
    for spec in specs_for(ScenarioKind::SiblingInserts, Guard::Feral, 2) {
        check_cell(&spec, false);
    }
}

#[test]
fn sibling_inserts_db_guard_matches_dfs_at_all_levels() {
    for spec in specs_for(ScenarioKind::SiblingInserts, Guard::Database, 2) {
        check_cell(&spec, false);
    }
}

/// The directed strategy is a reordering of the same search: identical
/// verdicts on every cell of one representative family per verdict
/// class, and a witness no later than plain DPOR's on the unsafe cells.
#[test]
fn directed_mode_agrees_on_uniqueness_and_sibling_cells() {
    for spec in specs_for(ScenarioKind::Uniqueness, Guard::Feral, 2) {
        check_cell(&spec, true);
    }
    for spec in specs_for(ScenarioKind::SiblingInserts, Guard::Feral, 2) {
        check_cell(&spec, true);
    }
}
