//! Property tests of the DPOR reduction's accounting (satellite to the
//! differential suite in `dpor_equivalence.rs`): across randomly drawn
//! small scenarios — kind × isolation × guard × worker count — the
//! reduction must
//!
//! 1. agree with exhaustive DFS on whether the cell is anomalous,
//! 2. on clean safe cells, account for *every* DFS schedule exactly:
//!    `schedules_explored − redundant_runs + schedules_pruned` equals
//!    the full enumeration's run count (each pruned schedule is a
//!    member of exactly one explored Mazurkiewicz class), and
//! 3. on anomalous cells, surface a witness whose choice vector
//!    replays to the identical trace and oracle message — pruning
//!    never trades away replayability.

use feral_db::IsolationLevel;
use feral_sim::scenarios::{Guard, ScenarioKind, ScenarioSpec};
use feral_sim::{explore_dpor, explore_systematic, run_with_choices, DporConfig};
use proptest::prelude::*;

/// Full-enumeration budget. Cells that outgrow it (larger worker
/// counts) flip to the "DPOR finishes where DFS cannot" branch below —
/// which is itself part of the property.
const DFS_MAX_RUNS: usize = 30_000;
const DPOR_MAX_RUNS: usize = 200_000;

const KINDS: [ScenarioKind; 4] = [
    ScenarioKind::Uniqueness,
    ScenarioKind::Orphans,
    ScenarioKind::LostUpdate,
    ScenarioKind::SiblingInserts,
];

const LEVELS: [IsolationLevel; 4] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::RepeatableRead,
    IsolationLevel::Snapshot,
    IsolationLevel::Serializable,
];

fn drawn_spec(kind: usize, level: usize, db_guard: bool, workers: usize) -> ScenarioSpec {
    ScenarioSpec {
        kind: KINDS[kind],
        isolation: LEVELS[level],
        guard: if db_guard {
            Guard::Database
        } else {
            Guard::Feral
        },
        workers,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dpor_accounts_for_every_dfs_schedule(
        kind in 0usize..4,
        level in 0usize..4,
        db_guard in any::<bool>(),
        workers in 1usize..3,
    ) {
        let spec = drawn_spec(kind, level, db_guard, workers);
        let label = spec.label();
        let dfs = explore_systematic(|| spec.build(), DFS_MAX_RUNS);
        let config = DporConfig::new(DPOR_MAX_RUNS, spec.isolation);
        let dpor = explore_dpor(|| spec.build(), &config);

        // 1. verdict agreement wherever DFS reached a verdict: a found
        // violation, or a completed silent sweep
        if dfs.violation.is_some() || dfs.complete {
            prop_assert_eq!(
                dfs.violation.as_ref().map(|v| &v.message),
                dpor.violation.as_ref().map(|v| &v.message),
                "{}: DFS and DPOR disagree", label
            );
        }

        match &dpor.violation {
            Some(v) => {
                // 3. the reduced search's witness replays identically
                let (replay, verdict) = run_with_choices(spec.build(), &v.choices);
                prop_assert_eq!(
                    replay.trace_text(),
                    v.run.trace_text(),
                    "{}: witness replay diverged", label
                );
                prop_assert_eq!(
                    verdict.expect_err("witness must fire"),
                    v.message.clone(),
                    "{}: witness replayed a different anomaly", label
                );
            }
            None => {
                // the reduction must cover cells the full enumeration
                // covers — and also the ones it can't
                prop_assert!(
                    dpor.complete,
                    "{}: DPOR incomplete after {} runs", label, dpor.runs
                );
                if dfs.complete {
                    prop_assert!(
                        dpor.runs <= dfs.runs,
                        "{}: reduction executed more schedules ({}) than DFS ({})",
                        label, dpor.runs, dfs.runs
                    );
                    // 2. exact accounting on clean cells: explored
                    // classes plus their pruned members tile the full
                    // DFS space
                    if dpor.stats.pruned_exact {
                        let covered = (dpor.stats.schedules_explored as u64)
                            - (dpor.stats.redundant_runs as u64)
                            + dpor.stats.schedules_pruned;
                        prop_assert_eq!(
                            covered,
                            dfs.runs as u64,
                            "{}: explored − redundant + pruned must tile the DFS space", label
                        );
                    }
                }
            }
        }
    }
}
