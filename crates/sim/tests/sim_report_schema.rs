//! Schema tests for the `feral-sim` JSON exploration report: the
//! counters the DPOR work added (`schedules_explored`,
//! `schedules_pruned`, `pruned_exact`, `sleep_set_blocked`,
//! `redundant_runs`) must be present for every strategy, parse as the
//! right types, and satisfy the reduction's arithmetic.

use feral_db::IsolationLevel;
use feral_sim::report::ExplorationReport;
use feral_sim::scenarios::{Guard, ScenarioKind, ScenarioSpec};
use feral_sim::{explore_dpor, explore_systematic, DporConfig};
use feral_trace::json::Json;

fn spec(isolation: IsolationLevel) -> ScenarioSpec {
    ScenarioSpec {
        kind: ScenarioKind::Uniqueness,
        isolation,
        guard: Guard::Feral,
        workers: 2,
    }
}

fn parse(report: &ExplorationReport) -> Json {
    feral_trace::json::parse(&report.to_json()).expect("report must be valid JSON")
}

#[test]
fn dpor_report_carries_the_search_counters() {
    let cfg = spec(IsolationLevel::Serializable);
    let config = DporConfig::new(200_000, cfg.isolation);
    let outcome = explore_dpor(|| cfg.build(), &config);
    let report = ExplorationReport::from_dpor(&cfg, config.strategy(), &outcome);
    let doc = parse(&report);

    assert_eq!(doc.get("tool").unwrap().as_str(), Some("feral-sim"));
    assert_eq!(
        doc.get("scenario").unwrap().as_str(),
        Some("uniqueness/Serializable/feral")
    );
    assert_eq!(doc.get("strategy").unwrap().as_str(), Some("dpor"));
    assert_eq!(*doc.get("complete").unwrap(), Json::Bool(true));
    assert_eq!(*doc.get("violation").unwrap(), Json::Null);

    let runs = doc.get("runs").unwrap().as_u64().unwrap();
    let explored = doc.get("schedules_explored").unwrap().as_u64().unwrap();
    let pruned = doc.get("schedules_pruned").unwrap().as_u64().unwrap();
    let redundant = doc.get("redundant_runs").unwrap().as_u64().unwrap();
    assert!(doc.get("sleep_set_blocked").unwrap().as_u64().is_some());
    assert_eq!(*doc.get("pruned_exact").unwrap(), Json::Bool(true));
    assert_eq!(explored, runs, "every executed run is an explored schedule");
    assert!(pruned > 0, "the reduction must prune on this cell");
    assert!(redundant < runs);

    // the safe serializable cell is exactly accounted: the distinct
    // classes plus their pruned members tile the full DFS space
    let dfs = explore_systematic(|| cfg.build(), 200_000);
    assert!(dfs.complete);
    assert_eq!(explored - redundant + pruned, dfs.runs as u64);
}

#[test]
fn violation_report_names_strategy_and_replays() {
    let cfg = spec(IsolationLevel::ReadCommitted);
    let config = DporConfig::new(200_000, cfg.isolation).directed(cfg.direction_hint());
    let outcome = explore_dpor(|| cfg.build(), &config);
    let report = ExplorationReport::from_dpor(&cfg, config.strategy(), &outcome);
    let doc = parse(&report);

    assert_eq!(doc.get("strategy").unwrap().as_str(), Some("directed-dpor"));
    assert_eq!(*doc.get("complete").unwrap(), Json::Bool(false));
    let v = doc.get("violation").unwrap();
    assert!(v
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("duplicate uniqueness keys"));
    assert_eq!(*v.get("seed").unwrap(), Json::Null);
    assert!(!v.get("choices").unwrap().as_arr().unwrap().is_empty());
    assert!(v
        .get("replay")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("feral-sim replay --scenario uniqueness"));
}

#[test]
fn dfs_report_uses_trivial_counters() {
    let cfg = spec(IsolationLevel::Serializable);
    let outcome = explore_systematic(|| cfg.build(), 200_000);
    let report = ExplorationReport::from_systematic(&cfg, &outcome);
    let doc = parse(&report);

    assert_eq!(doc.get("strategy").unwrap().as_str(), Some("dfs"));
    let runs = doc.get("runs").unwrap().as_u64().unwrap();
    assert_eq!(
        doc.get("schedules_explored").unwrap().as_u64().unwrap(),
        runs
    );
    assert_eq!(doc.get("schedules_pruned").unwrap().as_u64(), Some(0));
    assert_eq!(doc.get("redundant_runs").unwrap().as_u64(), Some(0));
}
