//! Regression pins for replay compatibility: witness hints emitted by
//! earlier releases — choice vectors printed in test logs, documented in
//! EXPERIMENTS.md, and embedded in checked-in artifacts — must keep
//! replaying the same anomaly, byte-for-byte. The scheduler's branch
//! numbering, the scenarios' worker layout, and the engine's step
//! ordering are all load-bearing for these strings; a change to any of
//! them that shifts a pinned schedule is a compatibility break, not a
//! refactor.

use feral_db::IsolationLevel;
use feral_sim::scenarios::{Guard, ScenarioKind, ScenarioSpec};
use feral_sim::{explore_systematic, run_with_choices, run_with_seed};

fn spec(kind: ScenarioKind, isolation: IsolationLevel, workers: usize) -> ScenarioSpec {
    ScenarioSpec {
        kind,
        isolation,
        guard: Guard::Feral,
        workers,
    }
}

fn assert_pinned_choices(spec: ScenarioSpec, choices: &[usize], message: &str) {
    let (_, verdict) = run_with_choices(spec.build(), choices);
    assert_eq!(
        verdict.expect_err("pinned schedule must still fire the oracle"),
        message,
        "{}: pinned replay hint {:?} now reports a different anomaly",
        spec.label(),
        choices
    );
}

/// The choice vector documented in EXPERIMENTS.md's sdg walkthrough
/// (snapshot-isolation duplicate keys, `choices [0,0,0,0,0,1,1,0]`).
#[test]
fn documented_snapshot_duplicate_hint_still_replays() {
    assert_pinned_choices(
        spec(ScenarioKind::Uniqueness, IsolationLevel::Snapshot, 2),
        &[0, 0, 0, 0, 0, 1, 1, 0],
        "duplicate uniqueness keys: [(Text(\"dup\"), 2)]",
    );
}

/// The first witness the exhaustive DFS sweep has always printed for
/// the read-committed uniqueness cell.
#[test]
fn read_committed_duplicate_hint_still_replays() {
    assert_pinned_choices(
        spec(ScenarioKind::Uniqueness, IsolationLevel::ReadCommitted, 2),
        &[0, 0, 0, 0, 0, 1, 1, 1, 0],
        "duplicate uniqueness keys: [(Text(\"dup\"), 2)]",
    );
}

/// The orphaned-rows witness for the read-committed cascade cell.
#[test]
fn read_committed_orphan_hint_still_replays() {
    assert_pinned_choices(
        spec(ScenarioKind::Orphans, IsolationLevel::ReadCommitted, 1),
        &[0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0],
        "orphaned user rows (ids): [Int(1)]",
    );
}

/// Seed-based hints pin the seeded RNG's choice stream, not just one
/// choice vector: seed 0 has always lost an update on the unguarded
/// read-committed lock-rmw scenario.
#[test]
fn seed_zero_lost_update_hint_still_replays() {
    let spec = spec(ScenarioKind::LostUpdate, IsolationLevel::ReadCommitted, 2);
    let (_, verdict) = run_with_seed(spec.build(), 0);
    assert_eq!(
        verdict.expect_err("seed 0 must still fire the oracle"),
        "lost updates: 1 of 2 acknowledged increments missing",
    );
}

/// DFS search order is part of the pinned surface: the *first* witness
/// systematic enumeration reports is what older logs and artifacts
/// recorded, so it must stay put too.
#[test]
fn dfs_first_witness_is_stable() {
    let spec = spec(ScenarioKind::Uniqueness, IsolationLevel::ReadCommitted, 2);
    let outcome = explore_systematic(|| spec.build(), 200_000);
    let v = outcome.violation.expect("cell is anomalous");
    assert_eq!(v.choices, vec![0, 0, 0, 0, 0, 1, 1, 1, 0]);
    assert_eq!(v.strategy, "dfs");
    assert_eq!(
        v.replay_hint(),
        "replay with choices [0, 0, 0, 0, 0, 1, 1, 1, 0] [found by dfs]"
    );
}
