//! Acceptance: seeded random schedule search finds the paper's anomalies
//! and the printed seed replays them **byte-identically** — same trace,
//! same branch choices, same oracle message — across consecutive runs.

use feral_db::{Datum, IsolationLevel};
use feral_sim::scenarios::{orphan_trial, uniqueness_trial, Guard};
use feral_sim::{explore_random, run_with_seed, Trial};
use std::time::Duration;

/// Search seeds until the oracle fires, then replay the winning seed
/// twice and demand bit-for-bit agreement.
fn find_and_replay(mut factory: impl FnMut() -> Trial, what: &str) {
    let outcome = explore_random(&mut factory, 0..500);
    let v = outcome
        .violation
        .unwrap_or_else(|| panic!("{what}: no anomaly in {} seeded runs", outcome.runs));
    let seed = v.seed.expect("random mode records the seed");
    println!("{what}: anomaly `{}` — {}", v.message, v.replay_hint());

    let (r1, verdict1) = run_with_seed(factory(), seed);
    let (r2, verdict2) = run_with_seed(factory(), seed);
    assert_eq!(
        r1.trace_text(),
        v.run.trace_text(),
        "{what}: replay 1 diverged from the search run"
    );
    assert_eq!(
        r1.trace_text(),
        r2.trace_text(),
        "{what}: consecutive replays diverged"
    );
    assert_eq!(r1.choices(), r2.choices());
    let m1 = verdict1.expect_err("replay 1 must fire the oracle");
    let m2 = verdict2.expect_err("replay 2 must fire the oracle");
    assert_eq!(m1, v.message, "{what}: replayed anomaly differs");
    assert_eq!(m1, m2);
}

#[test]
fn duplicate_key_anomaly_replays_from_seed() {
    find_and_replay(
        || uniqueness_trial(IsolationLevel::ReadCommitted, Guard::Feral, 2),
        "duplicate-keys",
    );
}

#[test]
fn orphaned_row_anomaly_replays_from_seed() {
    find_and_replay(
        || orphan_trial(IsolationLevel::ReadCommitted, Guard::Feral, 1),
        "orphaned-rows",
    );
}

#[test]
fn three_writer_duplicate_search_replays_from_seed() {
    find_and_replay(
        || uniqueness_trial(IsolationLevel::ReadCommitted, Guard::Feral, 3),
        "duplicate-keys-3-writers",
    );
}

/// The full application stack — `Deployment::round` dispatching requests
/// over channels to a worker pool — also runs under the simulated
/// scheduler: worker threads register as daemons, channel waits and
/// request handling become schedule branch points, and anomalies found
/// through the HTTP-ish front door replay from a seed just the same.
fn deployment_trial() -> Trial {
    use feral_server::{Deployment, DeploymentConfig, Request};

    let app = {
        let db = feral_db::Database::new(feral_db::Config {
            default_isolation: IsolationLevel::ReadCommitted,
            ..feral_db::Config::default()
        });
        let app = feral_orm::App::new(db);
        app.define(
            feral_orm::ModelDef::build("KeyValue")
                .string("key")
                .string("value")
                .validates_uniqueness_of("key")
                .finish(),
        )
        .unwrap();
        app
    };
    let driver_app = app.clone();
    let driver = Box::new(move || {
        let deployment = Deployment::start(
            driver_app,
            DeploymentConfig {
                workers: 2,
                request_jitter: Duration::ZERO,
                seed: 0,
            },
        );
        let requests = vec![
            Request::builder("KeyValue")
                .session(1)
                .attr("key", Datum::text("k"))
                .attr("value", Datum::text("a"))
                .create(),
            Request::builder("KeyValue")
                .session(2)
                .attr("key", Datum::text("k"))
                .attr("value", Datum::text("b"))
                .create(),
        ];
        let _ = deployment.round(requests);
        deployment.shutdown();
    }) as Box<dyn FnOnce() + Send>;
    Trial {
        workers: vec![driver],
        check: Box::new(move || {
            let dups = feral_sim::oracles::duplicate_keys(app.db(), "key_values", "key");
            if dups.is_empty() {
                Ok(())
            } else {
                Err(format!("duplicate keys through deployment: {dups:?}"))
            }
        }),
    }
}

#[test]
fn deployment_round_anomaly_replays_from_seed() {
    find_and_replay(deployment_trial, "deployment-duplicate-keys");
}
