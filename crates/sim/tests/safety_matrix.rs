//! The paper's safety matrix, checked by *exhaustive* schedule
//! exploration — no sleeps, no wall-clock, no lost races:
//!
//! | scenario            | RC + feral | Serializable | RC + db constraint |
//! |---------------------|------------|--------------|--------------------|
//! | duplicate keys      | anomaly    | safe         | safe               |
//! | orphaned rows       | anomaly    | safe         | safe               |
//!
//! "anomaly" means exploration finds at least one schedule on which the
//! oracle fires, and that schedule replays; "safe" means the enumeration
//! completes with the oracle silent on *every* schedule.
//!
//! The sweep runs under dynamic partial-order reduction: it covers the
//! same verdicts as full DFS (proven by `dpor_equivalence.rs`) while
//! executing only one schedule per Mazurkiewicz class — which is what
//! keeps the safe cells exhaustive inside the test budget.

use feral_db::IsolationLevel;
use feral_sim::scenarios::{orphan_trial, uniqueness_trial, Guard};
use feral_sim::{explore_dpor, run_with_choices, DporConfig};

const MAX_RUNS: usize = 200_000;

fn assert_anomaly(mut factory: impl FnMut() -> feral_sim::Trial, iso: IsolationLevel, what: &str) {
    let config = DporConfig::new(MAX_RUNS, iso);
    let outcome = explore_dpor(&mut factory, &config);
    let v = outcome
        .violation
        .unwrap_or_else(|| panic!("{what}: no anomalous schedule in {} runs", outcome.runs));
    // the reported choice list must replay to the same firing schedule
    let (replay, verdict) = run_with_choices(factory(), &v.choices);
    assert_eq!(
        replay.trace_text(),
        v.run.trace_text(),
        "{what}: replay diverged from reported schedule"
    );
    assert_eq!(
        verdict.expect_err("replayed schedule must fire the oracle"),
        v.message,
        "{what}: replay produced a different anomaly"
    );
}

fn assert_safe(mut factory: impl FnMut() -> feral_sim::Trial, iso: IsolationLevel, what: &str) {
    let config = DporConfig::new(MAX_RUNS, iso);
    let outcome = explore_dpor(&mut factory, &config);
    if let Some(v) = &outcome.violation {
        panic!(
            "{what}: unexpected anomaly `{}` — {}\n{}",
            v.message,
            v.replay_hint(),
            v.run.trace_text()
        );
    }
    assert!(
        outcome.complete,
        "{what}: exploration incomplete after {} runs — safety not established",
        outcome.runs
    );
    assert!(
        outcome.stats.schedules_pruned > 0,
        "{what}: DPOR pruned nothing — the reduction is not engaging"
    );
}

// --- duplicate keys ----------------------------------------------------

#[test]
fn feral_validation_admits_duplicates_under_read_committed() {
    let iso = IsolationLevel::ReadCommitted;
    assert_anomaly(
        || uniqueness_trial(iso, Guard::Feral, 2),
        iso,
        "uniqueness/RC/feral",
    );
}

#[test]
fn feral_validation_is_safe_under_serializable() {
    let iso = IsolationLevel::Serializable;
    assert_safe(
        || uniqueness_trial(iso, Guard::Feral, 2),
        iso,
        "uniqueness/Serializable/feral",
    );
}

#[test]
fn unique_index_is_safe_under_read_committed() {
    let iso = IsolationLevel::ReadCommitted;
    assert_safe(
        || uniqueness_trial(iso, Guard::Database, 2),
        iso,
        "uniqueness/RC/db-constraint",
    );
}

// --- orphaned rows -----------------------------------------------------

#[test]
fn feral_cascade_orphans_rows_under_read_committed() {
    let iso = IsolationLevel::ReadCommitted;
    assert_anomaly(
        || orphan_trial(iso, Guard::Feral, 1),
        iso,
        "orphans/RC/feral",
    );
}

#[test]
fn feral_cascade_is_safe_under_serializable() {
    let iso = IsolationLevel::Serializable;
    assert_safe(
        || orphan_trial(iso, Guard::Feral, 1),
        iso,
        "orphans/Serializable/feral",
    );
}

#[test]
fn foreign_key_is_safe_under_read_committed() {
    let iso = IsolationLevel::ReadCommitted;
    assert_safe(
        || orphan_trial(iso, Guard::Database, 1),
        iso,
        "orphans/RC/db-fk",
    );
}

// --- intermediate isolation levels (paper §4: snapshot reads still
// --- leave the validate→write gap open) --------------------------------

#[test]
fn feral_validation_admits_duplicates_under_snapshot() {
    let iso = IsolationLevel::Snapshot;
    assert_anomaly(
        || uniqueness_trial(iso, Guard::Feral, 2),
        iso,
        "uniqueness/Snapshot/feral",
    );
}

#[test]
fn feral_validation_admits_duplicates_under_repeatable_read() {
    let iso = IsolationLevel::RepeatableRead;
    assert_anomaly(
        || uniqueness_trial(iso, Guard::Feral, 2),
        iso,
        "uniqueness/RR/feral",
    );
}
