//! The paper's safety matrix, checked by *exhaustive* schedule
//! exploration — no sleeps, no wall-clock, no lost races:
//!
//! | scenario            | RC + feral | Serializable | RC + db constraint |
//! |---------------------|------------|--------------|--------------------|
//! | duplicate keys      | anomaly    | safe         | safe               |
//! | orphaned rows       | anomaly    | safe         | safe               |
//!
//! "anomaly" means systematic exploration finds at least one schedule on
//! which the oracle fires, and that schedule replays; "safe" means the
//! enumeration completes with the oracle silent on *every* schedule.

use feral_db::IsolationLevel;
use feral_sim::scenarios::{orphan_trial, uniqueness_trial, Guard};
use feral_sim::{explore_systematic, run_with_choices};

const MAX_RUNS: usize = 200_000;

fn assert_anomaly(mut factory: impl FnMut() -> feral_sim::Trial, what: &str) {
    let outcome = explore_systematic(&mut factory, MAX_RUNS);
    let v = outcome
        .violation
        .unwrap_or_else(|| panic!("{what}: no anomalous schedule in {} runs", outcome.runs));
    // the reported choice list must replay to the same firing schedule
    let (replay, verdict) = run_with_choices(factory(), &v.choices);
    assert_eq!(
        replay.trace_text(),
        v.run.trace_text(),
        "{what}: replay diverged from reported schedule"
    );
    assert_eq!(
        verdict.expect_err("replayed schedule must fire the oracle"),
        v.message,
        "{what}: replay produced a different anomaly"
    );
}

fn assert_safe(mut factory: impl FnMut() -> feral_sim::Trial, what: &str) {
    let outcome = explore_systematic(&mut factory, MAX_RUNS);
    if let Some(v) = &outcome.violation {
        panic!(
            "{what}: unexpected anomaly `{}` — {}\n{}",
            v.message,
            v.replay_hint(),
            v.run.trace_text()
        );
    }
    assert!(
        outcome.complete,
        "{what}: exploration incomplete after {} runs — safety not established",
        outcome.runs
    );
}

// --- duplicate keys ----------------------------------------------------

#[test]
fn feral_validation_admits_duplicates_under_read_committed() {
    assert_anomaly(
        || uniqueness_trial(IsolationLevel::ReadCommitted, Guard::Feral, 2),
        "uniqueness/RC/feral",
    );
}

#[test]
fn feral_validation_is_safe_under_serializable() {
    assert_safe(
        || uniqueness_trial(IsolationLevel::Serializable, Guard::Feral, 2),
        "uniqueness/Serializable/feral",
    );
}

#[test]
fn unique_index_is_safe_under_read_committed() {
    assert_safe(
        || uniqueness_trial(IsolationLevel::ReadCommitted, Guard::Database, 2),
        "uniqueness/RC/db-constraint",
    );
}

// --- orphaned rows -----------------------------------------------------

#[test]
fn feral_cascade_orphans_rows_under_read_committed() {
    assert_anomaly(
        || orphan_trial(IsolationLevel::ReadCommitted, Guard::Feral, 1),
        "orphans/RC/feral",
    );
}

#[test]
fn feral_cascade_is_safe_under_serializable() {
    assert_safe(
        || orphan_trial(IsolationLevel::Serializable, Guard::Feral, 1),
        "orphans/Serializable/feral",
    );
}

#[test]
fn foreign_key_is_safe_under_read_committed() {
    assert_safe(
        || orphan_trial(IsolationLevel::ReadCommitted, Guard::Database, 1),
        "orphans/RC/db-fk",
    );
}

// --- intermediate isolation levels (paper §4: snapshot reads still
// --- leave the validate→write gap open) --------------------------------

#[test]
fn feral_validation_admits_duplicates_under_snapshot() {
    assert_anomaly(
        || uniqueness_trial(IsolationLevel::Snapshot, Guard::Feral, 2),
        "uniqueness/Snapshot/feral",
    );
}

#[test]
fn feral_validation_admits_duplicates_under_repeatable_read() {
    assert_anomaly(
        || uniqueness_trial(IsolationLevel::RepeatableRead, Guard::Feral, 2),
        "uniqueness/RR/feral",
    );
}
