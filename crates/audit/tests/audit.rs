//! Integration tests for feral-audit: cycle detection on staged
//! anomalies, deterministic replay of identical footprint streams, the
//! watermark-GC soundness theorem (GC never loses a cycle), sampling
//! semantics, and drop accounting under buffer saturation.

use feral_audit::{
    column_value_hash, AuditMode, Auditor, ReadRecord, ReadTarget, TxnFootprint, WriteRecord,
    MAX_VERDICTS,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

const TABLE: u64 = 0xfeed;

fn row_read(row: u64, read_ts: u64) -> ReadRecord {
    ReadRecord {
        table: TABLE,
        target: ReadTarget::Row(row),
        read_ts,
    }
}

fn row_write(row: u64, value: u64) -> WriteRecord {
    WriteRecord {
        table: TABLE,
        row,
        old: None,
        new: Some(vec![column_value_hash(0, &value.to_le_bytes())]),
    }
}

fn footprint(
    txn: u64,
    begin_ts: u64,
    commit_ts: u64,
    reads: Vec<ReadRecord>,
    writes: Vec<WriteRecord>,
) -> TxnFootprint {
    TxnFootprint {
        txn,
        begin_ts,
        commit_ts,
        isolation: "snapshot-isolation",
        template: Some("test-template"),
        reads,
        writes,
        sampled_out: false,
    }
}

/// Classic write skew: both transactions read the other's row off the
/// same snapshot, then write their own. Serializable forbids it; the
/// graph must see the rw/rw cycle.
#[test]
fn write_skew_produces_an_anomaly_verdict() {
    let auditor = Auditor::new(AuditMode::Full);
    auditor.observe_begin(1, 10);
    auditor.observe_begin(2, 10);
    auditor.observe_commit(footprint(
        1,
        10,
        11,
        vec![row_read(7, 10)],
        vec![row_write(8, 100)],
    ));
    auditor.observe_commit(footprint(
        2,
        10,
        12,
        vec![row_read(8, 10)],
        vec![row_write(7, 200)],
    ));
    let snap = auditor.snapshot();
    assert_eq!(snap.cycles, 1, "write skew must close a cycle");
    let v = &snap.verdicts[0];
    assert!(v
        .cycle
        .iter()
        .any(|e| e.kind == feral_audit::EdgeKind::ReadWrite));
    assert_eq!(v.templates, vec!["test-template".to_string()]);
    assert_eq!(
        v.cells,
        vec!["test-template@snapshot-isolation".to_string()]
    );
    // The serialised snapshot round-trips through schema validation.
    feral_audit::validate_audit_json(&snap.to_json()).expect("snapshot validates");
}

/// A serializable-looking history (each txn reads the latest committed
/// state before writing) stays clean.
#[test]
fn serial_history_stays_clean() {
    let auditor = Auditor::new(AuditMode::Full);
    for i in 1..=20u64 {
        auditor.observe_begin(i, 5);
    }
    for i in 1..=20u64 {
        // Read-committed style: each statement reads the freshest
        // committed state (read_ts right before the commit).
        auditor.observe_commit(footprint(
            i,
            5,
            i * 10 + 1,
            vec![row_read(i % 4, i * 10)],
            vec![row_write(i % 4, i)],
        ));
    }
    let snap = auditor.snapshot();
    assert_eq!(snap.cycles, 0);
    assert!(snap.edges > 0, "serial history still has forward edges");
    assert!(snap.gc_reclaims > 0, "idle watermark reclaims the window");
}

/// Generate a contended footprint stream: overlapping snapshots over a
/// small row set, so rw anti-dependencies (and occasional cycles) are
/// common.
fn random_stream(seed: u64, len: u64) -> Vec<TxnFootprint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for i in 1..=len {
        let begin = i.saturating_sub(rng.random_range(0u64..6));
        let commit = i + 1;
        let reads = (0..rng.random_range(0usize..3))
            .map(|_| row_read(rng.random_range(0u64..8), begin))
            .collect();
        let writes = (0..rng.random_range(0usize..3))
            .map(|_| row_write(rng.random_range(0u64..8), i))
            .collect();
        out.push(footprint(i, begin, commit, reads, writes));
    }
    out
}

fn run_stream(auditor: &Auditor, stream: &[TxnFootprint]) {
    for fp in stream {
        auditor.observe_begin(fp.txn, fp.begin_ts);
    }
    for fp in stream {
        auditor.observe_commit(fp.clone());
    }
}

/// Same seed → byte-identical audit report (edge counts, cycle
/// counts, verdicts, per-cell counters).
#[test]
fn identical_streams_replay_to_identical_reports() {
    let stream = random_stream(0xfe2a1, 400);
    let (a, b) = (Auditor::new(AuditMode::Full), Auditor::new(AuditMode::Full));
    run_stream(&a, &stream);
    run_stream(&b, &stream);
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.to_json(), sb.to_json());
    assert!(sa.edges > 0, "contended stream must produce edges");
}

/// Sampled mode audits a strict slice of full mode: fewer or equal
/// edges and cycles, while commit accounting (footprints, per-cell
/// counts) never degrades — sampled-out transactions still deliver a
/// commit marker.
#[test]
fn sampling_is_a_subset_of_full_capture() {
    let stream = random_stream(0xbeef, 300);
    let full = Auditor::new(AuditMode::Full);
    run_stream(&full, &stream);
    let sampled = Auditor::new(AuditMode::Sampled(4));
    for fp in &stream {
        sampled.observe_begin(fp.txn, fp.begin_ts);
    }
    for fp in &stream {
        let mut fp = fp.clone();
        if !sampled.samples(fp.txn) {
            fp.reads.clear();
            fp.writes.clear();
            fp.sampled_out = true;
        }
        sampled.observe_commit(fp);
    }
    let (sf, ss) = (full.snapshot(), sampled.snapshot());
    assert!(ss.edges <= sf.edges);
    assert!(ss.cycles <= sf.cycles);
    assert_eq!(ss.footprints, sf.footprints, "every commit is counted");
    assert!(sampled.samples(4) && !sampled.samples(5));
}

/// Retained verdicts are capped; the cycle counter keeps going.
#[test]
fn verdicts_are_capped_but_counted() {
    let auditor = Auditor::new(AuditMode::Full);
    let mut txn = 0u64;
    for i in 0..(MAX_VERDICTS as u64 + 8) {
        let (t1, t2) = (txn + 1, txn + 2);
        txn += 2;
        let ts = i * 100 + 10;
        // Disjoint row pair per iteration → one independent write-skew
        // cycle each.
        let (r1, r2) = (1_000 + i * 2, 1_001 + i * 2);
        auditor.observe_begin(t1, ts);
        auditor.observe_begin(t2, ts);
        auditor.observe_commit(footprint(
            t1,
            ts,
            ts + 1,
            vec![row_read(r1, ts)],
            vec![row_write(r2, i)],
        ));
        auditor.observe_commit(footprint(
            t2,
            ts,
            ts + 2,
            vec![row_read(r2, ts)],
            vec![row_write(r1, i)],
        ));
    }
    let snap = auditor.snapshot();
    assert_eq!(snap.cycles, MAX_VERDICTS as u64 + 8);
    assert_eq!(snap.verdicts.len(), MAX_VERDICTS);
}

/// Footprint conservation under concurrent hammering with a tiny
/// buffer: every commit is either ingested or counted as dropped, and
/// the graph never sees a torn footprint.
#[test]
fn saturation_accounts_for_every_footprint() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 500;
    let auditor = Arc::new(Auditor::with_capacity(AuditMode::Full, 2));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let auditor = auditor.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let txn = t * PER_THREAD + i + 1;
                    auditor.observe_begin(txn, txn);
                    auditor.observe_commit(footprint(
                        txn,
                        txn,
                        txn + 1,
                        vec![row_read(txn % 8, txn)],
                        vec![row_write(txn % 8, txn)],
                    ));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = auditor.snapshot();
    assert_eq!(
        snap.footprints + snap.drops,
        THREADS * PER_THREAD,
        "ingested + dropped must cover every commit"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The watermark-GC soundness theorem: an auditor whose window is
    /// garbage-collected behind the oldest active transaction detects
    /// exactly as many cycles as one that never reclaims anything —
    /// GC never drops an edge belonging to a cycle that is still
    /// detectable.
    #[test]
    fn gc_never_loses_a_cycle(seed in any::<u64>(), len in 50u64..300) {
        let stream = random_stream(seed, len);
        let gced = Auditor::new(AuditMode::Full);
        run_stream(&gced, &stream);
        let pinned = Auditor::new(AuditMode::Full);
        // A sentinel active transaction with begin_ts 0 pins the
        // watermark at zero: GC becomes a no-op.
        pinned.observe_begin(u64::MAX, 0);
        run_stream(&pinned, &stream);
        let (sg, sp) = (gced.snapshot(), pinned.snapshot());
        prop_assert_eq!(sp.gc_reclaims, 0, "pinned auditor must not reclaim");
        prop_assert_eq!(sg.cycles, sp.cycles, "GC lost or invented a cycle");
        prop_assert_eq!(sg.verdicts.len(), sp.verdicts.len());
        prop_assert_eq!(sg.footprints, sp.footprints);
        // GC may skip edges into reclaimed nodes, never add new ones.
        prop_assert!(sg.edges <= sp.edges);
    }
}
