#![warn(missing_docs)]
//! feral-audit: runtime dependency-serialization-graph observer.
//!
//! The static half of this stack (feral-sdg, feral-plan, the DPOR
//! sweeps) certifies transaction *templates* offline; nothing checks
//! whether a **live** execution under the planner's demoted isolation
//! levels actually stayed serializable. Following Nagar &
//! Jagannathan's *Automated Detection of Serializability Violations
//! under Weak Consistency*, this crate reconstructs the Adya
//! dependency-serialization graph from committed transactions at
//! runtime and reports anomaly cycles as they happen.
//!
//! Pipeline: the engine captures each transaction's read/write
//! footprint at commit into a bounded, sharded buffer
//! ([`Auditor::observe_commit`]); an incremental cycle detector
//! ([`graph`]) maintains wr/ww/rw edges over a sliding watermark
//! window with completed-transaction GC, so memory stays proportional
//! to the active window. A `sampled`/`full` [`AuditMode`] knob trades
//! read-set capture cost for rw/wr completeness, and drop counters
//! account for buffer saturation. Verdicts name the racing
//! transaction pair, the offending template keys, and the isolation
//! plan cell that admitted the schedule; the whole surface exports as
//! JSON and Prometheus text ([`report`]).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

pub mod graph;
pub mod report;

pub use graph::{AnomalyVerdict, CellCounters, CycleEdge, EdgeKind, MAX_VERDICTS};
pub use report::{validate_audit, validate_audit_json, AuditSnapshot, CellAudit};

/// How much the runtime auditor captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// No auditor at all: zero capture cost.
    Off,
    /// Statistical spot-check: one transaction in `n` is audited
    /// end-to-end (full read/write footprint, graph node, cycle
    /// search); the rest deliver an empty commit marker, so per-cell
    /// commit accounting and the plan-drift watchdog stay exact while
    /// the dependency graph — and its cost — shrinks to the sampled
    /// slice. Detected cycles are a lower bound: a cycle is only
    /// visible when every member landed in the slice. `Sampled(1)`
    /// behaves like [`AuditMode::Full`].
    Sampled(u32),
    /// Full read and write capture: the graph sees every dependency
    /// the engine admitted.
    Full,
}

impl AuditMode {
    /// Whether the auditor is disabled.
    pub fn is_off(self) -> bool {
        matches!(self, AuditMode::Off)
    }

    /// Stable name (`off` / `sampled/N` / `full`).
    pub fn name(self) -> String {
        match self {
            AuditMode::Off => "off".into(),
            AuditMode::Sampled(n) => format!("sampled/{n}"),
            AuditMode::Full => "full".into(),
        }
    }

    /// Parse [`AuditMode::name`] output back into a mode.
    pub fn parse(s: &str) -> Option<AuditMode> {
        match s {
            "off" => Some(AuditMode::Off),
            "full" => Some(AuditMode::Full),
            other => other
                .strip_prefix("sampled/")
                .and_then(|n| n.parse::<u32>().ok())
                .filter(|&n| n > 0)
                .map(AuditMode::Sampled),
        }
    }
}

/// What a read statement targeted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadTarget {
    /// A specific committed row.
    Row(u64),
    /// An equality predicate: column-value pair hashes (see
    /// [`column_value_hash`]); an empty list means the whole table was
    /// scanned.
    Pred(Vec<u64>),
}

/// One read performed by a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRecord {
    /// Table identifier.
    pub table: u64,
    /// Row or predicate target.
    pub target: ReadTarget,
    /// Timestamp the statement read at (per-statement under Read
    /// Committed, the transaction snapshot under snapshot levels).
    pub read_ts: u64,
}

/// One write installed by a committed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRecord {
    /// Table identifier.
    pub table: u64,
    /// Heap row the version chain lives on.
    pub row: u64,
    /// Column-value hashes of the overwritten image (`None` for an
    /// insert).
    pub old: Option<Vec<u64>>,
    /// Column-value hashes of the installed image (`None` for a
    /// delete).
    pub new: Option<Vec<u64>>,
}

/// A committed transaction's footprint, delivered to the auditor at
/// commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnFootprint {
    /// Transaction id.
    pub txn: u64,
    /// Snapshot/begin timestamp.
    pub begin_ts: u64,
    /// Commit timestamp (for read-only transactions: the clock at
    /// commit).
    pub commit_ts: u64,
    /// Isolation level name the transaction ran at.
    pub isolation: &'static str,
    /// Plan template key (trace label), when the transaction was
    /// opened through `TxnOptions::planned`/`label`.
    pub template: Option<&'static str>,
    /// Captured reads (empty when sampled out).
    pub reads: Vec<ReadRecord>,
    /// Captured writes (empty when sampled out).
    pub writes: Vec<WriteRecord>,
    /// True when [`AuditMode::Sampled`] left this transaction outside
    /// the audited slice: the footprint is a bare commit marker that
    /// feeds per-cell accounting but never joins the graph.
    pub sampled_out: bool,
}

/// Outcome of delivering one footprint (or draining the buffer):
/// the caller mirrors these into its own stats counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Dependency edges added to the graph.
    pub edges_added: u64,
    /// Anomaly cycles detected.
    pub cycles_found: u64,
    /// Footprints dropped because the buffer was saturated.
    pub dropped: u64,
}

/// Hash a `(column, encoded value)` pair into the footprint
/// vocabulary both predicate reads and write images use; equality of
/// hashes is how the graph decides a write could have matched a
/// predicate. FNV-1a over the column index (little-endian) and the
/// engine's order-preserving key encoding.
pub fn column_value_hash(column: usize, encoded_value: &[u8]) -> u64 {
    // Streaming FNV-1a over `column.to_le_bytes() ++ encoded_value`,
    // byte-identical to hashing the concatenated buffer through
    // `feral_trace::fnv64` but allocation-free — this runs per column
    // per captured image on the commit path.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in (column as u64).to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    for &b in encoded_value {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Default per-shard footprint buffer capacity.
pub const DEFAULT_SHARD_CAPACITY: usize = 4096;

/// Number of buffer shards.
const BUFFER_SHARDS: usize = 8;

/// Tick interval of the background drainer thread (see
/// [`Auditor::start_background`]). Detection latency in background
/// mode is bounded by one tick; a coarse tick keeps the drainer's
/// wakeups (and their context switches) negligible even on small
/// machines.
const DRAINER_TICK: std::time::Duration = std::time::Duration::from_millis(2);

/// Slots in the lock-free commit-marker table (see
/// [`Auditor::observe_commit_marker`]). Sized for an order of
/// magnitude more (template, isolation) cells than any workload in
/// this repo declares.
const MARKER_SLOTS: usize = 32;

/// The runtime auditor: a sharded footprint buffer in front of the
/// incremental dependency graph.
///
/// `observe_commit` pushes the footprint under a shard lock — that is
/// the whole per-commit cost. Graph maintenance (ingest, cycle
/// detection, watermark GC) is amortized: once a shard's backlog
/// reaches the drain batch size, the committer that crossed the
/// threshold drains every shard into the graph if the graph mutex is
/// free (`try_lock`) — committers never queue behind graph
/// maintenance, and the serial ingest work runs once per batch rather
/// than once per commit. [`Auditor::start_background`] moves even that
/// batch work onto a dedicated drainer thread for concurrent
/// deployments. Detection latency is bounded by one batch of commits
/// (one drainer tick in background mode); [`Auditor::drain`] and
/// [`Auditor::snapshot`] force the buffered tail through. The drain
/// sorts each batch by commit timestamp, so with inline draining the
/// edge set and verdicts are independent of thread interleaving —
/// under feral-sim the same seed yields the same report.
pub struct Auditor {
    mode: AuditMode,
    shard_capacity: usize,
    /// Shard backlog that triggers an opportunistic drain.
    drain_batch: usize,
    /// When true (the default), committers drain the buffer themselves
    /// once a batch builds up — fully deterministic, used under
    /// simulation. [`Auditor::start_background`] switches draining to a
    /// dedicated thread so commit threads never pay graph maintenance.
    inline_drain: AtomicBool,
    shards: Vec<Mutex<Vec<TxnFootprint>>>,
    graph: Mutex<graph::Graph>,
    /// Active transactions: txn → begin_ts (watermark source).
    active: Mutex<HashMap<u64, u64>>,
    dropped: AtomicU64,
    /// Commit markers from outside the sampled slice: per-cell commit
    /// counters in a lock-free linear-probe table. Markers never touch
    /// the footprint buffer or the graph — the common case is a few
    /// slot loads and one relaxed fetch-add. Distinct cells claim
    /// slots first-come-first-served; a full table falls back to the
    /// overflow map (never reached by realistic template counts).
    marker_keys: [std::sync::OnceLock<(&'static str, &'static str)>; MARKER_SLOTS],
    marker_counts: [AtomicU64; MARKER_SLOTS],
    marker_overflow: Mutex<std::collections::BTreeMap<(&'static str, &'static str), u64>>,
}

impl Auditor {
    /// Auditor with the default buffer capacity. Panics on
    /// [`AuditMode::Off`] — an off auditor should not exist at all.
    pub fn new(mode: AuditMode) -> Auditor {
        Auditor::with_capacity(mode, DEFAULT_SHARD_CAPACITY)
    }

    /// Auditor with an explicit per-shard footprint capacity.
    pub fn with_capacity(mode: AuditMode, shard_capacity: usize) -> Auditor {
        assert!(!mode.is_off(), "AuditMode::Off has no auditor");
        let shard_capacity = shard_capacity.max(1);
        Auditor {
            mode,
            shard_capacity,
            // amortize graph maintenance over ~1/32 of a shard, but
            // never defer past 128 commits; tiny test capacities drain
            // on every commit
            drain_batch: shard_capacity.div_ceil(32).min(128),
            inline_drain: AtomicBool::new(true),
            shards: (0..BUFFER_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            graph: Mutex::new(graph::Graph::new()),
            active: Mutex::new(HashMap::new()),
            dropped: AtomicU64::new(0),
            marker_keys: [const { std::sync::OnceLock::new() }; MARKER_SLOTS],
            marker_counts: [const { AtomicU64::new(0) }; MARKER_SLOTS],
            marker_overflow: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Move graph maintenance off the commit path onto a dedicated
    /// drainer thread that ticks every [`DRAINER_TICK`]. Commit threads
    /// then pay only the shard-buffer push; the thread exits on its own
    /// once the last `Arc` to the auditor drops.
    ///
    /// Batch boundaries (and therefore exact edge counts near the GC
    /// watermark) become timing-dependent in this mode — cycle
    /// detection is unaffected. Deterministic runs (feral-sim) should
    /// stay with the default inline draining.
    pub fn start_background(this: &Arc<Auditor>) {
        if !this.inline_drain.swap(false, Ordering::SeqCst) {
            return; // already running
        }
        let weak = Arc::downgrade(this);
        let spawned = std::thread::Builder::new()
            .name("feral-audit-drain".into())
            .spawn(move || loop {
                std::thread::sleep(DRAINER_TICK);
                let Some(auditor) = weak.upgrade() else { break };
                auditor.drain();
            })
            .is_ok();
        if !spawned {
            // No thread available: fall back to inline draining rather
            // than letting the buffer saturate.
            this.inline_drain.store(true, Ordering::SeqCst);
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> AuditMode {
        self.mode
    }

    /// Whether this transaction is in the audited slice (always under
    /// [`AuditMode::Full`], one in `n` under [`AuditMode::Sampled`]).
    /// Footprint capture and graph membership follow this answer;
    /// transactions outside the slice only deliver a commit marker.
    pub fn samples(&self, txn: u64) -> bool {
        match self.mode {
            AuditMode::Off => false,
            AuditMode::Full => true,
            AuditMode::Sampled(n) => txn.is_multiple_of(n as u64),
        }
    }

    /// A transaction began: joins the watermark window. Transactions
    /// outside the sampled slice never gain a graph node, so they
    /// don't pin the watermark either.
    pub fn observe_begin(&self, txn: u64, begin_ts: u64) {
        if self.samples(txn) {
            self.active.lock().insert(txn, begin_ts);
        }
    }

    /// A transaction aborted: leaves the window without a footprint.
    pub fn observe_abort(&self, txn: u64) {
        self.active.lock().remove(&txn);
    }

    /// A transaction committed: deliver its footprint. Buffered under
    /// a shard lock; the graph is advanced opportunistically.
    ///
    /// The transaction's begin-timestamp pin on the watermark is NOT
    /// released here — a buffered footprint must keep holding the
    /// watermark down until it is actually ingested, or a concurrent
    /// drain could reclaim nodes its backward edges still reference.
    /// [`Auditor::drain`] releases the pin after ingest.
    pub fn observe_commit(&self, fp: TxnFootprint) -> CommitOutcome {
        // Commit markers from outside the sampled slice never enter
        // the buffer or the graph: their whole cost is two counter
        // bumps, so per-cell commit accounting stays exact while the
        // unsampled fast path stays flat.
        if fp.sampled_out {
            self.observe_commit_marker(fp.template, fp.isolation);
            return CommitOutcome::default();
        }
        let mut outcome = CommitOutcome::default();
        let backlog = {
            let mut shard = self.shards[(fp.txn % BUFFER_SHARDS as u64) as usize].lock();
            if shard.len() >= self.shard_capacity {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                outcome.dropped += 1;
                self.active.lock().remove(&fp.txn);
                shard.len()
            } else {
                shard.push(fp);
                shard.len()
            }
        };
        // Inline mode: drain only once a batch has built up (or the
        // shard is saturated) — the common-case commit pays a shard
        // push and nothing else. Background mode: the drainer thread
        // owns all graph maintenance.
        if (backlog >= self.drain_batch || backlog >= self.shard_capacity)
            && self.inline_drain.load(Ordering::Relaxed)
        {
            if let Some(mut g) = self.graph.try_lock() {
                let (e, c) = self.drain_into(&mut g);
                outcome.edges_added += e;
                outcome.cycles_found += c;
            }
        }
        outcome
    }

    /// A transaction outside the sampled slice committed. Equivalent
    /// to delivering a footprint with `sampled_out: true`, minus the
    /// footprint: two counter bumps keep per-cell commit accounting
    /// exact without touching the buffer or the graph.
    pub fn observe_commit_marker(&self, template: Option<&'static str>, isolation: &'static str) {
        let key = (template.unwrap_or("?"), isolation);
        // Start the probe at a pointer-derived hash so distinct cells
        // land on distinct slots and the common case is a single
        // compare. Slot assignment varies across processes (ASLR);
        // snapshotting folds the table into a BTree, so reports stay
        // deterministic regardless.
        let start = (key.0.as_ptr() as usize ^ (key.1.as_ptr() as usize >> 3)) / 16;
        for i in 0..MARKER_SLOTS {
            let slot = (start + i) % MARKER_SLOTS;
            // On an already-claimed slot this is a plain acquire load;
            // two racing claims of one cell converge on the same slot
            // because the loser observes the winner's key.
            if *self.marker_keys[slot].get_or_init(|| key) == key {
                self.marker_counts[slot].fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        *self.marker_overflow.lock().entry(key).or_default() += 1;
    }

    /// Force-process everything buffered (blocking on the graph lock).
    /// Called by snapshotting so reports never miss buffered tails.
    pub fn drain(&self) -> CommitOutcome {
        let mut g = self.graph.lock();
        let (edges_added, cycles_found) = self.drain_into(&mut g);
        CommitOutcome {
            edges_added,
            cycles_found,
            dropped: 0,
        }
    }

    fn drain_into(&self, g: &mut graph::Graph) -> (u64, u64) {
        let mut batch: Vec<TxnFootprint> = Vec::new();
        for shard in &self.shards {
            batch.append(&mut shard.lock());
        }
        if batch.is_empty() {
            return (0, 0);
        }
        // Commit-ts order (txn id as tie-break for read-only commits
        // sharing a clock value) keeps ingest deterministic regardless
        // of which shard a footprint landed in.
        batch.sort_by_key(|fp| (fp.commit_ts, fp.txn));
        let ids: Vec<u64> = batch.iter().map(|fp| fp.txn).collect();
        let mut edges = 0;
        let mut cycles = 0;
        for fp in batch {
            let (e, c) = g.ingest(fp);
            edges += e;
            cycles += u64::from(c);
        }
        // Ingested footprints release their begin-ts watermark pin
        // only now; then advance the watermark to the oldest still
        // pinned begin (or the newest processed commit when idle) —
        // nothing below it can gain a backward edge any more.
        let watermark = {
            let mut active = self.active.lock();
            for id in &ids {
                active.remove(id);
            }
            active.values().copied().min().unwrap_or(g.high_ts)
        };
        g.gc(watermark);
        (edges, cycles)
    }

    /// Point-in-time export of the whole audit surface (drains the
    /// buffer first).
    pub fn snapshot(&self) -> AuditSnapshot {
        self.drain();
        let g = self.graph.lock();
        // Per-cell commit counts merge the ingested slice with the
        // marker counters; both keys are 'static, and folding the slot
        // table into a BTree keeps cell order deterministic no matter
        // which thread claimed which slot.
        let mut marker_cells: std::collections::BTreeMap<(&'static str, &'static str), u64> =
            self.marker_overflow.lock().clone();
        for (key, count) in self.marker_keys.iter().zip(&self.marker_counts) {
            if let Some(key) = key.get() {
                let n = count.load(Ordering::Relaxed);
                if n > 0 {
                    *marker_cells.entry(*key).or_default() += n;
                }
            }
        }
        let marker_total: u64 = marker_cells.values().sum();
        let mut keys: std::collections::BTreeSet<(&'static str, &'static str)> =
            g.per_cell().keys().copied().collect();
        keys.extend(marker_cells.keys().copied());
        let cells = keys
            .into_iter()
            .map(|key| {
                let c = g.per_cell().get(&key);
                CellAudit {
                    template: key.0.to_string(),
                    isolation: key.1.to_string(),
                    commits: c.map_or(0, |c| c.commits)
                        + marker_cells.get(&key).copied().unwrap_or(0),
                    anomalies: c.map_or(0, |c| c.anomalies),
                }
            })
            .collect();
        AuditSnapshot {
            mode: self.mode.name(),
            footprints: g.footprints + marker_total,
            edges: g.edges_total,
            cycles: g.cycles_total,
            drops: self.dropped.load(Ordering::Relaxed),
            gc_reclaims: g.gc_reclaims,
            window_depth: g.window_depth(),
            window_peak: g.window_peak,
            watermark: g.watermark,
            cells,
            verdicts: g.verdicts().to_vec(),
        }
    }
}

impl std::fmt::Debug for Auditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Auditor")
            .field("mode", &self.mode.name())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}
