//! Export surface: JSON snapshot, Prometheus text, human-readable
//! rendering, and schema validation for the audit section of
//! `results/BENCH_audit.json`.

use crate::graph::AnomalyVerdict;
use feral_trace::json::{self, escape, Json};
use feral_trace::report::escape_label;

/// Per plan-cell audit counters in export form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellAudit {
    /// Template key (`"?"` for unlabelled transactions).
    pub template: String,
    /// Isolation level name the cell ran at.
    pub isolation: String,
    /// Committed transactions attributed to the cell.
    pub commits: u64,
    /// Anomaly cycles touching the cell.
    pub anomalies: u64,
}

/// Point-in-time copy of the whole audit surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditSnapshot {
    /// Capture mode name (`off` / `sampled/N` / `full`).
    pub mode: String,
    /// Committed-transaction footprints ingested.
    pub footprints: u64,
    /// Dependency edges observed.
    pub edges: u64,
    /// Anomaly cycles found.
    pub cycles: u64,
    /// Footprints dropped on buffer saturation.
    pub drops: u64,
    /// Completed nodes reclaimed by watermark GC.
    pub gc_reclaims: u64,
    /// Live nodes in the window right now.
    pub window_depth: u64,
    /// Peak live nodes over the run.
    pub window_peak: u64,
    /// Current GC watermark timestamp.
    pub watermark: u64,
    /// Per plan-cell counters, template-then-isolation ordered.
    pub cells: Vec<CellAudit>,
    /// Retained anomaly verdicts (capped at
    /// [`crate::MAX_VERDICTS`]; `cycles` keeps counting past the cap).
    pub verdicts: Vec<AnomalyVerdict>,
}

impl AuditSnapshot {
    /// Serialise as a JSON object (the `audit` value embedded in
    /// `BENCH_audit.json` and printed by `feral-audit report`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", escape(&self.mode)));
        out.push_str(&format!("  \"footprints\": {},\n", self.footprints));
        out.push_str(&format!("  \"edges\": {},\n", self.edges));
        out.push_str(&format!("  \"cycles\": {},\n", self.cycles));
        out.push_str(&format!("  \"drops\": {},\n", self.drops));
        out.push_str(&format!("  \"gc_reclaims\": {},\n", self.gc_reclaims));
        out.push_str(&format!("  \"window_depth\": {},\n", self.window_depth));
        out.push_str(&format!("  \"window_peak\": {},\n", self.window_peak));
        out.push_str(&format!("  \"watermark\": {},\n", self.watermark));
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"template\": \"{}\", \"isolation\": \"{}\", \"commits\": {}, \"anomalies\": {}}}",
                escape(&c.template),
                escape(&c.isolation),
                c.commits,
                c.anomalies
            ));
        }
        out.push_str(if self.cells.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"verdicts\": [");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&verdict_json(v));
        }
        out.push_str(if self.verdicts.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }

    /// Rebuild a snapshot from validated JSON (the inverse of
    /// [`AuditSnapshot::to_json`]); used by `feral-audit report` to
    /// render saved snapshots. Call [`validate_audit`] first — this
    /// assumes the schema already checked out.
    pub fn from_json(doc: &Json) -> Result<AuditSnapshot, String> {
        validate_audit(doc)?;
        let u = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
        let mut cells = Vec::new();
        for c in doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
            cells.push(CellAudit {
                template: c
                    .get("template")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                isolation: c
                    .get("isolation")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                commits: c.get("commits").and_then(Json::as_u64).unwrap_or(0),
                anomalies: c.get("anomalies").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        let mut verdicts = Vec::new();
        for v in doc.get("verdicts").and_then(Json::as_arr).unwrap_or(&[]) {
            let racing = v.get("racing").and_then(Json::as_arr).unwrap_or(&[]);
            let mut cycle = Vec::new();
            for e in v.get("cycle").and_then(Json::as_arr).unwrap_or(&[]) {
                let kind = match e.get("kind").and_then(Json::as_str) {
                    Some("wr") => crate::graph::EdgeKind::WriteRead,
                    Some("ww") => crate::graph::EdgeKind::WriteWrite,
                    _ => crate::graph::EdgeKind::ReadWrite,
                };
                cycle.push(crate::graph::CycleEdge {
                    from: e.get("from").and_then(Json::as_u64).unwrap_or(0),
                    to: e.get("to").and_then(Json::as_u64).unwrap_or(0),
                    kind,
                });
            }
            let strings = |key: &str| -> Vec<String> {
                v.get(key)
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            };
            verdicts.push(AnomalyVerdict {
                cycle,
                txns: v
                    .get("txns")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(Json::as_u64)
                    .collect(),
                racing: (
                    racing.first().and_then(Json::as_u64).unwrap_or(0),
                    racing.get(1).and_then(Json::as_u64).unwrap_or(0),
                ),
                templates: strings("templates"),
                cells: strings("cells"),
                detected_at: v.get("detected_at").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        Ok(AuditSnapshot {
            mode: doc
                .get("mode")
                .and_then(Json::as_str)
                .unwrap_or("off")
                .to_string(),
            footprints: u("footprints"),
            edges: u("edges"),
            cycles: u("cycles"),
            drops: u("drops"),
            gc_reclaims: u("gc_reclaims"),
            window_depth: u("window_depth"),
            window_peak: u("window_peak"),
            watermark: u("watermark"),
            cells,
            verdicts,
        })
    }

    /// Prometheus text exposition of the audit surface, with
    /// `# HELP`/`# TYPE` headers and escaped label values.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            &mut out,
            "feral_audit_footprints_total",
            "Committed-transaction footprints ingested by the runtime auditor.",
            self.footprints,
        );
        counter(
            &mut out,
            "feral_audit_edges_total",
            "Dependency edges (wr/ww/rw) observed in the runtime graph.",
            self.edges,
        );
        counter(
            &mut out,
            "feral_audit_cycles_total",
            "Critical anomaly cycles detected in live executions.",
            self.cycles,
        );
        counter(
            &mut out,
            "feral_audit_drops_total",
            "Footprints dropped on audit buffer saturation.",
            self.drops,
        );
        counter(
            &mut out,
            "feral_audit_gc_reclaims_total",
            "Completed transactions reclaimed by watermark GC.",
            self.gc_reclaims,
        );
        gauge(
            &mut out,
            "feral_audit_window_depth",
            "Live transactions in the audit window.",
            self.window_depth,
        );
        gauge(
            &mut out,
            "feral_audit_window_peak",
            "Peak live transactions in the audit window.",
            self.window_peak,
        );
        gauge(
            &mut out,
            "feral_audit_watermark",
            "Current watermark timestamp of the audit GC.",
            self.watermark,
        );
        out.push_str("# HELP feral_audit_cell_commits_total Committed transactions per isolation-plan cell.\n");
        out.push_str("# TYPE feral_audit_cell_commits_total counter\n");
        for c in &self.cells {
            out.push_str(&format!(
                "feral_audit_cell_commits_total{{template=\"{}\",isolation=\"{}\"}} {}\n",
                escape_label(&c.template),
                escape_label(&c.isolation),
                c.commits
            ));
        }
        out.push_str(
            "# HELP feral_audit_cell_anomalies_total Anomaly cycles per isolation-plan cell.\n",
        );
        out.push_str("# TYPE feral_audit_cell_anomalies_total counter\n");
        for c in &self.cells {
            out.push_str(&format!(
                "feral_audit_cell_anomalies_total{{template=\"{}\",isolation=\"{}\"}} {}\n",
                escape_label(&c.template),
                escape_label(&c.isolation),
                c.anomalies
            ));
        }
        out
    }

    /// Human-readable rendering for `feral-audit report`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit mode {} | footprints {} | edges {} | cycles {} | drops {}\n",
            self.mode, self.footprints, self.edges, self.cycles, self.drops
        ));
        out.push_str(&format!(
            "window depth {} (peak {}) | gc reclaims {} | watermark {}\n",
            self.window_depth, self.window_peak, self.gc_reclaims, self.watermark
        ));
        out.push_str("plan cells:\n");
        for c in &self.cells {
            out.push_str(&format!(
                "  {:<44} @{:<16} commits {:>8}  anomalies {:>4}{}\n",
                c.template,
                c.isolation,
                c.commits,
                c.anomalies,
                if c.anomalies > 0 { "  <-- UNSAFE" } else { "" }
            ));
        }
        if self.verdicts.is_empty() {
            out.push_str("verdict: CLEAN — no anomaly cycle observed\n");
        } else {
            for (i, v) in self.verdicts.iter().enumerate() {
                out.push_str(&format!(
                    "verdict #{i}: ANOMALY at ts {} — racing txns {} (read) vs {} (write)\n",
                    v.detected_at, v.racing.0, v.racing.1
                ));
                out.push_str("  cycle: ");
                for (j, e) in v.cycle.iter().enumerate() {
                    if j > 0 {
                        out.push_str(" ; ");
                    }
                    out.push_str(&format!("txn {} -{}-> txn {}", e.from, e.kind.name(), e.to));
                }
                out.push('\n');
                out.push_str(&format!("  templates: {}\n", v.templates.join(", ")));
                out.push_str(&format!("  plan cells: {}\n", v.cells.join(", ")));
            }
        }
        out
    }
}

fn verdict_json(v: &AnomalyVerdict) -> String {
    let mut out = String::new();
    out.push('{');
    out.push_str(&format!("\"detected_at\": {}, ", v.detected_at));
    out.push_str(&format!("\"racing\": [{}, {}], ", v.racing.0, v.racing.1));
    out.push_str("\"txns\": [");
    for (i, t) in v.txns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&t.to_string());
    }
    out.push_str("], \"cycle\": [");
    for (i, e) in v.cycle.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"from\": {}, \"to\": {}, \"kind\": \"{}\"}}",
            e.from,
            e.to,
            e.kind.name()
        ));
    }
    out.push_str("], \"templates\": [");
    for (i, t) in v.templates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", escape(t)));
    }
    out.push_str("], \"cells\": [");
    for (i, c) in v.cells.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", escape(c)));
    }
    out.push_str("]}");
    out
}

fn require<'j>(obj: &'j Json, key: &str, ctx: &str) -> Result<&'j Json, String> {
    obj.get(key).ok_or(format!("{ctx}: missing key '{key}'"))
}

fn require_u64(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    require(obj, key, ctx)?
        .as_u64()
        .ok_or(format!("{ctx}: '{key}' is not a non-negative integer"))
}

/// Schema-check a serialised [`AuditSnapshot`] (an already-parsed JSON
/// value). Beyond structure this enforces the snapshot's integrity
/// claims: per-cell anomaly counts require a matching global cycle
/// count, every verdict's cycle has at least two distinct
/// transactions, at least one rw edge, and racing endpoints drawn
/// from the cycle.
pub fn validate_audit(doc: &Json) -> Result<(), String> {
    let ctx = "audit";
    let mode = require(doc, "mode", ctx)?
        .as_str()
        .ok_or("audit: 'mode' is not a string")?;
    if crate::AuditMode::parse(mode).is_none() {
        return Err(format!("audit: unknown mode '{mode}'"));
    }
    for key in [
        "footprints",
        "edges",
        "cycles",
        "drops",
        "gc_reclaims",
        "window_depth",
        "window_peak",
        "watermark",
    ] {
        require_u64(doc, key, ctx)?;
    }
    let cycles = require_u64(doc, "cycles", ctx)?;
    let cells = require(doc, "cells", ctx)?
        .as_arr()
        .ok_or("audit: 'cells' is not an array")?;
    let mut cell_anomalies = 0u64;
    for c in cells {
        let t = require(c, "template", "audit cell")?
            .as_str()
            .ok_or("audit cell: 'template' is not a string")?;
        require(c, "isolation", &format!("audit cell '{t}'"))?
            .as_str()
            .ok_or(format!("audit cell '{t}': 'isolation' is not a string"))?;
        require_u64(c, "commits", &format!("audit cell '{t}'"))?;
        cell_anomalies += require_u64(c, "anomalies", &format!("audit cell '{t}'"))?;
    }
    if cell_anomalies > 0 && cycles == 0 {
        return Err("audit: cells carry anomalies but 'cycles' is 0".into());
    }
    let verdicts = require(doc, "verdicts", ctx)?
        .as_arr()
        .ok_or("audit: 'verdicts' is not an array")?;
    if cycles > 0 && verdicts.is_empty() {
        return Err("audit: cycles found but no verdict retained".into());
    }
    for (i, v) in verdicts.iter().enumerate() {
        let vctx = format!("audit verdict #{i}");
        require_u64(v, "detected_at", &vctx)?;
        let racing = require(v, "racing", &vctx)?
            .as_arr()
            .ok_or(format!("{vctx}: 'racing' is not an array"))?;
        if racing.len() != 2 {
            return Err(format!("{vctx}: racing pair must have two txns"));
        }
        let txns = require(v, "txns", &vctx)?
            .as_arr()
            .ok_or(format!("{vctx}: 'txns' is not an array"))?;
        let ids: Vec<u64> = txns.iter().filter_map(|t| t.as_u64()).collect();
        if ids.len() < 2 {
            return Err(format!("{vctx}: cycle names fewer than two txns"));
        }
        for r in racing {
            let r = r
                .as_u64()
                .ok_or(format!("{vctx}: racing txn is not an integer"))?;
            if !ids.contains(&r) {
                return Err(format!("{vctx}: racing txn {r} not on the cycle"));
            }
        }
        let cycle = require(v, "cycle", &vctx)?
            .as_arr()
            .ok_or(format!("{vctx}: 'cycle' is not an array"))?;
        if cycle.len() != ids.len() {
            return Err(format!("{vctx}: cycle edge count != txn count"));
        }
        let mut has_rw = false;
        for e in cycle {
            require_u64(e, "from", &vctx)?;
            require_u64(e, "to", &vctx)?;
            let kind = require(e, "kind", &vctx)?
                .as_str()
                .ok_or(format!("{vctx}: edge 'kind' is not a string"))?;
            if !["wr", "ww", "rw"].contains(&kind) {
                return Err(format!("{vctx}: unknown edge kind '{kind}'"));
            }
            has_rw |= kind == "rw";
        }
        if !has_rw {
            return Err(format!(
                "{vctx}: cycle has no rw anti-dependency (impossible in this engine)"
            ));
        }
        for key in ["templates", "cells"] {
            let arr = require(v, key, &vctx)?
                .as_arr()
                .ok_or(format!("{vctx}: '{key}' is not an array"))?;
            if arr.is_empty() {
                return Err(format!("{vctx}: '{key}' is empty"));
            }
        }
    }
    Ok(())
}

/// Parse and validate a serialised [`AuditSnapshot`]; returns the
/// parsed document.
pub fn validate_audit_json(text: &str) -> Result<Json, String> {
    let doc = json::parse(text)?;
    validate_audit(&doc)?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CycleEdge, EdgeKind};

    fn sample() -> AuditSnapshot {
        AuditSnapshot {
            mode: "full".into(),
            footprints: 10,
            edges: 7,
            cycles: 1,
            drops: 0,
            gc_reclaims: 4,
            window_depth: 3,
            window_peak: 6,
            watermark: 42,
            cells: vec![CellAudit {
                template: "uniqueness-probe-insert:signups.email".into(),
                isolation: "read-committed".into(),
                commits: 9,
                anomalies: 1,
            }],
            verdicts: vec![AnomalyVerdict {
                cycle: vec![
                    CycleEdge {
                        from: 3,
                        to: 4,
                        kind: EdgeKind::ReadWrite,
                    },
                    CycleEdge {
                        from: 4,
                        to: 3,
                        kind: EdgeKind::ReadWrite,
                    },
                ],
                txns: vec![3, 4],
                racing: (3, 4),
                templates: vec!["uniqueness-probe-insert:signups.email".into()],
                cells: vec!["uniqueness-probe-insert:signups.email@read-committed".into()],
                detected_at: 17,
            }],
        }
    }

    #[test]
    fn snapshot_json_roundtrips_through_validation() {
        let snap = sample();
        let doc = validate_audit_json(&snap.to_json()).expect("valid");
        assert_eq!(doc.get("cycles").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("mode").unwrap().as_str(), Some("full"),);
    }

    #[test]
    fn validation_rejects_cycle_without_rw() {
        let mut snap = sample();
        for e in &mut snap.verdicts[0].cycle {
            e.kind = EdgeKind::WriteWrite;
        }
        let err = validate_audit_json(&snap.to_json()).unwrap_err();
        assert!(err.contains("no rw"), "{err}");
    }

    #[test]
    fn validation_rejects_anomalies_without_cycles() {
        let mut snap = sample();
        snap.cycles = 0;
        snap.verdicts.clear();
        let err = validate_audit_json(&snap.to_json()).unwrap_err();
        assert!(err.contains("anomalies"), "{err}");
    }

    #[test]
    fn validation_rejects_offcycle_racing_txn() {
        let mut snap = sample();
        snap.verdicts[0].racing = (3, 99);
        let err = validate_audit_json(&snap.to_json()).unwrap_err();
        assert!(err.contains("not on the cycle"), "{err}");
    }

    #[test]
    fn prometheus_export_is_strict_parser_safe() {
        let text = sample().to_prometheus();
        assert!(text.contains("# HELP feral_audit_cycles_total"));
        assert!(text.contains("# TYPE feral_audit_cycles_total counter"));
        assert!(text.contains("feral_audit_cycles_total 1"));
        assert!(text.contains(
            "feral_audit_cell_anomalies_total{template=\"uniqueness-probe-insert:signups.email\",isolation=\"read-committed\"} 1"
        ));
    }

    #[test]
    fn render_text_names_the_racing_pair() {
        let text = sample().render_text();
        assert!(text.contains("racing txns 3 (read) vs 4 (write)"));
        assert!(text.contains("txn 3 -rw-> txn 4"));
    }

    #[test]
    fn mode_names_roundtrip() {
        use crate::AuditMode;
        for mode in [AuditMode::Off, AuditMode::Sampled(8), AuditMode::Full] {
            assert_eq!(AuditMode::parse(&mode.name()), Some(mode));
        }
        assert_eq!(AuditMode::parse("sampled/0"), None);
        assert_eq!(AuditMode::parse("bogus"), None);
    }
}
