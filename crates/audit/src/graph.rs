//! The incremental dependency-serialization graph.
//!
//! Nodes are committed transactions; edges are Adya dependencies
//! derived from read/write footprints:
//!
//! - **wr** (read dependency): the reader observed a version the
//!   writer installed (`writer.commit_ts <= reader.read_ts`).
//! - **ww** (write dependency): both wrote the same `(table, row)`,
//!   ordered by commit timestamp.
//! - **rw** (anti-dependency): the reader observed a version *older*
//!   than the writer's install (`reader.read_ts < writer.commit_ts`),
//!   by row overlap or by predicate match against a write image.
//!
//! In this engine wr and ww edges always point forward in commit-ts
//! order, so **every cycle contains at least one backward rw edge** —
//! which makes every detected cycle a critical (anomaly) cycle and is
//! also what makes the watermark GC sound (see [`Graph::gc`]).

use crate::{ReadTarget, TxnFootprint, WriteRecord};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Kind of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Read dependency: the target read the source's write.
    WriteRead,
    /// Write dependency: the target overwrote the source's write.
    WriteWrite,
    /// Anti-dependency: the target overwrote what the source read.
    ReadWrite,
}

impl EdgeKind {
    /// Short name (`wr` / `ww` / `rw`).
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::WriteRead => "wr",
            EdgeKind::WriteWrite => "ww",
            EdgeKind::ReadWrite => "rw",
        }
    }

    fn code(self) -> u8 {
        match self {
            EdgeKind::WriteRead => 0,
            EdgeKind::WriteWrite => 1,
            EdgeKind::ReadWrite => 2,
        }
    }
}

/// One directed edge of a detected cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleEdge {
    /// Source transaction id.
    pub from: u64,
    /// Target transaction id.
    pub to: u64,
    /// Dependency kind.
    pub kind: EdgeKind,
}

/// An anomaly verdict: a critical cycle the online auditor observed in
/// a live execution, with enough attribution to name the racing pair,
/// the offending templates, and the plan cells that admitted it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyVerdict {
    /// The cycle's edges in path order (the last edge closes the loop).
    pub cycle: Vec<CycleEdge>,
    /// Transaction ids on the cycle, in path order.
    pub txns: Vec<u64>,
    /// The racing pair: endpoints of the first rw (anti-dependency)
    /// edge `(reader, writer)` — the dependency that makes the cycle
    /// critical.
    pub racing: (u64, u64),
    /// Template keys of the cycle members (deduplicated, path order;
    /// `"?"` for unlabelled transactions).
    pub templates: Vec<String>,
    /// Plan cells (`template@isolation`) of the cycle members
    /// (deduplicated, path order) — the cells that admitted this
    /// schedule.
    pub cells: Vec<String>,
    /// Commit timestamp of the transaction whose arrival closed the
    /// cycle (the detection point).
    pub detected_at: u64,
}

/// Per plan-cell watchdog counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCounters {
    /// Committed transactions attributed to this cell.
    pub commits: u64,
    /// Anomaly cycles with at least one member in this cell.
    pub anomalies: u64,
}

/// Cap on retained anomaly verdicts (counters keep growing past it).
pub const MAX_VERDICTS: usize = 64;

struct Node {
    commit_ts: u64,
    template: Option<&'static str>,
    isolation: &'static str,
    /// Outgoing edges in deterministic insertion order.
    out: Vec<(u64, EdgeKind)>,
}

#[derive(Default)]
struct RowUse {
    /// Committed writers of this `(table, row)`.
    writers: Vec<u64>,
    /// Committed readers: `(txn, read_ts)` pairs.
    readers: Vec<(u64, u64)>,
}

#[derive(Default)]
struct TableUse {
    /// Committed transactions that predicate-read this table:
    /// `(txn, read_ts, index into that txn's stashed reads)`.
    pred_readers: Vec<(u64, u64, usize)>,
    /// Committed transactions that wrote this table.
    writers: Vec<u64>,
}

/// The live dependency graph over a sliding watermark window.
pub(crate) struct Graph {
    nodes: HashMap<u64, Node>,
    /// `(commit_ts, txn)` ordering index for watermark GC.
    order: BTreeSet<(u64, u64)>,
    by_row: HashMap<(u64, u64), RowUse>,
    by_table: HashMap<u64, TableUse>,
    edge_set: HashSet<(u64, u64, u8)>,
    /// Retained footprints (reads for predicate lookup, writes for
    /// image matching) of live nodes; GC'd with the node.
    stash: HashMap<u64, (Vec<crate::ReadRecord>, Vec<WriteRecord>)>,
    verdicts: Vec<AnomalyVerdict>,
    per_cell: BTreeMap<(&'static str, &'static str), CellCounters>,
    pub(crate) footprints: u64,
    pub(crate) edges_total: u64,
    pub(crate) cycles_total: u64,
    pub(crate) gc_reclaims: u64,
    pub(crate) window_peak: u64,
    pub(crate) watermark: u64,
    /// Highest commit_ts processed — the graph's notion of "now".
    pub(crate) high_ts: u64,
}

impl Graph {
    pub(crate) fn new() -> Graph {
        Graph {
            nodes: HashMap::new(),
            order: BTreeSet::new(),
            by_row: HashMap::new(),
            by_table: HashMap::new(),
            edge_set: HashSet::new(),
            stash: HashMap::new(),
            verdicts: Vec::new(),
            per_cell: BTreeMap::new(),
            footprints: 0,
            edges_total: 0,
            cycles_total: 0,
            gc_reclaims: 0,
            window_peak: 0,
            watermark: 0,
            high_ts: 0,
        }
    }

    pub(crate) fn window_depth(&self) -> u64 {
        self.nodes.len() as u64
    }

    pub(crate) fn verdicts(&self) -> &[AnomalyVerdict] {
        &self.verdicts
    }

    pub(crate) fn per_cell(&self) -> &BTreeMap<(&'static str, &'static str), CellCounters> {
        &self.per_cell
    }

    fn add_edge(&mut self, from: u64, to: u64, kind: EdgeKind) -> u64 {
        if from == to || !self.nodes.contains_key(&from) || !self.nodes.contains_key(&to) {
            // A missing endpoint was already reclaimed: by the
            // watermark invariant no cycle can pass through it.
            return 0;
        }
        if !self.edge_set.insert((from, to, kind.code())) {
            return 0;
        }
        self.nodes
            .get_mut(&from)
            .expect("checked above")
            .out
            .push((to, kind));
        self.edges_total += 1;
        1
    }

    /// Whether predicate `pairs` (column-value hashes; empty = whole
    /// table) can match a write image's column-value hash set.
    fn pred_matches(pairs: &[u64], image: Option<&Vec<u64>>) -> bool {
        match image {
            None => false,
            Some(hashes) => pairs.iter().all(|p| hashes.contains(p)),
        }
    }

    /// Whether write `w` intersects predicate `pairs` on either image.
    fn write_hits_pred(pairs: &[u64], w: &WriteRecord) -> bool {
        Self::pred_matches(pairs, w.old.as_ref()) || Self::pred_matches(pairs, w.new.as_ref())
    }

    fn commit_ts_of(&self, txn: u64) -> Option<u64> {
        self.nodes.get(&txn).map(|n| n.commit_ts)
    }

    fn pred_of(&self, txn: u64, idx: usize) -> Option<&Vec<u64>> {
        self.stash.get(&txn).and_then(|(reads, _)| {
            reads.get(idx).and_then(|r| match &r.target {
                ReadTarget::Pred(pairs) => Some(pairs),
                ReadTarget::Row(_) => None,
            })
        })
    }

    fn writes_of(&self, txn: u64) -> Option<&Vec<WriteRecord>> {
        self.stash.get(&txn).map(|(_, w)| w)
    }

    /// Ingest one committed transaction: derive its edges against the
    /// window, then search for a cycle through it. Returns
    /// `(edges_added, cycle_found)`.
    ///
    /// Derivation runs in two passes: an immutable scan of the access
    /// indexes collects candidate edges (so the index lists are never
    /// cloned), then the candidates are applied through [`Self::add_edge`]
    /// (which dedups). The footprint's own accesses are registered in
    /// between, so a transaction never derives edges against itself.
    pub(crate) fn ingest(&mut self, fp: TxnFootprint) -> (u64, bool) {
        let txn = fp.txn;
        self.footprints += 1;
        self.high_ts = self.high_ts.max(fp.commit_ts);
        self.per_cell
            .entry((fp.template.unwrap_or("?"), fp.isolation))
            .or_default()
            .commits += 1;
        // Commit markers never reach the graph — the auditor counts
        // them before they touch the buffer.
        debug_assert!(!fp.sampled_out);

        self.nodes.insert(
            txn,
            Node {
                commit_ts: fp.commit_ts,
                template: fp.template,
                isolation: fp.isolation,
                out: Vec::new(),
            },
        );
        self.order.insert((fp.commit_ts, txn));
        self.window_peak = self.window_peak.max(self.nodes.len() as u64);

        let mut candidates: Vec<(u64, u64, EdgeKind)> = Vec::new();

        // --- writes: ww against other writers, wr/rw against row
        // readers, predicate wr/rw against predicate readers.
        for w in &fp.writes {
            if let Some(u) = self.by_row.get(&(w.table, w.row)) {
                for &other in &u.writers {
                    match self.commit_ts_of(other) {
                        Some(ts) if ts <= fp.commit_ts => {
                            candidates.push((other, txn, EdgeKind::WriteWrite));
                        }
                        Some(_) => {
                            candidates.push((txn, other, EdgeKind::WriteWrite));
                        }
                        None => {}
                    }
                }
                for &(reader, read_ts) in &u.readers {
                    if read_ts >= fp.commit_ts {
                        candidates.push((txn, reader, EdgeKind::WriteRead));
                    } else {
                        candidates.push((reader, txn, EdgeKind::ReadWrite));
                    }
                }
            }
            if let Some(u) = self.by_table.get(&w.table) {
                for &(reader, read_ts, ri) in &u.pred_readers {
                    let hit = self
                        .pred_of(reader, ri)
                        .map(|pairs| Self::write_hits_pred(pairs, w))
                        .unwrap_or(false);
                    if hit {
                        if read_ts >= fp.commit_ts {
                            candidates.push((txn, reader, EdgeKind::WriteRead));
                        } else {
                            candidates.push((reader, txn, EdgeKind::ReadWrite));
                        }
                    }
                }
            }
        }

        // --- reads: wr from the latest visible writer, rw toward
        // writers that installed past this read.
        for r in &fp.reads {
            match &r.target {
                ReadTarget::Row(row) => {
                    let Some(u) = self.by_row.get(&(r.table, *row)) else {
                        continue;
                    };
                    let mut latest: Option<(u64, u64)> = None; // (commit_ts, txn)
                    for &writer in &u.writers {
                        let Some(ts) = self.commit_ts_of(writer) else {
                            continue;
                        };
                        if writer == txn {
                            continue;
                        }
                        if ts <= r.read_ts {
                            if latest.is_none_or(|(best, _)| ts > best) {
                                latest = Some((ts, writer));
                            }
                        } else {
                            candidates.push((txn, writer, EdgeKind::ReadWrite));
                        }
                    }
                    if let Some((_, writer)) = latest {
                        candidates.push((writer, txn, EdgeKind::WriteRead));
                    }
                }
                ReadTarget::Pred(pairs) => {
                    let Some(u) = self.by_table.get(&r.table) else {
                        continue;
                    };
                    for &writer in &u.writers {
                        if writer == txn {
                            continue;
                        }
                        let Some(w_commit) = self.commit_ts_of(writer) else {
                            continue;
                        };
                        let hits = self
                            .writes_of(writer)
                            .map(|ws| {
                                ws.iter()
                                    .any(|w| w.table == r.table && Self::write_hits_pred(pairs, w))
                            })
                            .unwrap_or(false);
                        if hits {
                            if w_commit <= r.read_ts {
                                candidates.push((writer, txn, EdgeKind::WriteRead));
                            } else {
                                candidates.push((txn, writer, EdgeKind::ReadWrite));
                            }
                        }
                    }
                }
            }
        }

        // Register this transaction's accesses in the indexes.
        for w in &fp.writes {
            let row = self.by_row.entry((w.table, w.row)).or_default();
            if row.writers.last() != Some(&txn) {
                row.writers.push(txn);
            }
            let table = self.by_table.entry(w.table).or_default();
            if table.writers.last() != Some(&txn) {
                table.writers.push(txn);
            }
        }
        for (ri, r) in fp.reads.iter().enumerate() {
            match &r.target {
                ReadTarget::Row(row) => self
                    .by_row
                    .entry((r.table, *row))
                    .or_default()
                    .readers
                    .push((txn, r.read_ts)),
                ReadTarget::Pred(_) => self
                    .by_table
                    .entry(r.table)
                    .or_default()
                    .pred_readers
                    .push((txn, r.read_ts, ri)),
            }
        }

        let mut added = 0u64;
        let mut out_added = 0u64;
        for (from, to, kind) in candidates {
            let n = self.add_edge(from, to, kind);
            added += n;
            if from == txn {
                out_added += n;
            }
        }
        self.stash.insert(txn, (fp.reads, fp.writes));

        // Every edge this ingest added touches `txn`, so a cycle closed
        // by it must pass through `txn` — and a cycle through `txn`
        // needs an edge *out* of it. No new out-edge, no new cycle:
        // skip the search entirely (the overwhelmingly common case in a
        // clean workload, where commits carry only forward edges).
        let cycle = out_added > 0 && self.find_cycle_through(txn, fp.commit_ts);
        (added, cycle)
    }

    /// Depth-first search for a cycle through `start`, following out
    /// edges in insertion order (deterministic given a deterministic
    /// ingest order). Records a verdict and returns true when found.
    fn find_cycle_through(&mut self, start: u64, detected_at: u64) -> bool {
        let mut stack: Vec<(u64, usize)> = vec![(start, 0)];
        let mut on_path: Vec<u64> = vec![start];
        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(start);
        while let Some((node, next_idx)) = stack.last_mut() {
            let node = *node;
            let succ = self
                .nodes
                .get(&node)
                .and_then(|n| n.out.get(*next_idx).copied());
            *next_idx += 1;
            match succ {
                None => {
                    stack.pop();
                    on_path.pop();
                }
                Some((target, _)) if target == start => {
                    // Closed the loop: reconstruct edge kinds along the
                    // path.
                    let mut cycle = Vec::new();
                    for i in 0..on_path.len() {
                        let from = on_path[i];
                        let to = if i + 1 < on_path.len() {
                            on_path[i + 1]
                        } else {
                            start
                        };
                        let kind = self
                            .nodes
                            .get(&from)
                            .and_then(|n| n.out.iter().find(|(t, _)| *t == to))
                            .map(|(_, k)| *k)
                            .unwrap_or(EdgeKind::ReadWrite);
                        cycle.push(CycleEdge { from, to, kind });
                    }
                    self.record_verdict(cycle, detected_at);
                    return true;
                }
                Some((target, _)) => {
                    if self.nodes.contains_key(&target) && visited.insert(target) {
                        stack.push((target, 0));
                        on_path.push(target);
                    }
                }
            }
        }
        false
    }

    fn record_verdict(&mut self, cycle: Vec<CycleEdge>, detected_at: u64) {
        self.cycles_total += 1;
        let txns: Vec<u64> = cycle.iter().map(|e| e.from).collect();
        // The critical anti-dependency: its reader observed state from
        // before its writer's install.
        let racing = cycle
            .iter()
            .find(|e| e.kind == EdgeKind::ReadWrite)
            .map(|e| (e.from, e.to))
            .unwrap_or((cycle[0].from, cycle[0].to));
        let mut templates = Vec::new();
        let mut cells = Vec::new();
        let mut cell_keys: Vec<(&'static str, &'static str)> = Vec::new();
        for &t in &txns {
            if let Some(n) = self.nodes.get(&t) {
                let template = n.template.unwrap_or("?");
                let cell = format!("{}@{}", template, n.isolation);
                if !cells.contains(&cell) {
                    cells.push(cell);
                    cell_keys.push((template, n.isolation));
                }
                let template = template.to_string();
                if !templates.contains(&template) {
                    templates.push(template);
                }
            }
        }
        // One anomaly per cell per cycle, however many members share
        // the cell.
        for key in cell_keys {
            self.per_cell.entry(key).or_default().anomalies += 1;
        }
        feral_trace::record(
            feral_trace::EventKind::Anomaly,
            txns[0],
            txns.get(1).copied().unwrap_or(0),
            feral_trace::fnv64(templates.first().map(String::as_bytes).unwrap_or(b"?")),
        );
        if self.verdicts.len() < MAX_VERDICTS {
            self.verdicts.push(AnomalyVerdict {
                cycle,
                txns,
                racing,
                templates,
                cells,
                detected_at,
            });
        }
    }

    /// Watermark GC: reclaim completed nodes with
    /// `commit_ts < watermark` that are unreachable from the frontier.
    ///
    /// Soundness: a future transaction `T` has
    /// `read_ts >= begin_ts >= watermark` for every read, so every
    /// *new* edge out of `T` targets a node with
    /// `commit_ts > T.read_ts >= watermark` — the frontier. A cycle
    /// through `T` therefore leaves `T` into the frontier and must
    /// travel from there back to `T` along existing edges, so it can
    /// only touch a sub-watermark node that is **reachable from the
    /// frontier** (a long-lived reader above the watermark can hold a
    /// backward rw edge into the old region, which is why
    /// `commit_ts < watermark` alone is *not* a safe reclaim test —
    /// the crate's GC proptest finds that counterexample). Reclaiming
    /// exactly the unreachable old nodes can never lose a cycle: every
    /// cycle among completed nodes was already detected when its last
    /// member was ingested, and no future cycle can route through an
    /// unreachable node. Memory therefore stays proportional to the
    /// active window plus its backward-dependency closure.
    pub(crate) fn gc(&mut self, watermark: u64) {
        self.watermark = watermark;
        if self.order.first().is_none_or(|&(ts, _)| ts >= watermark) {
            return;
        }
        // Mark: flood out-edges from the frontier (commit_ts >=
        // watermark); everything touched can still sit on a future
        // cycle and must be retained.
        let mut reachable: HashSet<u64> = HashSet::new();
        let mut queue: Vec<u64> = Vec::new();
        for &(_, txn) in self.order.range((watermark, 0)..) {
            if reachable.insert(txn) {
                queue.push(txn);
            }
        }
        while let Some(t) = queue.pop() {
            if let Some(n) = self.nodes.get(&t) {
                for &(to, _) in &n.out {
                    if reachable.insert(to) {
                        queue.push(to);
                    }
                }
            }
        }
        let doomed: Vec<(u64, u64)> = self
            .order
            .range(..(watermark, 0))
            .filter(|(_, txn)| !reachable.contains(txn))
            .copied()
            .collect();
        if doomed.is_empty() {
            return;
        }
        let mut gone: HashSet<u64> = HashSet::new();
        for (ts, txn) in doomed {
            self.order.remove(&(ts, txn));
            self.nodes.remove(&txn);
            self.stash.remove(&txn);
            gone.insert(txn);
            self.gc_reclaims += 1;
        }
        for n in self.nodes.values_mut() {
            n.out.retain(|(to, _)| !gone.contains(to));
        }
        self.edge_set
            .retain(|(from, to, _)| !gone.contains(from) && !gone.contains(to));
        self.by_row.retain(|_, u| {
            u.writers.retain(|t| !gone.contains(t));
            u.readers.retain(|(t, _)| !gone.contains(t));
            !u.writers.is_empty() || !u.readers.is_empty()
        });
        self.by_table.retain(|_, u| {
            u.writers.retain(|t| !gone.contains(t));
            u.pred_readers.retain(|(t, _, _)| !gone.contains(t));
            !u.writers.is_empty() || !u.pred_readers.is_empty()
        });
    }
}
