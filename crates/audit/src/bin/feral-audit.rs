//! `feral-audit` — read back a saved audit snapshot and render it.
//!
//! ```text
//! feral-audit report --in results/BENCH_audit.json   # human-readable
//! feral-audit report --in FILE --prom                # Prometheus text
//! feral-audit report --in FILE --json                # validated JSON
//! feral-audit report --demo                          # staged anomaly
//! ```
//!
//! `--in` accepts either a bare snapshot (the output of
//! `AuditSnapshot::to_json`) or a commitbench report whose top-level
//! `audit` key holds one. This binary hand-rolls its argument parsing:
//! it cannot use feral-cli, which (transitively) depends on the engine
//! that depends on this crate.

use feral_audit::{
    AuditMode, AuditSnapshot, Auditor, ReadRecord, ReadTarget, TxnFootprint, WriteRecord,
};
use feral_trace::json::{self, Json};
use std::process::ExitCode;

const USAGE: &str = "usage: feral-audit report (--in FILE | --demo) [--prom | --json] \
                     [--out PATH] [--validate] (--help for details)";

/// The house `--help` text. The closing block must stay byte-identical
/// to `feral_cli::STANDARD_FLAGS` — this binary cannot link feral-cli
/// (dependency cycle), so the `cli_help` integration test pins it.
const HELP: &str = "feral-audit — render and validate saved runtime-audit snapshots

Usage:
  feral-audit report (--in FILE | --demo) [--prom]

Options:
  --in FILE         a bare snapshot, or a commitbench report embedding one
  --demo            stage the paper's motivating duplicate-signup race
  --prom            Prometheus text exposition instead of text/JSON

Standard flags:
  --json            emit machine-readable JSON
  --out PATH        write the artifact to PATH instead of stdout
  --validate        self-validate the artifact and exit nonzero on schema drift
  --smoke           small fast run for CI gates (subset of --full)
  --help            this text
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help") {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    if argv.first().map(String::as_str) != Some("report") {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut demo = false;
    let mut validate = false;
    let mut format = "text";
    let mut it = argv[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--in" => match it.next() {
                Some(path) => input = Some(path.clone()),
                None => {
                    eprintln!("--in needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("--out needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--demo" => demo = true,
            "--prom" => format = "prom",
            "--json" => format = "json",
            "--validate" => validate = true,
            "--smoke" => {} // accepted everywhere; this tool has no slow mode
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let snap = if demo {
        demo_snapshot()
    } else {
        let Some(path) = input else {
            eprintln!("need --in FILE or --demo\n{USAGE}");
            return ExitCode::FAILURE;
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        match load_snapshot(&text) {
            Ok(snap) => snap,
            Err(err) => {
                eprintln!("{path}: {err}");
                return ExitCode::FAILURE;
            }
        }
    };
    if validate {
        if let Err(err) = feral_audit::validate_audit_json(&snap.to_json()) {
            eprintln!("feral-audit: snapshot fails the export schema: {err}");
            return ExitCode::FAILURE;
        }
    }
    let rendered = match format {
        "prom" => snap.to_prometheus(),
        "json" => format!("{}\n", snap.to_json()),
        _ => snap.render_text(),
    };
    match out {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, &rendered) {
                eprintln!("feral-audit: cannot write {path}: {err}");
                return ExitCode::FAILURE;
            }
            eprintln!("feral-audit: wrote {path}");
        }
        None => print!("{rendered}"),
    }
    if snap.cycles > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Accept a bare snapshot or a commitbench report embedding one under
/// `audit` (or one per trial under `trials[*].audit` — first match
/// with cycles wins, else the first).
fn load_snapshot(text: &str) -> Result<AuditSnapshot, String> {
    let doc = json::parse(text)?;
    if doc.get("mode").is_some() && doc.get("verdicts").is_some() {
        return AuditSnapshot::from_json(&doc);
    }
    if let Some(audit) = doc.get("audit") {
        return AuditSnapshot::from_json(audit);
    }
    if let Some(trials) = doc.get("trials").and_then(Json::as_arr) {
        let snaps: Vec<&Json> = trials.iter().filter_map(|t| t.get("audit")).collect();
        if let Some(best) = snaps
            .iter()
            .find(|a| a.get("cycles").and_then(Json::as_u64).unwrap_or(0) > 0)
            .or(snaps.first())
        {
            return AuditSnapshot::from_json(best);
        }
    }
    Err(
        "no audit snapshot found (expected a bare snapshot, an 'audit' key, or trials[*].audit)"
            .into(),
    )
}

/// Stage the paper's motivating race — two Read Committed signups
/// probe-then-insert the same email — and run it through a real
/// [`Auditor`] so the demo exercises the live pipeline end to end.
fn demo_snapshot() -> AuditSnapshot {
    let auditor = Auditor::new(AuditMode::Full);
    let table = feral_trace::fnv64(b"signups");
    let email = feral_audit::column_value_hash(1, b"casey@example.com");
    let probe = |read_ts| ReadRecord {
        table,
        target: ReadTarget::Pred(vec![email]),
        read_ts,
    };
    let insert = |row| WriteRecord {
        table,
        row,
        old: None,
        new: Some(vec![email]),
    };
    auditor.observe_begin(7, 10);
    auditor.observe_begin(8, 10);
    // Both probes run at ts 10 and see no row; both inserts commit.
    auditor.observe_commit(TxnFootprint {
        txn: 7,
        begin_ts: 10,
        commit_ts: 11,
        isolation: "read-committed",
        template: Some("uniqueness-probe-insert:signups.email"),
        reads: vec![probe(10)],
        writes: vec![insert(100)],
        sampled_out: false,
    });
    auditor.observe_commit(TxnFootprint {
        txn: 8,
        begin_ts: 10,
        commit_ts: 12,
        isolation: "read-committed",
        template: Some("uniqueness-probe-insert:signups.email"),
        reads: vec![probe(10)],
        writes: vec![insert(101)],
        sampled_out: false,
    });
    auditor.snapshot()
}
