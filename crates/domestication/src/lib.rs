//! # feral-domestication
//!
//! The paper's Section 7 recommendation, implemented: *"domesticate"* the
//! feral mechanisms by letting applications declare invariants in their
//! domain language while the system chooses the cheapest sufficient
//! enforcement —
//!
//! 1. **coordination-free** (keep the feral validation, which is correct
//!    for I-confluent invariants) when the invariant-confluence analysis
//!    says so, and
//! 2. **database-backed** (unique index / foreign key) when it does not —
//!    "only pay the price of coordination when necessary."
//!
//! The [`Domesticator`] consults [`feral_iconfluence`]'s model checker, so
//! the routing decision is *derived*, not hard-coded.

#![warn(missing_docs)]

use feral_db::OnDelete;
use feral_iconfluence::{classify_validator, derive_safety, OperationMix, Safety};
use feral_orm::{App, OrmError, OrmResult};
use std::fmt;

/// An application-declared invariant, in domain terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclaredInvariant {
    /// `field` must be unique within `model`.
    Unique {
        /// Model class name.
        model: String,
        /// Attribute name.
        field: String,
    },
    /// `association` on `child_model` must always reference a live row.
    Referential {
        /// Child model class name.
        child_model: String,
        /// `belongs_to` association name.
        association: String,
    },
    /// A row-local invariant enforced by the named validator kind
    /// (format, length, inclusion, numericality, presence-of-attribute...).
    RowLocal {
        /// Model class name.
        model: String,
        /// `validates_*` kind.
        validator_kind: String,
    },
}

impl fmt::Display for DeclaredInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclaredInvariant::Unique { model, field } => {
                write!(f, "unique({model}.{field})")
            }
            DeclaredInvariant::Referential {
                child_model,
                association,
            } => write!(f, "referential({child_model}.{association})"),
            DeclaredInvariant::RowLocal {
                model,
                validator_kind,
            } => write!(f, "row-local({model}: {validator_kind})"),
        }
    }
}

/// The enforcement mechanism the domesticator selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Keep the feral validation; no coordination required.
    CoordinationFree,
    /// Install an in-database unique index.
    DatabaseUniqueIndex,
    /// Install an in-database foreign key (cascade on delete).
    DatabaseForeignKey,
}

/// One routing decision.
#[derive(Debug, Clone)]
pub struct EnforcementPlan {
    /// The declared invariant.
    pub invariant: DeclaredInvariant,
    /// The I-confluence verdict that drove the choice.
    pub safety: Safety,
    /// The selected mechanism.
    pub mechanism: Mechanism,
    /// Whether the verdict came from the model checker (vs the static
    /// table).
    pub mechanically_derived: bool,
}

impl fmt::Display for EnforcementPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {:?} ({:?}{})",
            self.invariant,
            self.mechanism,
            self.safety,
            if self.mechanically_derived {
                ", checker-derived"
            } else {
                ""
            }
        )
    }
}

/// Invariant-aware enforcement router bound to an [`App`].
pub struct Domesticator {
    app: App,
    mix: OperationMix,
    plans: Vec<EnforcementPlan>,
}

impl Domesticator {
    /// Create a router for `app` under the expected operation mix (the
    /// paper's "Depends" verdicts resolve by whether deletions occur).
    pub fn new(app: App, mix: OperationMix) -> Self {
        Domesticator {
            app,
            mix,
            plans: Vec::new(),
        }
    }

    /// Declarations so far.
    pub fn plans(&self) -> &[EnforcementPlan] {
        &self.plans
    }

    /// Declare an invariant; the router classifies it (via the model
    /// checker where possible) and installs database backing only when the
    /// invariant is not I-confluent under the configured mix.
    pub fn declare(&mut self, invariant: DeclaredInvariant) -> OrmResult<&EnforcementPlan> {
        let validator_kind = match &invariant {
            DeclaredInvariant::Unique { .. } => "validates_uniqueness_of".to_string(),
            DeclaredInvariant::Referential { .. } => "validates_presence_of".to_string(),
            DeclaredInvariant::RowLocal { validator_kind, .. } => validator_kind.clone(),
        };
        let (safety, mechanically_derived) = match derive_safety(&validator_kind, self.mix) {
            Some(s) => (s, true),
            None => (classify_validator(&validator_kind, self.mix), false),
        };
        let mechanism = if safety == Safety::IConfluent {
            Mechanism::CoordinationFree
        } else {
            match &invariant {
                DeclaredInvariant::Unique { model, field } => {
                    self.app.add_index(model, &[field.as_str()], true)?;
                    Mechanism::DatabaseUniqueIndex
                }
                DeclaredInvariant::Referential {
                    child_model,
                    association,
                } => {
                    self.app
                        .add_foreign_key(child_model, association, OnDelete::Cascade)?;
                    Mechanism::DatabaseForeignKey
                }
                DeclaredInvariant::RowLocal { .. } => {
                    return Err(OrmError::Config(format!(
                        "row-local invariant {invariant} unexpectedly classified unsafe"
                    )));
                }
            }
        };
        self.plans.push(EnforcementPlan {
            invariant,
            safety,
            mechanism,
            mechanically_derived,
        });
        Ok(self.plans.last().expect("just pushed"))
    }

    /// How many declared invariants required coordination — the
    /// "only pay when necessary" dividend is `1 - coordinated/total`.
    pub fn coordination_fraction(&self) -> f64 {
        if self.plans.is_empty() {
            return 0.0;
        }
        let coordinated = self
            .plans
            .iter()
            .filter(|p| p.mechanism != Mechanism::CoordinationFree)
            .count();
        coordinated as f64 / self.plans.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feral_db::Datum;
    use feral_orm::{Dependent, ModelDef};
    use std::sync::{Arc, Barrier};
    use std::thread;

    fn app() -> App {
        let app = App::in_memory();
        app.define(
            ModelDef::build("Department")
                .string("name")
                .has_many_dependent("users", Dependent::Destroy)
                .finish(),
        )
        .unwrap();
        app.define(
            ModelDef::build("User")
                .string("username")
                .belongs_to("department")
                .validates_uniqueness_of("username")
                .validates_presence_of("department")
                .validates_length_of("username", Some(1), Some(20))
                .finish(),
        )
        .unwrap();
        app
    }

    #[test]
    fn row_local_invariants_stay_coordination_free() {
        let mut d = Domesticator::new(app(), OperationMix::WithDeletions);
        let plan = d
            .declare(DeclaredInvariant::RowLocal {
                model: "User".into(),
                validator_kind: "validates_length_of".into(),
            })
            .unwrap();
        assert_eq!(plan.mechanism, Mechanism::CoordinationFree);
        assert!(plan.mechanically_derived);
    }

    #[test]
    fn uniqueness_gets_a_database_index() {
        let mut d = Domesticator::new(app(), OperationMix::InsertionsOnly);
        let plan = d
            .declare(DeclaredInvariant::Unique {
                model: "User".into(),
                field: "username".into(),
            })
            .unwrap();
        assert_eq!(plan.mechanism, Mechanism::DatabaseUniqueIndex);
    }

    #[test]
    fn referential_routing_depends_on_the_mix() {
        let mut ins = Domesticator::new(app(), OperationMix::InsertionsOnly);
        let plan = ins
            .declare(DeclaredInvariant::Referential {
                child_model: "User".into(),
                association: "department".into(),
            })
            .unwrap();
        assert_eq!(plan.mechanism, Mechanism::CoordinationFree);

        let mut del = Domesticator::new(app(), OperationMix::WithDeletions);
        let plan = del
            .declare(DeclaredInvariant::Referential {
                child_model: "User".into(),
                association: "department".into(),
            })
            .unwrap();
        assert_eq!(plan.mechanism, Mechanism::DatabaseForeignKey);
        assert!((del.coordination_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn domesticated_app_eliminates_duplicate_anomalies() {
        let a = app();
        let mut d = Domesticator::new(a.clone(), OperationMix::WithDeletions);
        d.declare(DeclaredInvariant::Unique {
            model: "User".into(),
            field: "username".into(),
        })
        .unwrap();
        let dept = a
            .session()
            .create_strict("Department", &[("name", Datum::text("eng"))])
            .unwrap();
        let dept_id = dept.id().unwrap();
        // hammer one username from 8 threads × 20 rounds: exactly one row
        // per round survives
        let threads = 8;
        let rounds = 20;
        let barrier = Arc::new(Barrier::new(threads));
        let mut handles = Vec::new();
        for _ in 0..threads {
            let a = a.clone();
            let barrier = barrier.clone();
            handles.push(thread::spawn(move || {
                for r in 0..rounds {
                    barrier.wait();
                    let mut s = a.session();
                    let _ = s.create(
                        "User",
                        &[
                            ("username", Datum::text(format!("u{r}"))),
                            ("department_id", Datum::Int(dept_id)),
                        ],
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut s = a.session();
        assert_eq!(s.count("User").unwrap(), rounds);
    }

    #[test]
    fn coordination_fraction_reflects_the_workload_savings() {
        let mut d = Domesticator::new(app(), OperationMix::InsertionsOnly);
        d.declare(DeclaredInvariant::RowLocal {
            model: "User".into(),
            validator_kind: "validates_length_of".into(),
        })
        .unwrap();
        d.declare(DeclaredInvariant::Referential {
            child_model: "User".into(),
            association: "department".into(),
        })
        .unwrap();
        d.declare(DeclaredInvariant::Unique {
            model: "User".into(),
            field: "username".into(),
        })
        .unwrap();
        // only uniqueness needed coordination: 1/3
        assert!((d.coordination_fraction() - 1.0 / 3.0).abs() < 1e-9);
        // plans render for operator display
        for p in d.plans() {
            assert!(!p.to_string().is_empty());
        }
    }
}
