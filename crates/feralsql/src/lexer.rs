//! SQL tokenizer.

use std::fmt;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched
    /// case-insensitively by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `*`.
    Star,
    /// `;`.
    Semi,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Semi => write!(f, ";"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// Lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some('>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                Some('=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                message: "unterminated string".into(),
                                position: i,
                            })
                        }
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(c) => {
                            s.push(*c);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || (bytes[i] == '.'
                            && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    if bytes[i] == '.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float {text:?}"),
                        position: start,
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad integer {text:?}"),
                        position: start,
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' || c == '"' => {
                // identifiers, optionally double-quoted
                if c == '"' {
                    let mut s = String::new();
                    i += 1;
                    while i < bytes.len() && bytes[i] != '"' {
                        s.push(bytes[i]);
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated quoted identifier".into(),
                            position: i,
                        });
                    }
                    i += 1;
                    out.push(Token::Ident(s));
                } else {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    out.push(Token::Ident(bytes[start..i].iter().collect()));
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_select() {
        let toks = tokenize("SELECT 1 FROM t WHERE key = 'a''b' LIMIT 1;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Int(1));
        assert!(toks.contains(&Token::Str("a'b".into())));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn operators_and_numbers() {
        let toks = tokenize("a <= -2.5 AND b <> 3 OR c >= 4").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Float(-2.5)));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Ge));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT * -- the works\nFROM t").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("SELECT \"weird name\" FROM t").unwrap();
        assert!(toks.contains(&Token::Ident("weird name".into())));
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = tokenize("SELECT @").unwrap_err();
        assert!(err.message.contains("unexpected"));
    }
}
