//! # feral-sql
//!
//! A minimal SQL front-end over [`feral_db`], covering exactly the
//! dialect the paper's appendices use: `CREATE TABLE` / `CREATE [UNIQUE]
//! INDEX`, `INSERT`, `UPDATE`, `DELETE`, transactions with optional
//! isolation levels, and `SELECT` with `LEFT OUTER JOIN`, `WHERE`,
//! `GROUP BY` + `HAVING COUNT(*)`, `ORDER BY`, `LIMIT` (including the
//! appendix's spelled-out `LIMIT ONE`), and `FOR UPDATE`.
//!
//! The duplicate- and orphan-counting queries of Appendix C run verbatim:
//!
//! ```
//! use feral_db::Database;
//! use feral_sql::SqlSession;
//!
//! let mut s = SqlSession::new(Database::in_memory());
//! s.execute("CREATE TABLE users (department_id INT)").unwrap();
//! s.execute("CREATE TABLE departments (name TEXT)").unwrap();
//! s.execute("INSERT INTO users (department_id) VALUES (7)").unwrap();
//! let orphans = s.execute(
//!     "SELECT department_id, COUNT(*) FROM users AS U \
//!      LEFT OUTER JOIN departments AS D ON U.department_id = D.id \
//!      WHERE D.id IS NULL GROUP BY department_id HAVING COUNT(*) > 0",
//! ).unwrap().rows();
//! assert_eq!(orphans.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{
    ColRef, ColumnSpec, Expr, FkAction, ForeignKeySpec, Order, Select, SelectItem, Statement,
    TableRef,
};
pub use exec::{SqlError, SqlOutput, SqlSession};
pub use parser::{parse, ParseError};
