//! Recursive-descent SQL parser for the subset the paper's queries use.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use feral_db::{CmpOp, DataType, Datum};
use std::fmt;

/// Parse error with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}
impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: format!(
                "{} (at token {} of {:?})",
                msg.into(),
                self.pos,
                self.toks.get(self.pos)
            ),
        })
    }

    /// Consume a keyword (case-insensitive) or fail.
    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}"))
        }
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_tok(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat_tok(t) {
            Ok(())
        } else {
            self.err(format!("expected {t}"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError {
                message: format!("expected identifier, got {other:?}"),
            }),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// If the next token is an aggregate function name, which one?
    fn peek_agg(&self) -> Option<AggFn> {
        match self.peek() {
            Some(Token::Ident(s)) => match s.to_ascii_uppercase().as_str() {
                "SUM" => Some(AggFn::Sum),
                "MIN" => Some(AggFn::Min),
                "MAX" => Some(AggFn::Max),
                "AVG" => Some(AggFn::Avg),
                _ => None,
            },
            _ => None,
        }
    }

    fn literal(&mut self) -> Result<Datum, ParseError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Datum::Int(i)),
            Some(Token::Float(f)) => Ok(Datum::Float(f)),
            Some(Token::Str(s)) => Ok(Datum::Text(s)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Datum::Null),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Datum::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Datum::Bool(false)),
            other => Err(ParseError {
                message: format!("expected literal, got {other:?}"),
            }),
        }
    }

    fn col_ref_from(&mut self, first: String) -> Result<ColRef, ParseError> {
        if self.eat_tok(&Token::Dot) {
            let col = self.ident()?;
            Ok(ColRef {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(ColRef::bare(first))
        }
    }

    fn col_ref(&mut self) -> Result<ColRef, ParseError> {
        let first = self.ident()?;
        self.col_ref_from(first)
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        match self.bump() {
            Some(Token::Eq) => Ok(CmpOp::Eq),
            Some(Token::Ne) => Ok(CmpOp::Ne),
            Some(Token::Lt) => Ok(CmpOp::Lt),
            Some(Token::Le) => Ok(CmpOp::Le),
            Some(Token::Gt) => Ok(CmpOp::Gt),
            Some(Token::Ge) => Ok(CmpOp::Ge),
            other => Err(ParseError {
                message: format!("expected comparison operator, got {other:?}"),
            }),
        }
    }

    // expr := or_term
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_term()?;
        while self.eat_kw("OR") {
            let right = self.and_term()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_term()?;
        while self.eat_kw("AND") {
            let right = self.not_term()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_term(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.not_term()?)));
        }
        self.atom_expr()
    }

    fn atom_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_tok(&Token::LParen) {
            let e = self.expr()?;
            self.expect_tok(&Token::RParen)?;
            return Ok(e);
        }
        // COUNT(*) <op> lit (HAVING)
        if self.is_kw("COUNT") {
            self.bump();
            self.expect_tok(&Token::LParen)?;
            if !self.eat_tok(&Token::Star) {
                let _ = self.col_ref()?;
            }
            self.expect_tok(&Token::RParen)?;
            let op = self.cmp_op()?;
            let value = self.literal()?;
            return Ok(Expr::CountCmp { op, value });
        }
        let col = self.col_ref()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { col, negated });
        }
        // col [NOT] IN (v1, v2, ...)
        let negated_in = if self.is_kw("NOT") {
            self.bump();
            self.expect_kw("IN")?;
            true
        } else if self.eat_kw("IN") {
            false
        } else {
            let op = self.cmp_op()?;
            return self.finish_cmp(col, op);
        };
        self.expect_tok(&Token::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(self.literal()?);
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        self.expect_tok(&Token::RParen)?;
        Ok(Expr::InList {
            col,
            values,
            negated: negated_in,
        })
    }

    fn finish_cmp(&mut self, col: ColRef, op: CmpOp) -> Result<Expr, ParseError> {
        // column-to-column (join condition) or column-to-literal
        match self.peek() {
            Some(Token::Ident(s))
                if !s.eq_ignore_ascii_case("null")
                    && !s.eq_ignore_ascii_case("true")
                    && !s.eq_ignore_ascii_case("false") =>
            {
                let right = self.col_ref()?;
                if op != CmpOp::Eq {
                    return self.err("only = is supported between columns");
                }
                Ok(Expr::ColEq(col, right))
            }
            _ => {
                let value = self.literal()?;
                Ok(Expr::Cmp { col, op, value })
            }
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                // bare alias: `users U` (but not a keyword)
                Some(Token::Ident(s)) if !KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) => {
                    Some(self.ident()?)
                }
                _ => None,
            }
        };
        Ok(TableRef { name, alias })
    }

    fn select(&mut self) -> Result<Select, ParseError> {
        self.expect_kw("SELECT")?;
        let mut items = Vec::new();
        loop {
            if self.eat_tok(&Token::Star) {
                items.push(SelectItem::Star);
            } else if self.is_kw("COUNT") {
                self.bump();
                self.expect_tok(&Token::LParen)?;
                let inner = if self.eat_tok(&Token::Star) {
                    None
                } else {
                    Some(self.col_ref()?)
                };
                self.expect_tok(&Token::RParen)?;
                items.push(SelectItem::Count(inner));
            } else if let Some(agg) = self.peek_agg() {
                self.bump();
                self.expect_tok(&Token::LParen)?;
                let col = self.col_ref()?;
                self.expect_tok(&Token::RParen)?;
                items.push(SelectItem::Agg(agg, col));
            } else {
                match self.peek() {
                    Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                        items.push(SelectItem::Lit(self.literal()?));
                    }
                    _ => items.push(SelectItem::Col(self.col_ref()?)),
                }
            }
            // optional `AS alias` on items is accepted and ignored
            if self.eat_kw("AS") {
                let _ = self.ident()?;
            }
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut left_join = None;
        if self.eat_kw("LEFT") {
            let _ = self.eat_kw("OUTER");
            self.expect_kw("JOIN")?;
            let right = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            left_join = Some((right, on));
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            Some(self.col_ref()?)
        } else {
            None
        };
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let col = self.col_ref()?;
            let dir = if self.eat_kw("DESC") {
                Order::Desc
            } else {
                let _ = self.eat_kw("ASC");
                Order::Asc
            };
            Some((col, dir))
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            // `LIMIT 1` or PostgreSQL's spelled-out `LIMIT ONE` from the
            // paper's Appendix B pseudo-SQL
            if self.eat_kw("ONE") {
                Some(1)
            } else {
                match self.bump() {
                    Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                    other => {
                        return Err(ParseError {
                            message: format!("expected LIMIT count, got {other:?}"),
                        })
                    }
                }
            }
        } else {
            None
        };
        let for_update = if self.eat_kw("FOR") {
            self.expect_kw("UPDATE")?;
            true
        } else {
            false
        };
        Ok(Select {
            items,
            from,
            left_join,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            for_update,
        })
    }

    /// `REFERENCES parent [(col)] [ON DELETE CASCADE|SET NULL|RESTRICT|NO
    /// ACTION]`, normalized onto `column`.
    fn references_clause(&mut self, column: String) -> Result<ForeignKeySpec, ParseError> {
        self.expect_kw("REFERENCES")?;
        let parent_table = self.ident()?;
        let parent_column = if self.eat_tok(&Token::LParen) {
            let c = self.ident()?;
            self.expect_tok(&Token::RParen)?;
            c
        } else {
            "id".to_string()
        };
        let mut on_delete = FkAction::Restrict;
        if self.eat_kw("ON") {
            self.expect_kw("DELETE")?;
            on_delete = if self.eat_kw("CASCADE") {
                FkAction::Cascade
            } else if self.eat_kw("SET") {
                self.expect_kw("NULL")?;
                FkAction::SetNull
            } else if self.eat_kw("RESTRICT") {
                FkAction::Restrict
            } else if self.eat_kw("NO") {
                self.expect_kw("ACTION")?;
                FkAction::Restrict
            } else {
                return self.err("expected CASCADE, SET NULL, RESTRICT, or NO ACTION");
            };
        }
        Ok(ForeignKeySpec {
            column,
            parent_table,
            parent_column,
            on_delete,
        })
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let name = self.ident()?;
        let ty = match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SERIAL" => DataType::Int,
            "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => DataType::Float,
            "TEXT" | "STRING" | "VARCHAR" | "CHAR" => DataType::Text,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            "TIMESTAMP" | "DATETIME" => DataType::Timestamp,
            "BYTES" | "BLOB" | "BYTEA" => DataType::Bytes,
            other => {
                return Err(ParseError {
                    message: format!("unknown type {other}"),
                })
            }
        };
        // swallow a parenthesized size: VARCHAR(255)
        if self.eat_tok(&Token::LParen) {
            while !self.eat_tok(&Token::RParen) {
                if self.bump().is_none() {
                    return self.err("unterminated type parameters");
                }
            }
        }
        Ok(ty)
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.is_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            self.expect_tok(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(&Token::RParen)?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect_tok(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.literal()?);
                    if !self.eat_tok(&Token::Comma) {
                        break;
                    }
                }
                self.expect_tok(&Token::RParen)?;
                if row.len() != columns.len() {
                    return self.err("VALUES arity mismatch");
                }
                rows.push(row);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert {
                table,
                columns,
                rows,
            });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_tok(&Token::Eq)?;
                sets.push((col, self.literal()?));
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            let where_clause = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                sets,
                where_clause,
            });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let where_clause = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete {
                table,
                where_clause,
            });
        }
        if self.eat_kw("CREATE") {
            let unique = self.eat_kw("UNIQUE");
            if self.eat_kw("INDEX") {
                // CREATE [UNIQUE] INDEX [name] ON t (cols)
                let name = if self.is_kw("ON") {
                    None
                } else {
                    Some(self.ident()?)
                };
                self.expect_kw("ON")?;
                let table = self.ident()?;
                self.expect_tok(&Token::LParen)?;
                let mut columns = Vec::new();
                loop {
                    columns.push(self.ident()?);
                    if !self.eat_tok(&Token::Comma) {
                        break;
                    }
                }
                self.expect_tok(&Token::RParen)?;
                return Ok(Statement::CreateIndex {
                    name,
                    table,
                    columns,
                    unique,
                });
            }
            if unique {
                return self.err("UNIQUE is only valid before INDEX");
            }
            self.expect_kw("TABLE")?;
            let table = self.ident()?;
            self.expect_tok(&Token::LParen)?;
            let mut columns = Vec::new();
            let mut foreign_keys = Vec::new();
            loop {
                // table-level constraint: FOREIGN KEY (col) REFERENCES p(id)
                if self.eat_kw("FOREIGN") {
                    self.expect_kw("KEY")?;
                    self.expect_tok(&Token::LParen)?;
                    let column = self.ident()?;
                    self.expect_tok(&Token::RParen)?;
                    foreign_keys.push(self.references_clause(column)?);
                    if !self.eat_tok(&Token::Comma) {
                        break;
                    }
                    continue;
                }
                let name = self.ident()?;
                let ty = self.data_type()?;
                let mut not_null = false;
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        not_null = true;
                    } else if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        not_null = true;
                    } else if self.is_kw("REFERENCES") {
                        let fk = self.references_clause(name.clone())?;
                        foreign_keys.push(fk);
                    } else {
                        break;
                    }
                }
                columns.push(ColumnSpec { name, ty, not_null });
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(&Token::RParen)?;
            return Ok(Statement::CreateTable {
                table,
                columns,
                foreign_keys,
            });
        }
        if self.eat_kw("BEGIN") || self.eat_kw("START") {
            let _ = self.eat_kw("TRANSACTION");
            let isolation = if self.eat_kw("ISOLATION") {
                self.expect_kw("LEVEL")?;
                let mut words = Vec::new();
                while let Some(Token::Ident(w)) = self.peek() {
                    words.push(w.clone());
                    self.bump();
                }
                Some(words.join(" "))
            } else {
                None
            };
            return Ok(Statement::Begin { isolation });
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") || self.eat_kw("ABORT") {
            return Ok(Statement::Rollback);
        }
        self.err("expected a statement")
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "LEFT", "OUTER", "JOIN",
    "ON", "AS", "AND", "OR", "NOT", "IS", "NULL", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "TABLE", "INDEX", "UNIQUE", "BEGIN", "COMMIT", "ROLLBACK", "FOR", "DESC",
    "ASC",
];

/// Parse one statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let toks = tokenize(sql).map_err(|e| ParseError {
        message: format!("{} at byte {}", e.message, e.position),
    })?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.statement()?;
    let _ = p.eat_tok(&Token::Semi);
    if p.pos != p.toks.len() {
        return p.err("trailing tokens after statement");
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_uniqueness_probe() {
        // paper Appendix B.1
        let s = parse("SELECT 1 FROM validated_key_values WHERE key = 'k1' LIMIT ONE;").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.limit, Some(1));
        assert_eq!(sel.items, vec![SelectItem::Lit(Datum::Int(1))]);
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn parses_the_orphan_counting_query() {
        // paper Appendix C.5
        let s = parse(
            "SELECT m_department_id, COUNT(*) FROM m_users AS U \
             LEFT OUTER JOIN m_departments AS D ON U.m_department_id = D.id \
             WHERE D.id IS NULL GROUP BY m_department_id HAVING COUNT(*) > 0;",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.left_join.is_some());
        assert_eq!(sel.group_by, Some(ColRef::bare("m_department_id")));
        assert!(matches!(sel.having, Some(Expr::CountCmp { .. })));
        let (right, on) = sel.left_join.unwrap();
        assert_eq!(right.binding(), "D");
        assert!(matches!(on, Expr::ColEq(_, _)));
        assert!(matches!(
            sel.where_clause,
            Some(Expr::IsNull { negated: false, .. })
        ));
    }

    #[test]
    fn parses_dup_counting_query() {
        // paper Appendix C.2
        let s = parse("SELECT key, COUNT(key) FROM t GROUP BY key HAVING COUNT(key) > 1;").unwrap();
        assert!(matches!(s, Statement::Select(_)));
    }

    #[test]
    fn parses_dml_and_ddl() {
        assert!(matches!(
            parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap(),
            Statement::Insert { rows, .. } if rows.len() == 2
        ));
        assert!(matches!(
            parse("UPDATE t SET a = 3, b = 'y' WHERE id = 7").unwrap(),
            Statement::Update { sets, .. } if sets.len() == 2
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE a >= 5").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(
            parse("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(255) NOT NULL, score FLOAT)").unwrap(),
            Statement::CreateTable { columns, .. } if columns.len() == 3 && columns[1].not_null
        ));
        assert!(matches!(
            parse("CREATE UNIQUE INDEX idx ON t (name)").unwrap(),
            Statement::CreateIndex { unique: true, .. }
        ));
    }

    #[test]
    fn parses_foreign_key_declarations() {
        // column-level REFERENCES with implicit id and ON DELETE action
        let s = parse(
            "CREATE TABLE users (name TEXT, department_id INT REFERENCES departments ON DELETE CASCADE)",
        )
        .unwrap();
        let Statement::CreateTable {
            columns,
            foreign_keys,
            ..
        } = s
        else {
            panic!()
        };
        assert_eq!(columns.len(), 2);
        assert_eq!(
            foreign_keys,
            vec![ForeignKeySpec {
                column: "department_id".into(),
                parent_table: "departments".into(),
                parent_column: "id".into(),
                on_delete: FkAction::Cascade,
            }]
        );

        // table-level FOREIGN KEY with explicit parent column and SET NULL
        let s = parse(
            "CREATE TABLE posts (author_id INT, \
             FOREIGN KEY (author_id) REFERENCES users (id) ON DELETE SET NULL)",
        )
        .unwrap();
        let Statement::CreateTable { foreign_keys, .. } = s else {
            panic!()
        };
        assert_eq!(foreign_keys[0].on_delete, FkAction::SetNull);
        assert_eq!(foreign_keys[0].parent_table, "users");

        // default action is RESTRICT; NO ACTION normalizes onto it
        let s = parse("CREATE TABLE a (b_id INT REFERENCES bs (id))").unwrap();
        let Statement::CreateTable { foreign_keys, .. } = s else {
            panic!()
        };
        assert_eq!(foreign_keys[0].on_delete, FkAction::Restrict);
        let s = parse("CREATE TABLE a (b_id INT REFERENCES bs ON DELETE NO ACTION)").unwrap();
        let Statement::CreateTable { foreign_keys, .. } = s else {
            panic!()
        };
        assert_eq!(foreign_keys[0].on_delete, FkAction::Restrict);

        // garbage actions are rejected
        assert!(parse("CREATE TABLE a (b_id INT REFERENCES bs ON DELETE EXPLODE)").is_err());
        assert!(parse("CREATE TABLE a (FOREIGN KEY b_id REFERENCES bs)").is_err());
    }

    #[test]
    fn parses_transactions_and_for_update() {
        assert!(matches!(
            parse("BEGIN ISOLATION LEVEL SERIALIZABLE").unwrap(),
            Statement::Begin { isolation: Some(l) } if l.eq_ignore_ascii_case("serializable")
        ));
        assert!(matches!(parse("COMMIT;").unwrap(), Statement::Commit));
        assert!(matches!(parse("ROLLBACK").unwrap(), Statement::Rollback));
        let Statement::Select(sel) = parse("SELECT * FROM stock WHERE id = 1 FOR UPDATE").unwrap()
        else {
            panic!()
        };
        assert!(sel.for_update);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELEKT 1").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("INSERT INTO t (a) VALUES (1, 2)").is_err());
        assert!(parse("SELECT 1 FROM t extra garbage here ,").is_err());
    }
}
