//! SQL abstract syntax.

use feral_db::{CmpOp, DataType, Datum};

/// A column reference, optionally qualified by a table alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Table name or alias, if qualified (`U.department_id`).
    pub table: Option<String>,
    /// Column name, or the pseudo-column `COUNT(*)` written as
    /// `count(*)` in grouped outputs.
    pub column: String,
}

impl ColRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColRef {
            table: None,
            column: column.into(),
        }
    }

    /// Render as written.
    pub fn render(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

/// A scalar expression (restricted to what the paper's queries need).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `col <op> literal` (or `literal <op> col`, normalized).
    Cmp {
        /// Column side.
        col: ColRef,
        /// Operator.
        op: CmpOp,
        /// Literal side.
        value: Datum,
    },
    /// `col IS NULL` / `col IS NOT NULL`.
    IsNull {
        /// Column.
        col: ColRef,
        /// Negated (`IS NOT NULL`).
        negated: bool,
    },
    /// `a = b` between two columns (join conditions).
    ColEq(ColRef, ColRef),
    /// `col IN (v1, v2, ...)` / `col NOT IN (...)`.
    InList {
        /// Column.
        col: ColRef,
        /// Candidate values.
        values: Vec<Datum>,
        /// Negated (`NOT IN`).
        negated: bool,
    },
    /// `COUNT(*) <op> literal` in HAVING.
    CountCmp {
        /// Operator.
        op: CmpOp,
        /// Literal.
        value: Datum,
    },
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// Aggregate function over a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl AggFn {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Sum => "sum",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Avg => "avg",
        }
    }
}

/// One item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// A column.
    Col(ColRef),
    /// `COUNT(*)` (optionally `COUNT(col)`).
    Count(Option<ColRef>),
    /// `SUM/MIN/MAX/AVG(col)`.
    Agg(AggFn, ColRef),
    /// A literal (`SELECT 1 FROM ...`).
    Lit(Datum),
}

/// `ORDER BY` direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// A table source with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Alias (`users AS U`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name the query refers to this table by.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// A parsed SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Primary table.
    pub from: TableRef,
    /// Optional `LEFT OUTER JOIN <table> ON <cond>`.
    pub left_join: Option<(TableRef, Expr)>,
    /// WHERE clause.
    pub where_clause: Option<Expr>,
    /// GROUP BY column.
    pub group_by: Option<ColRef>,
    /// HAVING clause (over group outputs).
    pub having: Option<Expr>,
    /// ORDER BY column + direction.
    pub order_by: Option<(ColRef, Order)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// `FOR UPDATE` suffix (pessimistic locking).
    pub for_update: bool,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// NOT NULL?
    pub not_null: bool,
}

/// Referential action of a foreign key's `ON DELETE` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FkAction {
    /// Reject the delete while children exist (the default).
    #[default]
    Restrict,
    /// Delete the children too.
    Cascade,
    /// Null out the referencing column.
    SetNull,
}

/// A foreign-key declaration in CREATE TABLE — either a column-level
/// `REFERENCES parent(id)` or a table-level `FOREIGN KEY (col)
/// REFERENCES parent(id)`, both normalized to this shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKeySpec {
    /// Referencing column of the table under creation.
    pub column: String,
    /// Referenced (parent) table.
    pub parent_table: String,
    /// Referenced column (`id` when unwritten).
    pub parent_column: String,
    /// `ON DELETE` action.
    pub on_delete: FkAction,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Select carries the full query shape
pub enum Statement {
    /// `SELECT ...`.
    Select(Select),
    /// `INSERT INTO t (cols) VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// Column list.
        columns: Vec<String>,
        /// Value rows.
        rows: Vec<Vec<Datum>>,
    },
    /// `UPDATE t SET c = v [, ...] [WHERE ...]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Datum)>,
        /// Filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE ...]`.
    Delete {
        /// Target table.
        table: String,
        /// Filter.
        where_clause: Option<Expr>,
    },
    /// `CREATE TABLE t (...)`.
    CreateTable {
        /// Table name.
        table: String,
        /// Columns.
        columns: Vec<ColumnSpec>,
        /// Foreign keys (column-level `REFERENCES` and table-level
        /// `FOREIGN KEY` clauses, normalized).
        foreign_keys: Vec<ForeignKeySpec>,
    },
    /// `CREATE [UNIQUE] INDEX [name] ON t (cols)`.
    CreateIndex {
        /// Optional index name.
        name: Option<String>,
        /// Indexed table.
        table: String,
        /// Indexed columns.
        columns: Vec<String>,
        /// UNIQUE?
        unique: bool,
    },
    /// `BEGIN [ISOLATION LEVEL <level>]`.
    Begin {
        /// Optional isolation level.
        isolation: Option<String>,
    },
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
}
