//! SQL execution over `feral-db` transactions.

use crate::ast::*;
use crate::parser::{parse, ParseError};
use feral_db::{
    ColumnDef, Database, Datum, DbError, IsolationLevel, Predicate, TableSchema, Transaction,
};
use std::cmp::Ordering;
use std::fmt;

/// SQL-layer errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lex/parse failure.
    Parse(ParseError),
    /// Engine failure (constraints, conflicts, ...).
    Db(DbError),
    /// Name resolution / semantic failure.
    Semantic(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::Db(e) => write!(f, "{e}"),
            SqlError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}
impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> Self {
        SqlError::Parse(e)
    }
}
impl From<DbError> for SqlError {
    fn from(e: DbError) -> Self {
        SqlError::Db(e)
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlOutput {
    /// SELECT result set.
    Rows {
        /// Output column labels.
        columns: Vec<String>,
        /// Row data.
        rows: Vec<Vec<Datum>>,
    },
    /// Rows affected by INSERT/UPDATE/DELETE.
    Affected(usize),
    /// DDL succeeded.
    Ddl,
    /// BEGIN/COMMIT/ROLLBACK acknowledgement.
    Txn(&'static str),
}

impl SqlOutput {
    /// The rows of a `Rows` output (panics otherwise — test convenience).
    pub fn rows(self) -> Vec<Vec<Datum>> {
        match self {
            SqlOutput::Rows { rows, .. } => rows,
            other => panic!("expected rows, got {other:?}"),
        }
    }
}

/// A SQL session: a database handle plus an optional open transaction.
/// Statements outside `BEGIN`/`COMMIT` run in autocommit mode, like a
/// psql session.
pub struct SqlSession {
    db: Database,
    tx: Option<Transaction>,
}

/// Column environment for a (possibly joined) row stream.
struct Env {
    /// `(binding, column name)` per physical column.
    cols: Vec<(String, String)>,
}

impl Env {
    fn resolve(&self, col: &ColRef) -> Result<usize, SqlError> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (b, n))| {
                n == &col.column && col.table.as_ref().map(|t| t == b).unwrap_or(true)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(SqlError::Semantic(format!(
                "unknown column {}",
                col.render()
            ))),
            _ => Err(SqlError::Semantic(format!(
                "ambiguous column {}",
                col.render()
            ))),
        }
    }
}

impl SqlSession {
    /// Open a session on `db`.
    pub fn new(db: Database) -> Self {
        SqlSession { db, tx: None }
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.tx.is_some()
    }

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<SqlOutput, SqlError> {
        let stmt = parse(sql)?;
        match stmt {
            Statement::Begin { isolation } => {
                if self.tx.is_some() {
                    return Err(SqlError::Semantic("transaction already open".into()));
                }
                let iso = match isolation {
                    Some(name) => IsolationLevel::parse(&name).ok_or_else(|| {
                        SqlError::Semantic(format!("unknown isolation level {name:?}"))
                    })?,
                    None => self.db.default_isolation(),
                };
                self.tx = Some(self.db.txn().isolation(iso).begin());
                Ok(SqlOutput::Txn("BEGIN"))
            }
            Statement::Commit => match self.tx.take() {
                Some(mut tx) => {
                    tx.commit()?;
                    Ok(SqlOutput::Txn("COMMIT"))
                }
                None => Err(SqlError::Semantic("no transaction open".into())),
            },
            Statement::Rollback => match self.tx.take() {
                Some(mut tx) => {
                    tx.rollback();
                    Ok(SqlOutput::Txn("ROLLBACK"))
                }
                None => Err(SqlError::Semantic("no transaction open".into())),
            },
            Statement::CreateTable {
                table,
                columns,
                foreign_keys,
            } => {
                let cols = columns
                    .into_iter()
                    .filter(|c| c.name != "id")
                    .map(|c| {
                        let mut d = ColumnDef::new(c.name, c.ty);
                        if c.not_null {
                            d = d.not_null();
                        }
                        d
                    })
                    .collect();
                self.db.create_table(TableSchema::new(&table, cols))?;
                for fk in foreign_keys {
                    if fk.parent_column != "id" {
                        return Err(SqlError::Semantic(format!(
                            "foreign keys may only reference id, got {}({})",
                            fk.parent_table, fk.parent_column
                        )));
                    }
                    let mode = match fk.on_delete {
                        FkAction::Restrict => feral_db::OnDelete::Restrict,
                        FkAction::Cascade => feral_db::OnDelete::Cascade,
                        FkAction::SetNull => feral_db::OnDelete::SetNull,
                    };
                    self.db
                        .add_foreign_key(&table, &fk.column, &fk.parent_table, mode)?;
                }
                Ok(SqlOutput::Ddl)
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            } => {
                let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                match name {
                    Some(n) => {
                        let tid = self.db.table_id(&table)?;
                        self.db.create_index_named(&n, tid, &col_refs, unique)?;
                    }
                    None => {
                        self.db.create_index(&table, &col_refs, unique)?;
                    }
                }
                Ok(SqlOutput::Ddl)
            }
            other => self.with_txn(|tx| exec_dml(tx, other)),
        }
    }

    fn with_txn<T>(
        &mut self,
        f: impl FnOnce(&mut Transaction) -> Result<T, SqlError>,
    ) -> Result<T, SqlError> {
        if let Some(tx) = self.tx.as_mut() {
            return f(tx);
        }
        let mut tx = self.db.txn().begin();
        match f(&mut tx) {
            Ok(v) => {
                tx.commit()?;
                Ok(v)
            }
            Err(e) => {
                tx.rollback();
                Err(e)
            }
        }
    }
}

fn exec_dml(tx: &mut Transaction, stmt: Statement) -> Result<SqlOutput, SqlError> {
    match stmt {
        Statement::Select(sel) => exec_select(tx, sel),
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let mut n = 0;
            for row in rows {
                let pairs: Vec<(&str, Datum)> =
                    columns.iter().map(|c| c.as_str()).zip(row).collect();
                tx.insert_pairs(&table, &pairs)?;
                n += 1;
            }
            Ok(SqlOutput::Affected(n))
        }
        Statement::Update {
            table,
            sets,
            where_clause,
        } => {
            let (env, rows) = fetch_single_table(tx, &table, &table, where_clause.as_ref())?;
            let mut n = 0;
            for (rref, tuple) in rows {
                let mut new = tuple.clone();
                for (col, value) in &sets {
                    let i = env.resolve(&ColRef::bare(col.clone()))?;
                    new[i] = value.clone();
                }
                tx.update(&table, rref, new)?;
                n += 1;
            }
            Ok(SqlOutput::Affected(n))
        }
        Statement::Delete {
            table,
            where_clause,
        } => {
            let (_, rows) = fetch_single_table(tx, &table, &table, where_clause.as_ref())?;
            let mut n = 0;
            for (rref, _) in rows {
                tx.delete(&table, rref)?;
                n += 1;
            }
            Ok(SqlOutput::Affected(n))
        }
        _ => Err(SqlError::Semantic("not a DML statement".into())),
    }
}

/// Rows fetched from one table: `(rowref, owned tuple)` pairs.
type FetchedRows = Vec<(feral_db::RowRef, Vec<Datum>)>;

/// Scan one table with WHERE pushdown where possible; returns the env and
/// the fetched rows.
fn fetch_single_table(
    tx: &mut Transaction,
    table: &str,
    binding: &str,
    where_clause: Option<&Expr>,
) -> Result<(Env, FetchedRows), SqlError> {
    let schema = tx.schema(table)?;
    let env = Env {
        cols: schema
            .columns
            .iter()
            .map(|c| (binding.to_string(), c.name.clone()))
            .collect(),
    };
    // try full pushdown of the WHERE clause into an engine predicate
    let pushed = where_clause.and_then(|e| to_engine_pred(e, &env).ok());
    let pred = pushed.clone().unwrap_or(Predicate::True);
    let scanned = tx.scan(table, &pred)?;
    let mut rows = Vec::with_capacity(scanned.len());
    for (rref, tuple) in scanned {
        let t: Vec<Datum> = (*tuple).clone();
        if pushed.is_none() {
            if let Some(e) = where_clause {
                if !eval_expr(e, &env, &t, None)? {
                    continue;
                }
            }
        }
        rows.push((rref, t));
    }
    Ok((env, rows))
}

/// Convert an expression to an engine predicate when every column
/// resolves in `env` and only literal comparisons appear.
fn to_engine_pred(e: &Expr, env: &Env) -> Result<Predicate, SqlError> {
    Ok(match e {
        Expr::Cmp { col, op, value } => Predicate::Cmp {
            col: env.resolve(col)?,
            op: *op,
            value: value.clone(),
        },
        Expr::IsNull { col, negated } => {
            let i = env.resolve(col)?;
            if *negated {
                Predicate::IsNotNull(i)
            } else {
                Predicate::IsNull(i)
            }
        }
        Expr::And(a, b) => to_engine_pred(a, env)?.and(to_engine_pred(b, env)?),
        Expr::Or(a, b) => Predicate::Or(vec![to_engine_pred(a, env)?, to_engine_pred(b, env)?]),
        Expr::Not(a) => Predicate::Not(Box::new(to_engine_pred(a, env)?)),
        Expr::InList {
            col,
            values,
            negated,
        } => {
            let i = env.resolve(col)?;
            let ors = Predicate::Or(values.iter().map(|v| Predicate::eq(i, v.clone())).collect());
            if *negated {
                // NOT IN must also reject NULL (unknown)
                Predicate::Not(Box::new(ors)).and(Predicate::IsNotNull(i))
            } else {
                ors
            }
        }
        Expr::ColEq(_, _) | Expr::CountCmp { .. } => {
            return Err(SqlError::Semantic("not pushable".into()))
        }
    })
}

/// Evaluate an expression over a row (`count` supplies COUNT(*) in
/// HAVING contexts). UNKNOWN evaluates to false.
fn eval_expr(e: &Expr, env: &Env, row: &[Datum], count: Option<i64>) -> Result<bool, SqlError> {
    Ok(match e {
        Expr::Cmp { col, op, value } => {
            let i = env.resolve(col)?;
            match row[i].sql_cmp(value) {
                Some(ord) => cmp_matches(*op, ord),
                None => false,
            }
        }
        Expr::IsNull { col, negated } => {
            let i = env.resolve(col)?;
            row[i].is_null() != *negated
        }
        Expr::InList {
            col,
            values,
            negated,
        } => {
            let i = env.resolve(col)?;
            let hit = values.iter().any(|v| row[i].sql_eq(v) == Some(true));
            // SQL three-valued: NULL IN (...) is unknown -> no match either way
            if row[i].is_null() {
                false
            } else {
                hit != *negated
            }
        }
        Expr::ColEq(a, b) => {
            let ia = env.resolve(a)?;
            let ib = env.resolve(b)?;
            row[ia].sql_eq(&row[ib]) == Some(true)
        }
        Expr::CountCmp { op, value } => {
            let c = count
                .ok_or_else(|| SqlError::Semantic("COUNT(*) is only valid in HAVING".into()))?;
            match Datum::Int(c).sql_cmp(value) {
                Some(ord) => cmp_matches(*op, ord),
                None => false,
            }
        }
        Expr::And(a, b) => eval_expr(a, env, row, count)? && eval_expr(b, env, row, count)?,
        Expr::Or(a, b) => eval_expr(a, env, row, count)? || eval_expr(b, env, row, count)?,
        Expr::Not(a) => !eval_expr(a, env, row, count)?,
    })
}

fn cmp_matches(op: feral_db::CmpOp, ord: Ordering) -> bool {
    use feral_db::CmpOp::*;
    match op {
        Eq => ord == Ordering::Equal,
        Ne => ord != Ordering::Equal,
        Lt => ord == Ordering::Less,
        Le => ord != Ordering::Greater,
        Gt => ord == Ordering::Greater,
        Ge => ord != Ordering::Less,
    }
}

fn exec_select(tx: &mut Transaction, sel: Select) -> Result<SqlOutput, SqlError> {
    // 1. source rows
    let from_binding = sel.from.binding().to_string();
    let (mut env, base_rows): (Env, Vec<Vec<Datum>>) = if sel.for_update {
        let schema = tx.schema(&sel.from.name)?;
        let env = Env {
            cols: schema
                .columns
                .iter()
                .map(|c| (from_binding.clone(), c.name.clone()))
                .collect(),
        };
        let pushed = sel
            .where_clause
            .as_ref()
            .and_then(|e| to_engine_pred(e, &env).ok())
            .unwrap_or(Predicate::True);
        let rows = tx.select_for_update(&sel.from.name, &pushed)?;
        (env, rows.into_iter().map(|(_, t)| (*t).clone()).collect())
    } else {
        let (env, rows) = fetch_single_table(
            tx,
            &sel.from.name,
            &from_binding,
            if sel.left_join.is_none() {
                sel.where_clause.as_ref()
            } else {
                None // with a join, WHERE applies post-join
            },
        )?;
        (env, rows.into_iter().map(|(_, t)| t).collect())
    };

    // 2. left outer join
    let mut rows: Vec<Vec<Datum>> = base_rows;
    if let Some((right, on)) = &sel.left_join {
        let right_binding = right.binding().to_string();
        let (renv, rrows) = fetch_single_table(tx, &right.name, &right_binding, None)?;
        let right_width = renv.cols.len();
        let mut joined_env = Env {
            cols: env.cols.clone(),
        };
        joined_env.cols.extend(renv.cols.clone());
        let mut joined = Vec::new();
        for l in &rows {
            let mut matched = false;
            for (_, r) in &rrows {
                let mut combined = l.clone();
                combined.extend(r.iter().cloned());
                if eval_expr(on, &joined_env, &combined, None)? {
                    joined.push(combined);
                    matched = true;
                }
            }
            if !matched {
                let mut combined = l.clone();
                combined.extend(std::iter::repeat_n(Datum::Null, right_width));
                joined.push(combined);
            }
        }
        env = joined_env;
        rows = joined;
        if let Some(w) = &sel.where_clause {
            let mut filtered = Vec::with_capacity(rows.len());
            for r in rows {
                if eval_expr(w, &env, &r, None)? {
                    filtered.push(r);
                }
            }
            rows = filtered;
        }
    }

    // 3. grouping / aggregation
    let has_count = sel
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Count(_) | SelectItem::Agg(_, _)));
    if let Some(group_col) = &sel.group_by {
        let gi = env.resolve(group_col)?;
        let mut groups: Vec<(Datum, i64, Vec<Vec<Datum>>)> = Vec::new();
        for r in rows {
            let key = r[gi].clone();
            match groups.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, c, members)) => {
                    *c += 1;
                    members.push(r);
                }
                None => groups.push((key, 1, vec![r])),
            }
        }
        if let Some(h) = &sel.having {
            groups.retain(|(_, c, members)| {
                eval_expr(h, &env, &members[0], Some(*c)).unwrap_or(false)
            });
        }
        let mut out_rows: Vec<Vec<Datum>> = Vec::with_capacity(groups.len());
        let mut columns = Vec::new();
        for item in &sel.items {
            columns.push(match item {
                SelectItem::Star => "*".to_string(),
                SelectItem::Col(c) => c.render(),
                SelectItem::Count(_) => "count".to_string(),
                SelectItem::Agg(f, c) => format!("{}({})", f.name(), c.render()),
                SelectItem::Lit(d) => d.to_string(),
            });
        }
        for (key, count, members) in &groups {
            let rep = &members[0];
            let mut out = Vec::new();
            for item in &sel.items {
                match item {
                    SelectItem::Col(c) => {
                        let i = env.resolve(c)?;
                        if i == gi {
                            out.push(key.clone());
                        } else {
                            out.push(rep[i].clone());
                        }
                    }
                    SelectItem::Count(_) => out.push(Datum::Int(*count)),
                    SelectItem::Agg(f, c) => {
                        let i = env.resolve(c)?;
                        out.push(aggregate(*f, members.iter().map(|m| &m[i])));
                    }
                    SelectItem::Lit(d) => out.push(d.clone()),
                    SelectItem::Star => {
                        return Err(SqlError::Semantic(
                            "SELECT * is not valid with GROUP BY".into(),
                        ))
                    }
                }
            }
            out_rows.push(out);
        }
        // ORDER BY / LIMIT over the grouped output
        if let Some((col, dir)) = &sel.order_by {
            let pos = sel
                .items
                .iter()
                .position(|i| matches!(i, SelectItem::Col(c) if c.column == col.column))
                .ok_or_else(|| {
                    SqlError::Semantic(
                        "ORDER BY on grouped output must name a selected column".into(),
                    )
                })?;
            out_rows.sort_by(|a, b| {
                let ord = a[pos].cmp(&b[pos]);
                match dir {
                    Order::Asc => ord,
                    Order::Desc => ord.reverse(),
                }
            });
        }
        if let Some(limit) = sel.limit {
            out_rows.truncate(limit);
        }
        return Ok(SqlOutput::Rows {
            columns,
            rows: out_rows,
        });
    }
    if has_count {
        // global aggregate
        let mut out = Vec::new();
        let mut columns = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Count(None) => {
                    columns.push("count".into());
                    out.push(Datum::Int(rows.len() as i64));
                }
                SelectItem::Count(Some(c)) => {
                    let i = env.resolve(c)?;
                    columns.push(format!("count({})", c.render()));
                    out.push(Datum::Int(
                        rows.iter().filter(|r| !r[i].is_null()).count() as i64
                    ));
                }
                SelectItem::Agg(f, c) => {
                    let i = env.resolve(c)?;
                    columns.push(format!("{}({})", f.name(), c.render()));
                    out.push(aggregate(*f, rows.iter().map(|r| &r[i])));
                }
                SelectItem::Lit(d) => {
                    columns.push(d.to_string());
                    out.push(d.clone());
                }
                _ => {
                    return Err(SqlError::Semantic(
                        "mixing columns and aggregates requires GROUP BY".into(),
                    ))
                }
            }
        }
        return Ok(SqlOutput::Rows {
            columns,
            rows: vec![out],
        });
    }

    // 4. order / limit / project
    if let Some((col, dir)) = &sel.order_by {
        let i = env.resolve(col)?;
        rows.sort_by(|a, b| {
            let ord = a[i].cmp(&b[i]);
            match dir {
                Order::Asc => ord,
                Order::Desc => ord.reverse(),
            }
        });
    }
    if let Some(limit) = sel.limit {
        rows.truncate(limit);
    }
    let mut columns = Vec::new();
    let mut projections: Vec<Option<usize>> = Vec::new(); // None = literal
    let mut literals: Vec<Datum> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Star => {
                for (i, (_, n)) in env.cols.iter().enumerate() {
                    columns.push(n.clone());
                    projections.push(Some(i));
                }
            }
            SelectItem::Col(c) => {
                columns.push(c.render());
                projections.push(Some(env.resolve(c)?));
            }
            SelectItem::Lit(d) => {
                columns.push(d.to_string());
                projections.push(None);
                literals.push(d.clone());
            }
            SelectItem::Count(_) | SelectItem::Agg(_, _) => {
                unreachable!("aggregates handled above")
            }
        }
    }
    let out_rows: Vec<Vec<Datum>> = rows
        .into_iter()
        .map(|r| {
            let mut lit_i = 0;
            projections
                .iter()
                .map(|p| match p {
                    Some(i) => r[*i].clone(),
                    None => {
                        let d = literals[lit_i].clone();
                        lit_i += 1;
                        d
                    }
                })
                .collect()
        })
        .collect();
    Ok(SqlOutput::Rows {
        columns,
        rows: out_rows,
    })
}

/// Compute an aggregate over non-NULL datums (SQL semantics: NULLs are
/// skipped; an empty input yields NULL).
fn aggregate<'a>(f: AggFn, values: impl Iterator<Item = &'a Datum>) -> Datum {
    let non_null: Vec<&Datum> = values.filter(|d| !d.is_null()).collect();
    if non_null.is_empty() {
        return Datum::Null;
    }
    match f {
        AggFn::Sum => {
            if non_null.iter().all(|d| matches!(d, Datum::Int(_))) {
                Datum::Int(non_null.iter().map(|d| d.as_int().unwrap()).sum())
            } else {
                Datum::Float(non_null.iter().filter_map(|d| d.as_float()).sum())
            }
        }
        AggFn::Avg => {
            let sum: f64 = non_null.iter().filter_map(|d| d.as_float()).sum();
            Datum::Float(sum / non_null.len() as f64)
        }
        AggFn::Min => (*non_null.iter().min().expect("non-empty")).clone(),
        AggFn::Max => (*non_null.iter().max().expect("non-empty")).clone(),
    }
}
