//! Aggregate/IN-list behaviour and parser robustness (the parser must
//! reject garbage with an error, never panic).

use feral_db::{Database, Datum};
use feral_sql::{parse, SqlSession};
use proptest::prelude::*;

fn session_with_sales() -> SqlSession {
    let mut s = SqlSession::new(Database::in_memory());
    s.execute("CREATE TABLE sales (region TEXT, amount INT)")
        .unwrap();
    for (r, a) in [
        ("west", 10),
        ("west", 30),
        ("east", 5),
        ("east", 7),
        ("east", 9),
        ("north", 100),
    ] {
        s.execute(&format!(
            "INSERT INTO sales (region, amount) VALUES ('{r}', {a})"
        ))
        .unwrap();
    }
    // one NULL amount: aggregates must skip it
    s.execute("INSERT INTO sales (region, amount) VALUES ('west', NULL)")
        .unwrap();
    s
}

#[test]
fn global_aggregates() {
    let mut s = session_with_sales();
    let rows = s
        .execute("SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) FROM sales")
        .unwrap()
        .rows();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Datum::Int(7)); // COUNT(*) counts NULL rows
    assert_eq!(rows[0][1], Datum::Int(161)); // SUM skips NULL
    assert_eq!(rows[0][2], Datum::Int(5));
    assert_eq!(rows[0][3], Datum::Int(100));
    let avg = rows[0][4].as_float().unwrap();
    assert!((avg - 161.0 / 6.0).abs() < 1e-9);
}

#[test]
fn grouped_aggregates() {
    let mut s = session_with_sales();
    let rows = s
        .execute(
            "SELECT region, COUNT(*), SUM(amount), MAX(amount) FROM sales \
             GROUP BY region ORDER BY region",
        )
        .unwrap()
        .rows();
    assert_eq!(rows.len(), 3);
    // east: 3 rows, sum 21, max 9
    assert_eq!(
        rows[0],
        vec![
            Datum::text("east"),
            Datum::Int(3),
            Datum::Int(21),
            Datum::Int(9)
        ]
    );
    // north: 1 row
    assert_eq!(rows[1][2], Datum::Int(100));
    // west: 3 rows (one NULL amount), sum 40
    assert_eq!(rows[2][1], Datum::Int(3));
    assert_eq!(rows[2][2], Datum::Int(40));
}

#[test]
fn aggregate_of_empty_set_is_null() {
    let mut s = session_with_sales();
    let rows = s
        .execute("SELECT SUM(amount) FROM sales WHERE region = 'nowhere'")
        .unwrap()
        .rows();
    assert_eq!(rows, vec![vec![Datum::Null]]);
}

#[test]
fn in_lists() {
    let mut s = session_with_sales();
    let rows = s
        .execute("SELECT region FROM sales WHERE region IN ('east', 'north') ORDER BY region")
        .unwrap()
        .rows();
    assert_eq!(rows.len(), 4);
    let rows = s
        .execute("SELECT COUNT(*) FROM sales WHERE region NOT IN ('east')")
        .unwrap()
        .rows();
    assert_eq!(rows, vec![vec![Datum::Int(4)]]);
    // NULL never matches IN or NOT IN
    let rows = s
        .execute("SELECT COUNT(*) FROM sales WHERE amount NOT IN (10)")
        .unwrap()
        .rows();
    assert_eq!(rows, vec![vec![Datum::Int(5)]]); // 6 non-null minus the 10
}

#[test]
fn in_list_pushes_down_to_index() {
    let db = Database::in_memory();
    let mut s = SqlSession::new(db.clone());
    s.execute("CREATE TABLE t (k TEXT)").unwrap();
    s.execute("CREATE INDEX ON t (k)").unwrap();
    for k in ["a", "b", "c", "a"] {
        s.execute(&format!("INSERT INTO t (k) VALUES ('{k}')"))
            .unwrap();
    }
    let rows = s
        .execute("SELECT k FROM t WHERE k IN ('a', 'c') ORDER BY k")
        .unwrap()
        .rows();
    assert_eq!(rows.len(), 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics, whatever bytes arrive.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,120}") {
        let _ = parse(&input);
    }

    /// Nor on keyword-dense near-SQL soup.
    #[test]
    fn parser_never_panics_on_sql_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("HAVING"), Just("COUNT"), Just("("), Just(")"),
                Just("*"), Just(","), Just("="), Just("IN"), Just("NOT"),
                Just("NULL"), Just("t"), Just("x"), Just("'s'"), Just("1"),
                Just("LEFT"), Just("JOIN"), Just("ON"), Just("LIMIT"),
                Just("ORDER"), Just("INSERT"), Just("INTO"), Just("VALUES"),
            ],
            0..24,
        )
    ) {
        let sql = words.join(" ");
        let _ = parse(&sql);
    }

    /// Executing arbitrary parsed-or-not statements against a session
    /// returns an error or a result — never a panic or poisoned state.
    #[test]
    fn executor_survives_arbitrary_statements(input in ".{0,80}") {
        let mut s = session_with_sales();
        let _ = s.execute(&input);
        // session still usable afterwards
        let rows = s.execute("SELECT COUNT(*) FROM sales").unwrap().rows();
        prop_assert_eq!(rows[0][0].clone(), Datum::Int(7));
    }
}
