//! End-to-end SQL tests, centred on the exact queries from the paper's
//! appendices.

use feral_db::{Database, Datum};
use feral_sql::{SqlError, SqlOutput, SqlSession};

fn session() -> SqlSession {
    SqlSession::new(Database::in_memory())
}

#[test]
fn create_insert_select_roundtrip() {
    let mut s = session();
    s.execute("CREATE TABLE kv (key TEXT NOT NULL, value TEXT)")
        .unwrap();
    assert_eq!(
        s.execute("INSERT INTO kv (key, value) VALUES ('a', '1'), ('b', '2')")
            .unwrap(),
        SqlOutput::Affected(2)
    );
    let rows = s
        .execute("SELECT key, value FROM kv ORDER BY key")
        .unwrap()
        .rows();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Datum::text("a"));
    assert_eq!(rows[1][1], Datum::text("2"));
}

#[test]
fn appendix_b1_uniqueness_probe() {
    let mut s = session();
    s.execute("CREATE TABLE validated_key_values (key TEXT, value TEXT)")
        .unwrap();
    let probe = "SELECT 1 FROM validated_key_values WHERE key = 'k' LIMIT ONE";
    assert!(s.execute(probe).unwrap().rows().is_empty());
    s.execute("INSERT INTO validated_key_values (key, value) VALUES ('k', 'v')")
        .unwrap();
    assert_eq!(s.execute(probe).unwrap().rows(), vec![vec![Datum::Int(1)]]);
}

#[test]
fn appendix_c2_duplicate_count_query() {
    let mut s = session();
    s.execute("CREATE TABLE t (key TEXT)").unwrap();
    for k in ["a", "a", "a", "b", "c", "c"] {
        s.execute(&format!("INSERT INTO t (key) VALUES ('{k}')"))
            .unwrap();
    }
    let rows = s
        .execute("SELECT key, COUNT(key) FROM t GROUP BY key HAVING COUNT(key) > 1 ORDER BY key")
        .unwrap()
        .rows();
    // duplicates: a×3, c×2
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], vec![Datum::text("a"), Datum::Int(3)]);
    assert_eq!(rows[1], vec![Datum::text("c"), Datum::Int(2)]);
}

#[test]
fn appendix_c5_orphan_query_with_left_outer_join() {
    let mut s = session();
    s.execute("CREATE TABLE m_departments (name TEXT)").unwrap();
    s.execute("CREATE TABLE m_users (m_department_id INT)")
        .unwrap();
    s.execute("INSERT INTO m_departments (id, name) VALUES (1, 'eng')")
        .unwrap();
    // two users in the live department, three orphans across two dead ids
    for d in [1, 1, 2, 2, 3] {
        s.execute(&format!(
            "INSERT INTO m_users (m_department_id) VALUES ({d})"
        ))
        .unwrap();
    }
    let rows = s
        .execute(
            "SELECT m_department_id, COUNT(*) FROM m_users AS U \
             LEFT OUTER JOIN m_departments AS D ON U.m_department_id = D.id \
             WHERE D.id IS NULL GROUP BY m_department_id HAVING COUNT(*) > 0 \
             ORDER BY m_department_id",
        )
        .unwrap()
        .rows();
    assert_eq!(
        rows,
        vec![
            vec![Datum::Int(2), Datum::Int(2)],
            vec![Datum::Int(3), Datum::Int(1)],
        ]
    );
}

#[test]
fn update_and_delete_with_where() {
    let mut s = session();
    s.execute("CREATE TABLE t (k TEXT, v INT)").unwrap();
    for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
        s.execute(&format!("INSERT INTO t (k, v) VALUES ('{k}', {v})"))
            .unwrap();
    }
    assert_eq!(
        s.execute("UPDATE t SET v = 10 WHERE v >= 2").unwrap(),
        SqlOutput::Affected(2)
    );
    assert_eq!(
        s.execute("DELETE FROM t WHERE k = 'a'").unwrap(),
        SqlOutput::Affected(1)
    );
    let rows = s.execute("SELECT v FROM t ORDER BY k").unwrap().rows();
    assert_eq!(rows, vec![vec![Datum::Int(10)], vec![Datum::Int(10)]]);
}

#[test]
fn transactions_commit_and_rollback() {
    let mut s = session();
    s.execute("CREATE TABLE t (k TEXT)").unwrap();
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO t (k) VALUES ('x')").unwrap();
    s.execute("ROLLBACK").unwrap();
    assert!(s.execute("SELECT * FROM t").unwrap().rows().is_empty());
    s.execute("BEGIN ISOLATION LEVEL SERIALIZABLE").unwrap();
    s.execute("INSERT INTO t (k) VALUES ('y')").unwrap();
    s.execute("COMMIT").unwrap();
    assert_eq!(
        s.execute("SELECT COUNT(*) FROM t").unwrap().rows(),
        vec![vec![Datum::Int(1)]]
    );
}

#[test]
fn unique_index_enforced_through_sql() {
    let mut s = session();
    s.execute("CREATE TABLE t (k TEXT)").unwrap();
    s.execute("CREATE UNIQUE INDEX ON t (k)").unwrap();
    s.execute("INSERT INTO t (k) VALUES ('dup')").unwrap();
    let err = s.execute("INSERT INTO t (k) VALUES ('dup')").unwrap_err();
    assert!(matches!(err, SqlError::Db(e) if e.is_constraint_violation()));
}

#[test]
fn select_for_update_parses_and_locks() {
    let mut s = session();
    s.execute("CREATE TABLE stock (count_on_hand INT)").unwrap();
    s.execute("INSERT INTO stock (count_on_hand) VALUES (10)")
        .unwrap();
    s.execute("BEGIN").unwrap();
    let rows = s
        .execute("SELECT * FROM stock WHERE id = 1 FOR UPDATE")
        .unwrap()
        .rows();
    assert_eq!(rows.len(), 1);
    s.execute("UPDATE stock SET count_on_hand = 9 WHERE id = 1")
        .unwrap();
    s.execute("COMMIT").unwrap();
    let rows = s.execute("SELECT count_on_hand FROM stock").unwrap().rows();
    assert_eq!(rows, vec![vec![Datum::Int(9)]]);
}

#[test]
fn null_semantics_in_where() {
    let mut s = session();
    s.execute("CREATE TABLE t (v INT)").unwrap();
    s.execute("INSERT INTO t (v) VALUES (1), (NULL)").unwrap();
    // NULL doesn't match equality
    assert_eq!(
        s.execute("SELECT * FROM t WHERE v = 1")
            .unwrap()
            .rows()
            .len(),
        1
    );
    assert_eq!(
        s.execute("SELECT * FROM t WHERE v IS NULL")
            .unwrap()
            .rows()
            .len(),
        1
    );
    assert_eq!(
        s.execute("SELECT * FROM t WHERE v IS NOT NULL")
            .unwrap()
            .rows()
            .len(),
        1
    );
    // NOT of UNKNOWN is still not a match
    assert_eq!(
        s.execute("SELECT * FROM t WHERE NOT v = 1")
            .unwrap()
            .rows()
            .len(),
        0
    );
}

#[test]
fn semantic_errors_are_reported() {
    let mut s = session();
    s.execute("CREATE TABLE t (v INT)").unwrap();
    assert!(matches!(
        s.execute("SELECT nope FROM t"),
        Err(SqlError::Semantic(_))
    ));
    assert!(matches!(
        s.execute("SELECT * FROM missing"),
        Err(SqlError::Db(_))
    ));
    assert!(matches!(s.execute("COMMIT"), Err(SqlError::Semantic(_))));
    assert!(matches!(s.execute("oops"), Err(SqlError::Parse(_))));
}

#[test]
fn concurrent_sql_sessions_share_the_database() {
    let db = Database::in_memory();
    let mut a = SqlSession::new(db.clone());
    let mut b = SqlSession::new(db);
    a.execute("CREATE TABLE t (k TEXT)").unwrap();
    b.execute("INSERT INTO t (k) VALUES ('from-b')").unwrap();
    assert_eq!(
        a.execute("SELECT COUNT(*) FROM t").unwrap().rows(),
        vec![vec![Datum::Int(1)]]
    );
    // snapshot isolation between sessions
    a.execute("BEGIN ISOLATION LEVEL REPEATABLE READ").unwrap();
    assert_eq!(
        a.execute("SELECT COUNT(*) FROM t").unwrap().rows(),
        vec![vec![Datum::Int(1)]]
    );
    b.execute("INSERT INTO t (k) VALUES ('later')").unwrap();
    assert_eq!(
        a.execute("SELECT COUNT(*) FROM t").unwrap().rows(),
        vec![vec![Datum::Int(1)]],
        "repeatable read must hold its snapshot"
    );
    a.execute("COMMIT").unwrap();
    assert_eq!(
        a.execute("SELECT COUNT(*) FROM t").unwrap().rows(),
        vec![vec![Datum::Int(2)]]
    );
}

#[test]
fn foreign_keys_declared_in_ddl_are_enforced() {
    let mut s = session();
    s.execute("CREATE TABLE departments (name TEXT)").unwrap();
    s.execute(
        "CREATE TABLE users (name TEXT, department_id INT REFERENCES departments ON DELETE CASCADE)",
    )
    .unwrap();
    s.execute("INSERT INTO departments (name) VALUES ('eng')")
        .unwrap();
    s.execute("INSERT INTO users (name, department_id) VALUES ('a', 1)")
        .unwrap();
    // dangling insert rejected by the engine-side FK
    let err = s
        .execute("INSERT INTO users (name, department_id) VALUES ('b', 999)")
        .unwrap_err();
    assert!(matches!(err, SqlError::Db(_)), "got {err:?}");
    // cascade: deleting the department removes its user
    s.execute("DELETE FROM departments WHERE id = 1").unwrap();
    let rows = s.execute("SELECT * FROM users").unwrap().rows();
    assert!(
        rows.is_empty(),
        "cascade should have removed users: {rows:?}"
    );
}

#[test]
fn foreign_key_to_missing_parent_table_errors() {
    let mut s = session();
    let err = s
        .execute("CREATE TABLE users (department_id INT REFERENCES departments)")
        .unwrap_err();
    assert!(matches!(err, SqlError::Db(_)), "got {err:?}");
}
