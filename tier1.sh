#!/usr/bin/env bash
# Tier-1 verification: build, test, and a bounded deterministic sweep of
# the paper's safety matrix. Fully offline — all dependencies are
# path-vendored and feral-sim uses no network, wall-clock, or timing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier1: release build =="
cargo build --release

echo "== tier1: clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== tier1: rustfmt check =="
cargo fmt --check

echo "== tier1: test suite =="
cargo test -q

echo "== tier1: feral-sim bounded systematic sweep =="
# The full matrix is exhaustive in < 10k schedules per cell; the bound
# only guards against regressions that explode the schedule space.
# Cells default to sleep-set DPOR — safe cells must report a complete
# sweep with the pruning counters intact.
cargo run --release -q -p feral-sim -- matrix --max-runs 50000

echo "== tier1: DPOR sweep beyond the full-enumeration budget =="
# 4 concurrent uniqueness transactions at serializable: the schedule
# tree has ~2.18e12 interleavings, so plain DFS cannot finish inside
# any tier-1 budget (it exhausts 200k runs without completing). The
# sleep-set DPOR explorer covers the space *exactly* in ~4k executed
# runs; gate on completeness, the exact Mazurkiewicz accounting, and a
# wall-clock ceiling so the reduction itself never regresses.
DPOR_OUT=$(mktemp /tmp/SIM_dpor.XXXXXX.json)
DPOR_START=$SECONDS
cargo run --release -q -p feral-sim -- systematic --scenario uniqueness \
  --isolation serializable --workers 4 --strategy dpor \
  --max-runs 200000 --json > "$DPOR_OUT"
DPOR_ELAPSED=$(( SECONDS - DPOR_START ))
grep -q '"complete":true' "$DPOR_OUT"
grep -q '"pruned_exact":true' "$DPOR_OUT"
grep -q '"schedules_pruned":2176957547132' "$DPOR_OUT"
rm -f "$DPOR_OUT"
if [ "$DPOR_ELAPSED" -gt 60 ]; then
  echo "DPOR sweep took ${DPOR_ELAPSED}s (budget 60s)" >&2
  exit 1
fi

echo "== tier1: feral-sdg static matrix, cross-validated =="
# Static dependency-graph verdicts for 4 template pairs x 4 isolation
# levels. --validate replays a feral-sim witness for every UNSAFE cell
# (directed DPOR, seeded-random fallback), exhaustively sweeps every
# SAFE cell under DPOR, and diffs each row against the iconfluence
# model checker; any disagreement exits non-zero. The JSON artifact —
# including the per-cell validation evidence: witness provenance and
# the sweep's pruning counters, all deterministic — must be
# byte-identical to the checked-in golden.
SDG_OUT=$(mktemp /tmp/BENCH_sdg.XXXXXX.json)
cargo run --release -q -p feral-sdg -- matrix --validate --json --out "$SDG_OUT"
diff "$SDG_OUT" results/BENCH_sdg.golden.json
rm -f "$SDG_OUT"

echo "== tier1: feral-racer self-hosting concurrency discipline =="
# Lock-order and atomics discipline for the workspace's own concurrency
# core, statically checked: zero findings on the live tree, every
# FERALRS rule proven live against its seeded-fault fixture
# (mutation-style — a rule that stops firing fails the gate), and the
# full acquisition inventory byte-identical to the checked-in golden.
RACER_OUT=$(mktemp /tmp/BENCH_racer.XXXXXX.json)
cargo run --release -q -p feral-racer -- check --json --validate --out "$RACER_OUT"
diff "$RACER_OUT" results/BENCH_racer.golden.json
rm -f "$RACER_OUT"

echo "== tier1: feral-trace docs (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q -p feral-trace

echo "== tier1: trace smoke gate (table1 --smoke) =="
# table1 self-validates the report (exits non-zero on schema or
# histogram-integrity failure); re-check the artifact from the outside
# too: parseable, non-zero commits, well-formed histograms, and at
# least one explained race with a replayable witness.
SMOKE_OUT=$(mktemp /tmp/BENCH_table1.XXXXXX.json)
cargo run --release -q -p feral-bench --bin table1 -- --smoke --out "$SMOKE_OUT" > /dev/null
cargo run --release -q -p feral-bench --bin checkreport -- "$SMOKE_OUT"
rm -f "$SMOKE_OUT"

echo "== tier1: commit pipeline smoke gate (commitbench --smoke) =="
# Gates on its own exit code: the sharded group-commit pipeline must
# beat the single-latch baseline >= 2x at 8 workers (uniform keys,
# synced WAL), every feral-sim sweep must agree with the feral-sdg
# verdict for its lock-rmw cell, and statically-safe isolation levels
# must lose zero updates in a live 2-thread RMW race.
COMMIT_OUT=$(mktemp /tmp/BENCH_commit.XXXXXX.json)
cargo run --release -q -p feral-bench --bin commitbench -- --smoke --out "$COMMIT_OUT" > /dev/null
rm -f "$COMMIT_OUT"

echo "== tier1: certified isolation plan (feral-plan certify --validate) =="
# Re-derive the corpus plan, re-validate every cell's certificate
# (static gate + per-slot minimality, complete DPOR sweep at the
# assigned levels, replaying witness at the next-weaker configuration
# for every escalated cell), and byte-diff the certified artifact
# against the checked-in golden. Any drift exits non-zero.
cargo run --release -q -p feral-plan -- certify \
  --validate results/BENCH_plan.golden.json --out /dev/null

echo "== tier1: planner ablation smoke gate (commitbench planner --smoke) =="
# Gates on its own exit code: every plan cell re-certifies through
# feral-sim, the planned execution meets all-serializable throughput
# at 8 workers (paired per-pass median, 5% noise allowance), and both
# run with a clean end-of-run integrity audit
# (the all-read-committed ablation is reported, not gated — its
# anomalies are the point).
PLANNER_OUT=$(mktemp /tmp/BENCH_planner.XXXXXX.json)
cargo run --release -q -p feral-bench --bin commitbench -- planner --smoke --out "$PLANNER_OUT" > /dev/null
rm -f "$PLANNER_OUT"

echo "== tier1: runtime audit smoke gate (commitbench audit --smoke) =="
# Gates on its own exit code: sampled-mode auditing must stay within 5%
# of auditor-off throughput at 8 workers (median of per-pass ratios,
# each pass bracketing the audited runs between two auditor-off runs
# so drift cancels), every audited run of the certified plan must
# finish with
# zero anomaly cycles and zero integrity anomalies, and every captured
# snapshot must pass the audit export schema. The artifact is then
# re-gated from the outside by checkreport --audit.
AUDIT_OUT=$(mktemp /tmp/BENCH_audit.XXXXXX.json)
cargo run --release -q -p feral-bench --bin commitbench -- audit --smoke --out "$AUDIT_OUT" > /dev/null
cargo run --release -q -p feral-bench --bin checkreport -- --audit "$AUDIT_OUT"
rm -f "$AUDIT_OUT"

echo "== tier1: wire-tier load smoke gate (feral-net loadbench --smoke) =="
# Gates on its own exit code: an open-loop load grid (3 worker counts x
# uniform/zipfian arrivals) over the wire protocol with coordinated-
# omission-free p50/p99/p999, plus the planner-vs-all-serializable
# ablation served end-to-end through feral-net with the runtime DSG
# auditor attached — zero integrity anomalies, zero observed cycles,
# schema-valid embedded snapshots. The artifact is then re-gated from
# the outside by checkreport --load.
LOAD_OUT=$(mktemp /tmp/BENCH_load.XXXXXX.json)
cargo run --release -q -p feral-net -- loadbench --smoke --out "$LOAD_OUT" > /dev/null
cargo run --release -q -p feral-bench --bin checkreport -- --load "$LOAD_OUT"
rm -f "$LOAD_OUT"

echo "== tier1: OK =="
