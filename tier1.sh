#!/usr/bin/env bash
# Tier-1 verification: build, test, and a bounded deterministic sweep of
# the paper's safety matrix. Fully offline — all dependencies are
# path-vendored and feral-sim uses no network, wall-clock, or timing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier1: release build =="
cargo build --release

echo "== tier1: clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== tier1: rustfmt check =="
cargo fmt --check

echo "== tier1: test suite =="
cargo test -q

echo "== tier1: feral-sim bounded systematic sweep =="
# The full matrix is exhaustive in < 10k schedules per cell; the bound
# only guards against regressions that explode the schedule space.
cargo run --release -q -p feral-sim -- matrix --max-runs 50000

echo "== tier1: OK =="
